"""The SkelCL ``Vector<T>`` container (§3.1).

A one-dimensional contiguous collection transparently accessible from
host code (indexing, iteration, numpy interop) and from skeletons on all
GPUs, with implicit transfers.

    vec = Vector(size)
    for i in range(vec.size):
        vec[i] = i
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .container import Container


class Vector(Container):
    def __init__(self, size: Optional[int] = None, dtype=np.float32, data=None, name: str = ""):
        if data is not None:
            host = np.ascontiguousarray(data).reshape(-1).copy()
        elif size is not None:
            host = np.zeros(int(size), dtype=np.dtype(dtype))
        else:
            raise ValueError("Vector needs a size or initial data")
        super().__init__(host, units=len(host), unit_elements=1, name=name)

    @staticmethod
    def from_numpy(array: np.ndarray, name: str = "") -> "Vector":
        return Vector(data=array, name=name)

    # -- host access (implicit download / device invalidation) -------------

    @property
    def size(self) -> int:
        return self._units

    def __len__(self) -> int:
        return self._units

    def __getitem__(self, index):
        self.ensure_host()
        return self._host[index]

    def __setitem__(self, index, value) -> None:
        self._before_write()
        self.ensure_host()
        self._host[index] = value
        self.invalidate_devices()

    def __iter__(self):
        self.ensure_host()
        return iter(self._host)

    def fill(self, value) -> "Vector":
        self._before_write()
        self.ensure_host()
        self._host[:] = value
        self.invalidate_devices()
        return self

    def assign(self, values: Iterable) -> "Vector":
        self._before_write()
        self.ensure_host()
        data = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                          dtype=self._host.dtype)
        if data.size != self._units:
            raise ValueError(f"assigning {data.size} values to a vector of size {self._units}")
        self._host[:] = data
        self.invalidate_devices()
        return self

    def to_numpy(self) -> np.ndarray:
        self.ensure_host()
        return self._host.copy()

    def new_like(self, dtype=None, name: str = "") -> "Vector":
        return Vector(self._units, dtype=dtype if dtype is not None else self._host.dtype, name=name)

    def resized_copy(self, size: int) -> "Vector":
        out = Vector(size, dtype=self._host.dtype)
        self.ensure_host()
        n = min(size, self._units)
        out._host[:n] = self._host[:n]
        return out

    def __repr__(self) -> str:
        dist = self._distribution.kind if self._distribution else "none"
        return f"<Vector size={self._units} dtype={self._host.dtype} dist={dist}>"
