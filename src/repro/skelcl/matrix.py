"""The SkelCL ``Matrix<T>`` container (§3.1).

A two-dimensional collection stored row-major; distributed across GPUs
in units of rows (Fig. 2).  Host access uses ``m[i, j]`` or numpy
interop; skeletons see per-device row chunks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .container import Container


class Matrix(Container):
    def __init__(self, shape: Optional[Tuple[int, int]] = None, dtype=np.float32,
                 data=None, name: str = ""):
        if data is not None:
            array = np.ascontiguousarray(data)
            if array.ndim != 2:
                raise ValueError(f"Matrix data must be 2-D, got {array.ndim}-D")
            self._shape = (array.shape[0], array.shape[1])
            host = array.reshape(-1).copy()
        elif shape is not None:
            rows, cols = int(shape[0]), int(shape[1])
            self._shape = (rows, cols)
            host = np.zeros(rows * cols, dtype=np.dtype(dtype))
        else:
            raise ValueError("Matrix needs a shape or initial data")
        super().__init__(host, units=self._shape[0], unit_elements=self._shape[1], name=name)

    @staticmethod
    def from_numpy(array: np.ndarray, name: str = "") -> "Matrix":
        return Matrix(data=array, name=name)

    # -- geometry -----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def rows(self) -> int:
        return self._shape[0]

    @property
    def cols(self) -> int:
        return self._shape[1]

    @property
    def size(self) -> int:
        return self._shape[0] * self._shape[1]

    def __len__(self) -> int:
        return self._shape[0]

    # -- host access ----------------------------------------------------------

    def _flat_index(self, key) -> int:
        row, col = key
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"matrix index {key} out of range for shape {self._shape}")
        return row * self.cols + col

    def __getitem__(self, key):
        self.ensure_host()
        if isinstance(key, tuple):
            return self._host[self._flat_index(key)]
        return self._host[key * self.cols : (key + 1) * self.cols].copy()

    def __setitem__(self, key, value) -> None:
        self._before_write()
        self.ensure_host()
        if isinstance(key, tuple):
            self._host[self._flat_index(key)] = value
        else:
            self._host[key * self.cols : (key + 1) * self.cols] = value
        self.invalidate_devices()

    def fill(self, value) -> "Matrix":
        self._before_write()
        self.ensure_host()
        self._host[:] = value
        self.invalidate_devices()
        return self

    def assign(self, array: np.ndarray) -> "Matrix":
        self._before_write()
        self.ensure_host()
        array = np.asarray(array, dtype=self._host.dtype)
        if array.shape != self._shape:
            raise ValueError(f"assigning shape {array.shape} to matrix of shape {self._shape}")
        self._host[:] = array.reshape(-1)
        self.invalidate_devices()
        return self

    def to_numpy(self) -> np.ndarray:
        self.ensure_host()
        return self._host.copy().reshape(self._shape)

    def new_like(self, shape: Optional[Tuple[int, int]] = None, dtype=None, name: str = "") -> "Matrix":
        return Matrix(
            shape if shape is not None else self._shape,
            dtype=dtype if dtype is not None else self._host.dtype,
            name=name,
        )

    def __repr__(self) -> str:
        dist = self._distribution.kind if self._distribution else "none"
        return f"<Matrix shape={self._shape} dtype={self._host.dtype} dist={dist}>"
