"""Container coherence: the implicit host↔device memory management.

The paper's §3.1: containers are "transparently accessible by both, host
and devices".  This module implements the lazy coherence protocol behind
that transparency:

* host reads after device computation trigger an implicit download;
* device use after host writes triggers an implicit upload;
* changing the distribution of device-resident data triggers the
  download/re-upload exchange the paper describes (§3.2) — all through
  the simulated command queues, so every implicit copy is accounted for
  in transfer time and bytes.

Every implicit command is issued asynchronously with an explicit wait
list: the container tracks, per device chunk, the events that gate the
validity of that chunk's buffer (`chunk_events`), and the events that
produced the current host copy.  Redistribution and halo exchange
therefore become dependency *edges* in the command graph — a halo
upload waits only on the neighbour's download, a kernel launch waits
only on the uploads it actually reads — instead of implicit whole-queue
synchronizations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import ocl
from .distribution import Block, Chunk, Distribution
from .runtime import SkelCLError, get_runtime
from .types_ import ctype_for_dtype


class Container:
    """Base of :class:`Vector` and :class:`Matrix`.

    Subclasses define the *unit*: the granularity of distribution
    (elements for vectors, rows for matrices).  ``_units`` is the number
    of units; ``_unit_elements`` the flat elements per unit.
    """

    def __init__(self, host: np.ndarray, units: int, unit_elements: int, name: str = ""):
        self._host = host  # flat, C-contiguous
        self._units = units
        self._unit_elements = unit_elements
        self.name = name
        self._host_valid = True
        self._device_valid = False
        self._distribution: Optional[Distribution] = None
        self._chunks: List[Chunk] = []
        self._buffers: Dict[int, ocl.Buffer] = {}  # keyed by chunk position
        # Dependency tracking for the asynchronous command graph: per
        # chunk position, the events that must complete before the
        # chunk's buffer holds valid data (uploads, halo writes, kernel
        # writes); the commands currently *reading* the chunk (a later
        # writer must wait for them — WAR edges); plus the downloads
        # that produced the host copy.
        self._chunk_events: Dict[int, List[ocl.Event]] = {}
        self._chunk_readers: Dict[int, List[ocl.Event]] = {}
        self._host_events: List[ocl.Event] = []
        self.element_ctype = ctype_for_dtype(host.dtype)
        # Lazy-planner state (see repro.plan): the deferred node that
        # will produce this container's contents, and the deferred nodes
        # reading it (forced before any in-place mutation so they still
        # observe the pre-mutation values).
        self._pending = None
        self._pending_readers: List = []

    # -- lazy-planner force points -----------------------------------------

    def _force_pending(self) -> None:
        """Force the deferred producer of this container, if any — the
        read-side force point (host access, device use as an input)."""
        node = self._pending
        if node is not None:
            node.planner.force_node(node)

    def _before_write(self) -> None:
        """Force point ahead of any in-place mutation (host writes,
        ``out=`` reuse, redistribution teardown): materialize our own
        deferred contents, then run every deferred reader so it consumes
        the *current* values, not the about-to-be-written ones."""
        self._force_pending()
        readers = self._pending_readers
        if not readers:
            return
        remaining = []
        for node in readers:
            if node.done:
                continue
            if node.planner.executing:
                # The planner itself is writing (running a plan step);
                # batch ordering and the event graph already sequence
                # the in-flight readers correctly.
                remaining.append(node)
                continue
            node.planner.force_node(node)
        self._pending_readers = remaining

    # -- public state -------------------------------------------------------

    @property
    def dtype(self) -> np.dtype:
        return self._host.dtype

    @property
    def distribution(self) -> Optional[Distribution]:
        return self._distribution

    @property
    def is_on_devices(self) -> bool:
        return self._device_valid

    def default_distribution(self) -> Distribution:
        return Block()

    # -- coherence ------------------------------------------------------------

    def _itembytes(self) -> int:
        return self._host.dtype.itemsize

    def _unit_slice(self, start: int, end: int) -> slice:
        return slice(start * self._unit_elements, end * self._unit_elements)

    def chunk_events(self, position: int) -> List[ocl.Event]:
        """The events gating the validity of chunk ``position``'s buffer
        — what a kernel reading the chunk must put in its wait list."""
        return list(self._chunk_events.get(position, []))

    def chunk_write_events(self, position: int) -> List[ocl.Event]:
        """What a command *writing* chunk ``position`` must wait for:
        the producers of the current contents (WAW) plus every command
        still reading them (WAR)."""
        return list(self._chunk_events.get(position, [])) + \
            list(self._chunk_readers.get(position, []))

    def record_chunk_event(self, position: int, event: ocl.Event) -> None:
        """A command (typically a kernel launch) produced chunk
        ``position``'s contents; later consumers wait on it.  The event
        replaces the previous gate — launches are expected to carry the
        prior chunk (write) events in their own wait lists, which also
        discharges the recorded readers."""
        self._chunk_events[position] = [event]
        self._chunk_readers.pop(position, None)

    def record_chunk_reader(self, position: int, event: ocl.Event) -> None:
        """A command reads chunk ``position``; a later writer of the
        chunk must order itself after it."""
        self._chunk_readers.setdefault(position, []).append(event)

    def ensure_host(self) -> None:
        """Make the host copy up to date (implicit download)."""
        self._force_pending()
        if self._host_valid:
            return
        if not self._device_valid:
            raise SkelCLError("container has neither valid host nor device data")
        runtime = get_runtime()
        seen_units: set = set()
        downloads: List[ocl.Event] = []
        for position, chunk in enumerate(self._chunks):
            if chunk.owned_size == 0:
                continue
            key = (chunk.owned_start, chunk.owned_end)
            if key in seen_units and self._distribution is not None and self._distribution.kind == "copy":
                continue  # copy distribution: one download suffices
            seen_units.add(key)
            queue = runtime.queue(chunk.device_index)
            offset_units = chunk.owned_start - chunk.stored_start
            offset_bytes = offset_units * self._unit_elements * self._itembytes()
            count = chunk.owned_size * self._unit_elements
            data, event = queue.enqueue_read_buffer(
                self._buffers[position], self._host.dtype, count, offset_bytes,
                event_wait_list=self.chunk_events(position),
            )
            self.record_chunk_reader(position, event)
            downloads.append(event)
            self._host[self._unit_slice(chunk.owned_start, chunk.owned_end)] = data
            if self._distribution is not None and self._distribution.kind == "copy":
                break  # all devices hold the same data
        self._host_events = downloads
        self._host_valid = True

    def invalidate_devices(self) -> None:
        """Host data changed: device copies are stale."""
        self._device_valid = False

    def mark_written_on_devices(self) -> None:
        """A kernel wrote this container: host copy is stale."""
        self._device_valid = True
        self._host_valid = False

    def _relabel_if_layout_compatible(self, target: Distribution) -> bool:
        """Adopt ``target`` without moving data when its chunks store the
        same ranges on the same devices (e.g. any change on one GPU, or
        block ↔ overlap(0)).  Real SkelCL performs the same no-op
        redistribution; only the ownership bookkeeping changes."""
        if not self._device_valid or not self._chunks:
            return False
        runtime = get_runtime()
        new_chunks = target.chunks(self._units, runtime.num_devices)
        if len(new_chunks) != len(self._chunks):
            return False
        for old, new in zip(self._chunks, new_chunks):
            if old.device_index != new.device_index:
                return False
            # Every unit the new layout stores (and therefore owns) must
            # already be present in the device's buffer; e.g. copy→block
            # (ownership shrinks) or overlap→block (halo becomes slack).
            if new.stored_start < old.stored_start or new.stored_end > old.stored_end:
                return False
        # Adopt the new ownership but keep the buffers: the chunk records
        # the buffers' actual (possibly larger) stored layout.
        self._chunks = [
            Chunk(new.device_index, new.owned_start, new.owned_end,
                  old.stored_start, old.stored_end)
            for old, new in zip(self._chunks, new_chunks)
        ]
        self._distribution = target
        return True

    def _refresh_halos(self, target: Distribution) -> bool:
        """Grow per-device storage in place when only halos are missing
        (e.g. block → overlap(d) with unchanged owned ranges): the owned
        data is copied device-locally and only the halo units cross the
        PCIe link — the implicit halo exchange of §3.2, without
        round-tripping the whole container through the host."""
        if not self._device_valid or not self._chunks:
            return False
        runtime = get_runtime()
        new_chunks = target.chunks(self._units, runtime.num_devices)
        if len(new_chunks) != len(self._chunks):
            return False
        for old, new in zip(self._chunks, new_chunks):
            if old.device_index != new.device_index:
                return False
            if (old.owned_start, old.owned_end) != (new.owned_start, new.owned_end):
                return False
            if new.stored_start > old.stored_start or new.stored_end < old.stored_end:
                return False  # storage would shrink somewhere: not a pure grow

        unit_bytes = self._unit_elements * self._itembytes()
        new_buffers: Dict[int, ocl.Buffer] = {}
        new_events: Dict[int, List[ocl.Event]] = {}
        for position, (old, new) in enumerate(zip(self._chunks, new_chunks)):
            device = runtime.devices[new.device_index]
            queue = runtime.queue(new.device_index)
            buffer = runtime.context.create_buffer(
                max(new.stored_size, 1) * unit_bytes, device,
                name=f"{self.name or 'container'}[{position}]",
            )
            gates: List[ocl.Event] = []
            if old.stored_size > 0:
                copy_event = queue.enqueue_copy_buffer(
                    self._buffers[position],
                    buffer,
                    old.stored_size * unit_bytes,
                    0,
                    (old.stored_start - new.stored_start) * unit_bytes,
                    event_wait_list=self.chunk_events(position),
                )
                gates.append(copy_event)
            # Fetch the missing halo units from their owners: each unit
            # crosses the host link twice (owner download, consumer
            # upload), and the upload waits only on its own download —
            # halo exchanges of disjoint borders overlap freely.
            for lo, hi in ((new.stored_start, old.stored_start), (old.stored_end, new.stored_end)):
                position_in_units = lo
                while position_in_units < hi:
                    owner_position, owner = self._owner_of(position_in_units)
                    take = min(hi, owner.owned_end) - position_in_units
                    owner_queue = runtime.queue(owner.device_index)
                    data, read_event = owner_queue.enqueue_read_buffer(
                        self._buffers[owner_position],
                        self._host.dtype,
                        take * self._unit_elements,
                        (position_in_units - owner.stored_start) * unit_bytes,
                        event_wait_list=self.chunk_events(owner_position),
                    )
                    write_event = queue.enqueue_write_buffer(
                        buffer,
                        np.ascontiguousarray(data),
                        offset_bytes=(position_in_units - new.stored_start) * unit_bytes,
                        event_wait_list=[read_event],
                    )
                    gates.append(write_event)
                    position_in_units += take
            new_buffers[position] = buffer
            new_events[position] = gates
        for buffer in self._buffers.values():
            buffer.release()
        self._buffers = new_buffers
        self._chunks = new_chunks
        self._chunk_events = new_events
        self._chunk_readers = {}
        self._distribution = target
        return True

    def _owner_of(self, unit: int):
        """The chunk position owning ``unit`` under the current chunks."""
        for position, chunk in enumerate(self._chunks):
            if chunk.owned_start <= unit < chunk.owned_end:
                return position, chunk
        raise SkelCLError(f"no chunk owns unit {unit}")

    def set_distribution(self, distribution: Distribution) -> None:
        """Change the distribution; triggers implicit data exchange when
        device data is live (the cumbersome manual OpenCL dance of §3.2)."""
        if distribution == self._distribution:
            return
        self._before_write()
        if self._relabel_if_layout_compatible(distribution):
            return
        if self._refresh_halos(distribution):
            return
        if self._device_valid:
            self.ensure_host()
            self._drop_buffers()
            self._distribution = distribution
            self._upload()
        else:
            self._drop_buffers()
            self._distribution = distribution

    def ensure_on_devices(self, distribution: Optional[Distribution] = None) -> List[Tuple[Chunk, ocl.Buffer]]:
        """Make device data valid under ``distribution`` (or the current /
        default one); returns the chunk/buffer pairs for kernel launches."""
        self._force_pending()
        target = distribution or self._distribution or self.default_distribution()
        if target != self._distribution and not self._relabel_if_layout_compatible(target) \
                and not self._refresh_halos(target):
            if self._device_valid:
                self.ensure_host()
                self._device_valid = False
            self._drop_buffers()
            self._distribution = target
        if not self._device_valid:
            self.ensure_host()
            self._upload()
        return self.chunk_buffers()

    def prepare_as_output(self, distribution: Distribution) -> List[Tuple[Chunk, ocl.Buffer]]:
        """Allocate device storage for kernel output (no upload)."""
        self._before_write()
        if distribution != self._distribution or not self._buffers:
            self._drop_buffers()
            self._distribution = distribution
            self._allocate_buffers()
        self._device_valid = True
        self._host_valid = False
        return self.chunk_buffers()

    def chunk_buffers(self) -> List[Tuple[Chunk, ocl.Buffer]]:
        return [(chunk, self._buffers[position]) for position, chunk in enumerate(self._chunks)]

    # -- internals ---------------------------------------------------------------

    def _allocate_buffers(self) -> None:
        runtime = get_runtime()
        assert self._distribution is not None
        self._chunks = self._distribution.chunks(self._units, runtime.num_devices)
        self._buffers = {}
        self._chunk_events = {}
        self._chunk_readers = {}
        for position, chunk in enumerate(self._chunks):
            nbytes = max(chunk.stored_size, 1) * self._unit_elements * self._itembytes()
            device = runtime.devices[chunk.device_index]
            self._buffers[position] = runtime.context.create_buffer(
                nbytes, device, name=f"{self.name or 'container'}[{position}]"
            )

    def _upload(self) -> None:
        if not self._buffers:
            self._allocate_buffers()
        runtime = get_runtime()
        uploads: Dict[int, List[ocl.Event]] = {}
        for position, chunk in enumerate(self._chunks):
            if chunk.stored_size == 0:
                continue
            queue = runtime.queue(chunk.device_index)
            data = self._host[self._unit_slice(chunk.stored_start, chunk.stored_end)]
            # Uploads to distinct devices depend only on the downloads
            # that produced the host copy, so they overlap across
            # devices' transfer engines.  Reused buffers (devices were
            # merely invalidated, not dropped) additionally need WAW/WAR
            # edges on their previous producers and readers.
            event = queue.enqueue_write_buffer(
                self._buffers[position], data,
                event_wait_list=self._host_events + self.chunk_write_events(position),
            )
            uploads[position] = [event]
        self._chunk_events = uploads
        self._chunk_readers = {}
        self._device_valid = True

    def _drop_buffers(self) -> None:
        for buffer in self._buffers.values():
            buffer.release()
        self._buffers = {}
        self._chunks = []
        self._chunk_events = {}
        self._chunk_readers = {}
