"""Skeleton base class and shared kernel-source utilities (§3.3).

A skeleton is a higher-order function: it is constructed with a
customizing function (an OpenCL-C source string) and called with
containers.  Calling a skeleton:

1. resolves the input/output distributions (explicit or default),
2. ensures input data is on the devices (implicit transfers),
3. launches the generated kernel on every device owning a chunk,
4. marks outputs device-resident (host copies update lazily).

Generated kernel sources are deterministic strings, so the simulated
OpenCL build cache makes repeated executions cheap — mirroring SkelCL's
kernel caching.
"""

from __future__ import annotations

import os.path
import re
import sys
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import ocl
from ..jit import JitFunction
from ..jit.lower import WEAK_FLOAT, WEAK_INT
from ..kernelc.ctypes_ import ScalarType, ctype_from_numpy
from .distribution import Block, Distribution, Overlap
from .funcparse import UserFunction, parse_user_function
from .runtime import SkelCLError, get_runtime
from .types_ import ctype_for_dtype, dtype_for_ctype

# SkelCL's default work-group size (§4.1: "SkelCL uses its default
# work-group size of 256").
DEFAULT_WORK_GROUP_SIZE = 256

_SKELCL_DIR = os.path.dirname(os.path.abspath(__file__))


def capture_call_site() -> Optional[str]:
    """``file.py:line`` of the innermost caller outside ``repro.skelcl``
    — the user code that invoked the skeleton.  One cheap frame walk
    per skeleton *call* (not per command)."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not os.path.abspath(filename).startswith(_SKELCL_DIR):
            return f"{filename.replace(os.sep, '/').rsplit('/', 1)[-1]}:{frame.f_lineno}"
        frame = frame.f_back
    return None


def default_call_label(skeleton_name: str, func_name: str) -> str:
    """The trace span name for an unlabelled call: skeleton + user
    function + call site, e.g. ``MapOverlap(func)@sobel.py:38``."""
    site = capture_call_site()
    label = f"{skeleton_name}({func_name})"
    return f"{label}@{site}" if site else label


def reject_positional_out(args: Sequence, skeleton_name: str) -> None:
    """The pre-unification calling convention passed the output container
    positionally; it went through a :class:`DeprecationWarning` cycle and
    is now a :class:`TypeError`."""
    if args:
        raise TypeError(
            f"{skeleton_name}() no longer accepts a positional output "
            f"container ({len(args)} extra positional argument(s) given); "
            "pass it as the keyword out=..."
        )


def partitioned(distribution: Distribution) -> Distribution:
    """``distribution`` re-targeted at the session's active partition.

    When the runtime has no partition policy (the historic default)
    the distribution is returned unchanged; otherwise Block/Overlap are
    re-sized to the active weights (Single/Copy pass through).  Called
    at every point a skeleton resolves a distribution, so a partition
    change — adaptive or via ``session.rebalance()`` — redistributes
    stale containers through the ordinary command-graph machinery on
    their next use."""
    runtime = get_runtime()
    partition = getattr(runtime, "partition", None)
    if partition is None:
        return distribution
    if distribution.partition == partition:
        return distribution
    return distribution.with_partition(partition)


def round_up(value: int, multiple: int) -> int:
    if multiple <= 0:
        return value
    return ((value + multiple - 1) // multiple) * multiple


def rename_function(source: str, old_name: str, new_name: str) -> str:
    """Rename a function (and its uses) in an OpenCL-C source string."""
    return re.sub(rf"\b{re.escape(old_name)}\b", new_name, source)


def scalar_literal(value, ctype: ScalarType) -> str:
    """An OpenCL-C literal of ``value`` at type ``ctype``."""
    if ctype.is_float():
        text = repr(float(value))
        return f"{text}f" if ctype.name == "float" else text
    return repr(int(value))


class Skeleton:
    """Base of all skeletons: program caching and launch helpers.

    A skeleton is customized either by an OpenCL-C source string or by
    a :class:`repro.jit.JitFunction` (a ``@skelcl.jit``-decorated Python
    function).  A jitted customizer is *specialized* — lowered to
    OpenCL-C at concrete parameter types — eagerly when every parameter
    is annotated, otherwise lazily at the first call from the container
    dtypes.  After specialization ``self.user`` is indistinguishable
    from the string path, so code generation, caching, fusion and the
    analyses all run unchanged.
    """

    def __init__(self, source: Union[str, JitFunction]):
        self._programs: Dict[str, ocl.Program] = {}
        self.last_events: List[ocl.Event] = []
        self._call_label: Optional[str] = None
        if isinstance(source, JitFunction):
            self.jit: Optional[JitFunction] = source
            self.user: Optional[UserFunction] = None
            self._jit_key = None
            if source.is_fully_annotated() and (
                    source.n_outputs is None or source.component is not None):
                self._specialize_for(source.resolve_param_ctypes())
        else:
            self.jit = None
            self.user = parse_user_function(source)
            self._bind_user()

    # -- jit specialization --------------------------------------------------

    def _bind_user(self) -> None:
        """Validate ``self.user`` and extract the signature-driven
        attributes (element/output/extra types).  Subclasses override;
        called every time ``self.user`` is (re)bound."""

    def _specialize_for(self, param_ctypes) -> None:
        """Bind ``self.user`` to the jit customizer lowered at
        ``param_ctypes`` (annotations merged with call-site hints)."""
        key = tuple(param_ctypes)
        if self.user is not None and key == self._jit_key:
            return
        if self.user is not None:
            # Re-specializing to different types: lazily-planned stages
            # captured the previous specialization's source — force them
            # out before the signature changes under them.
            planner = getattr(get_runtime(), "planner", None)
            if planner is not None:
                planner.flush()
        self.user = parse_user_function(self.jit.lower_source(param_ctypes))
        self._jit_key = key
        self._bind_user()

    def _specialize(self, hints: Sequence) -> None:
        """Specialize a jit customizer for one call site; no-op for
        string customizers and for already-matching specializations."""
        if self.jit is not None:
            self._specialize_for(self.jit.resolve_param_ctypes(hints))

    @staticmethod
    def _hint_for_extra(value):
        """The type hint one additional (scalar) argument contributes.

        Plain Python scalars stay *weak* — inside the kernel they take
        part in NumPy's weak-scalar promotion exactly like the Python
        value does in the host function.  NumPy scalars are strong."""
        if isinstance(value, (np.integer, np.floating)):
            return ctype_from_numpy(value.dtype)
        if isinstance(value, (bool, int)):
            return WEAK_INT
        if isinstance(value, float):
            return WEAK_FLOAT
        return None

    def _element_hints(self, containers, extra_args) -> List:
        """Call-site hints: one element ctype per input container, then
        one hint per additional argument."""
        hints: List = [ctype_for_dtype(c.dtype) for c in containers]
        hints.extend(self._hint_for_extra(v) for v in extra_args)
        return hints

    # -- programs ------------------------------------------------------------

    def _program(self, source: str, name: str) -> ocl.Program:
        program = self._programs.get(source)
        if program is None:
            program = ocl.Program(source, name).build()
            self._programs[source] = program
        return program

    # -- launches ---------------------------------------------------------------

    def _record(self, event: ocl.Event) -> ocl.Event:
        event.label = self._call_label
        self.last_events.append(event)
        return event

    def _begin_call(self, label: Optional[str] = None) -> None:
        """Start a new skeleton invocation: clears the per-call event
        list and fixes the call's trace span label (an explicit
        ``label=`` argument, or skeleton + function + call site)."""
        self.last_events = []
        self._call_label = label or default_call_label(
            type(self).__name__, self.user.name
        )

    @property
    def last_kernel_time_ns(self) -> int:
        """Simulated kernel time of the most recent call: the critical-path
        window over the call's kernel events — latest completion minus
        earliest start, as scheduled on the command graph.  Kernels that
        overlap (different devices, or hidden behind transfers) are
        counted once, matching what ``clGetEventProfilingInfo`` timelines
        would report."""
        kernels = [e for e in self.last_events if e.command_type == "ndrange_kernel"]
        if not kernels:
            return 0
        for event in kernels:
            event.wait()
        return max(e.end_ns for e in kernels) - min(e.start_ns for e in kernels)

    def _enqueue(
        self,
        device_index: int,
        kernel: ocl.Kernel,
        global_size,
        local_size,
        sample_fraction: Optional[float] = None,
        wait_for: Optional[Sequence[ocl.Event]] = None,
        output=None,
        output_position: Optional[int] = None,
        inputs: Sequence = (),
    ) -> ocl.Event:
        """Launch ``kernel`` with an explicit wait list.

        ``wait_for`` lists the events producing the buffers this launch
        reads or overwrites (RAW/WAW/WAR edges).  When ``output`` (a
        container) and ``output_position`` are given, the launch event is
        recorded as the new gate for that output chunk, so downstream
        consumers — downloads, redistributions, later skeletons — wait
        on it.  ``inputs`` lists ``(container, position)`` pairs the
        launch reads: the event is recorded as a *reader* of those
        chunks, so a later writer orders itself after this launch."""
        runtime = get_runtime()
        queue = runtime.queue(device_index)
        event = queue.enqueue_nd_range_kernel(
            kernel, global_size, local_size, sample_fraction,
            event_wait_list=wait_for,
        )
        event.info["device_index"] = device_index
        for container, position in inputs:
            container.record_chunk_reader(position, event)
        if output is not None and output_position is not None:
            output.record_chunk_event(output_position, event)
        return self._record(event)

    # -- distribution policy -------------------------------------------------------

    @staticmethod
    def output_distribution(input_distribution: Distribution) -> Distribution:
        """Outputs follow the input's distribution; overlap inputs
        produce block outputs (each device owns its block of results,
        sized by the same partition)."""
        if isinstance(input_distribution, Overlap):
            return Block(input_distribution.partition)
        return input_distribution

    @staticmethod
    def resolve_input_distribution(container, default: Distribution) -> Distribution:
        dist = container.distribution if container.distribution is not None else default
        return partitioned(dist)

    # -- extra ("additional") arguments -----------------------------------------

    def extra_param_source(self, extra_types: Sequence[ScalarType]) -> str:
        parts = []
        for index, ctype in enumerate(extra_types):
            parts.append(f", const {ctype.name} SCL_EXTRA{index}")
        return "".join(parts)

    def extra_call_source(self, extra_types: Sequence[ScalarType]) -> str:
        return "".join(f", SCL_EXTRA{index}" for index in range(len(extra_types)))

    def check_extra_args(self, extra_types: Sequence[ScalarType], extra_args: Sequence) -> List:
        if len(extra_args) != len(extra_types):
            raise SkelCLError(
                f"skeleton customized with {len(extra_types)} additional argument(s), "
                f"called with {len(extra_args)}"
            )
        converted = []
        for ctype, value in zip(extra_types, extra_args):
            if isinstance(value, (bool, int, float, np.integer, np.floating)):
                converted.append(value)
            else:
                raise SkelCLError(
                    f"additional arguments must be scalars, got {type(value).__name__}"
                )
        return converted

    @staticmethod
    def result_dtype(ctype: ScalarType) -> np.dtype:
        return dtype_for_ctype(ctype)
