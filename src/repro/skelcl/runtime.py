"""SkelCL runtime initialization (``SkelCL::init()`` in the paper).

A process-wide singleton holds the simulated OpenCL context (one command
queue per GPU).  Containers and skeletons created afterwards use it
implicitly, mirroring the original library's global detail-hiding.
"""

from __future__ import annotations

from typing import List, Optional

from .. import ocl


class SkelCLError(Exception):
    pass


class SkelCLRuntime:
    def __init__(self, spec: ocl.DeviceSpec, num_devices: int, detect_races=None):
        self.spec = spec
        self.num_devices = num_devices
        self.context = ocl.Context.create(spec, num_devices, detect_races=detect_races)

    @property
    def devices(self) -> List[ocl.Device]:
        return self.context.devices

    @property
    def queues(self) -> List[ocl.CommandQueue]:
        return self.context.queues

    def queue(self, device_index: int) -> ocl.CommandQueue:
        return self.context.queues[device_index]

    def elapsed_ns(self) -> int:
        return self.context.elapsed_ns()

    def finish_all(self) -> int:
        """Resolve the whole command graph on every queue and return the
        critical-path elapsed time (see :meth:`ocl.Context.finish_all`)."""
        return self.context.finish_all()

    def reset_timelines(self) -> None:
        self.context.reset_timelines()


_runtime: Optional[SkelCLRuntime] = None


def init(num_devices: int = 1, spec: Optional[ocl.DeviceSpec] = None,
         detect_races=None) -> SkelCLRuntime:
    """Initialize SkelCL on ``num_devices`` simulated GPUs.

    Mirrors ``SkelCL::init()``; must be called before creating containers
    or executing skeletons.  Calling it again replaces the runtime.

    ``detect_races`` enables the SkelSan command-graph race detector on
    every queue (see :mod:`repro.analysis`): ``"report"`` warns,
    ``"strict"`` raises :class:`repro.analysis.RaceError`; ``None``
    defers to the ``SKELCL_SANITIZE`` environment variable.
    """
    global _runtime
    _runtime = SkelCLRuntime(spec if spec is not None else ocl.TESLA_T10, num_devices,
                             detect_races=detect_races)
    return _runtime


def terminate() -> None:
    """Release the runtime (``SkelCL::terminate()``)."""
    global _runtime
    if _runtime is not None:
        _runtime.context.release()
    _runtime = None


def get_runtime() -> SkelCLRuntime:
    if _runtime is None:
        raise SkelCLError("SkelCL is not initialized; call skelcl.init() first")
    return _runtime


def is_initialized() -> bool:
    return _runtime is not None
