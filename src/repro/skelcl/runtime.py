"""SkelCL runtime initialization (``SkelCL::init()`` in the paper).

``init()`` returns a :class:`Session` — an object owning the simulated
OpenCL context (one command queue per GPU) that is also installed as
the process-wide runtime, mirroring the original library's global
detail-hiding.  Containers and skeletons created afterwards use the
installed session implicitly; scoped code can instead write::

    with skelcl.init(num_devices=2) as session:
        ...                       # session.devices, session.metrics
        session.finish_all()
    # terminate() ran on exit

``terminate()`` is idempotent, and a ``Session`` closing itself only
tears down the global runtime if it still *is* the global runtime (a
later ``init()`` replaces it, as before).

Every ``init()`` keyword resolves through the unified configuration
chain (:mod:`repro.settings`): explicit kwarg >
``skelcl.configure(...)`` > ``SKELCL_*`` environment variable >
default.  ``Session.settings`` exposes the values a session actually
resolved.  On teardown the session honours the SkelScope switches it
resolved: ``trace=<path>`` exports the Chrome trace of everything the
session executed, ``metrics=<path>`` the metrics snapshot JSON.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence, Union

from .. import ocl
from .. import settings as _settings
from .partition import AdaptivePartitioner, Partition


class SkelCLError(Exception):
    pass


class SkelCLRuntime:
    def __init__(self, spec: Union[ocl.DeviceSpec, Sequence[ocl.DeviceSpec]],
                 num_devices: int, detect_races=None, backend=None):
        if isinstance(spec, ocl.DeviceSpec):
            specs: List[ocl.DeviceSpec] = [spec] * num_devices
        else:
            specs = [ocl.resolve_device_spec(s) for s in spec]
        self.specs = specs
        self.spec = specs[0] if specs else None
        self.num_devices = len(specs)
        # The active Partition sizing Block/Overlap splits, or None for
        # the historic even split.  Sessions manage it (static policy or
        # adaptive partitioner); skeletons read it via `partitioned()`.
        self.partition: Optional[Partition] = None
        self.context = ocl.Context.create(specs, detect_races=detect_races,
                                          backend=backend)

    @property
    def backend(self) -> str:
        """The NDRange execution backend every queue of this runtime uses."""
        return self.context.backend

    @property
    def devices(self) -> List[ocl.Device]:
        return self.context.devices

    @property
    def queues(self) -> List[ocl.CommandQueue]:
        return self.context.queues

    def queue(self, device_index: int) -> ocl.CommandQueue:
        return self.context.queues[device_index]

    def elapsed_ns(self) -> int:
        return self.context.elapsed_ns()

    def finish_all(self) -> int:
        """Resolve the whole command graph on every queue and return the
        critical-path elapsed time (see :meth:`ocl.Context.finish_all`)."""
        return self.context.finish_all()

    def reset_timelines(self) -> None:
        self.context.reset_timelines()


class Session(SkelCLRuntime):
    """A SkelCL runtime usable as a context manager.

    Owns the devices/queues/context of one ``init()`` call and exposes
    the SkelScope surface: ``session.metrics`` (the context's metrics
    registry), ``session.profile()`` (a scoped profiler, see
    :mod:`repro.scope.profile`), ``session.export_trace(path)`` and
    ``session.metrics_snapshot()``.  Exiting the ``with`` block (or
    calling :meth:`close`) terminates the runtime; both are idempotent.
    """

    def __init__(self, spec: Union[ocl.DeviceSpec, Sequence[ocl.DeviceSpec]],
                 num_devices: int, detect_races=None,
                 backend=None, lazy: Optional[bool] = None, partition=None):
        try:
            self.settings = _settings.resolve(
                backend=backend, lazy=lazy, partition=partition,
                sanitize=detect_races,
            )
        except ValueError as exc:
            raise SkelCLError(str(exc)) from None
        super().__init__(spec, num_devices,
                         detect_races=self.settings.sanitize,
                         backend=self.settings.backend)
        self._closed = False
        self.planner = None
        if self.settings.lazy:
            from ..plan.planner import Planner  # late: plan imports skelcl

            self.planner = Planner(self)
        self.partitioner: Optional[AdaptivePartitioner] = None
        self._install_partition_policy(self.settings.partition)

    # -- partitioning ------------------------------------------------------

    def _install_partition_policy(self, policy) -> None:
        if policy is None:
            return
        if isinstance(policy, Partition):
            if policy.num_devices != self.num_devices:
                raise SkelCLError(
                    f"partition has {policy.num_devices} weights for "
                    f"{self.num_devices} device(s)"
                )
            self.partition = policy
        elif isinstance(policy, AdaptivePartitioner):
            self.partitioner = policy
            self.partition = policy.partition
        elif policy in ("even",):
            self.partition = Partition.even(self.num_devices)
        elif policy in ("throughput", "proportional"):
            self.partition = Partition.from_specs(self.specs).quantized()
        elif policy in ("adaptive",):
            self.partitioner = AdaptivePartitioner(self)
            self.partition = self.partitioner.partition
        else:
            raise SkelCLError(
                f"unknown partition policy {policy!r} (expected 'even', "
                "'throughput', 'adaptive', a Partition, or an AdaptivePartitioner)"
            )

    def _observe_partition(self) -> None:
        """Feed the adaptive partitioner after a flush; a changed
        partition takes effect on the next skeleton call, where stale
        containers redistribute through the command graph."""
        if self.partitioner is not None:
            self.partitioner.observe()
            self.partition = self.partitioner.partition

    def use_adaptive(self, initial="throughput",
                     threshold: Optional[float] = None) -> AdaptivePartitioner:
        """Install (or replace) an adaptive partitioner on this session.

        ``initial`` seeds the split (``"throughput"``, ``"even"``, or an
        explicit Partition); ``threshold`` overrides the imbalance
        trigger.  Returns the partitioner, whose ``repartitions`` /
        ``history`` expose the adaptation trajectory."""
        kwargs = {} if threshold is None else {"threshold": threshold}
        self.partitioner = AdaptivePartitioner(self, initial=initial, **kwargs)
        self.partition = self.partitioner.partition
        return self.partitioner

    def rebalance(self) -> bool:
        """Force an adaptive re-size from the latest measurements, even
        below the imbalance threshold.  Returns True if the partition
        changed; no-op (False) without an adaptive partitioner."""
        if self.partitioner is None:
            return False
        self._flush_plan()
        changed = self.partitioner.observe(force=True)
        self.partition = self.partitioner.partition
        return changed

    # -- lazy planning -----------------------------------------------------

    @property
    def lazy(self) -> bool:
        return self.planner is not None

    def _flush_plan(self) -> None:
        if self.planner is not None:
            self.planner.flush()
            # Lazy mode's force points are where fresh per-device kernel
            # timings appear; re-partition here so the next deferred
            # batch is sized from what the last one measured.
            self._observe_partition()

    def finish_all(self) -> int:
        """Force any deferred skeleton calls, then resolve the whole
        command graph (see :meth:`SkelCLRuntime.finish_all`)."""
        self._flush_plan()
        elapsed = super().finish_all()
        self._observe_partition()
        return elapsed

    # -- observability -----------------------------------------------------

    @property
    def metrics(self):
        """The context's SkelScope metrics registry."""
        return self.context.metrics

    def metrics_snapshot(self) -> dict:
        self._flush_plan()
        return self.context.metrics_snapshot()

    def profile(self, *args, **kwargs):
        """``with session.profile() as prof:`` — see :func:`repro.scope.profile`."""
        from ..scope.profile import profile as _profile

        return _profile(self, *args, **kwargs)

    def export_trace(self, path: str) -> str:
        self._flush_plan()
        return self.context.export_trace(path)

    def render_timeline(self, width: int = 64) -> str:
        self._flush_plan()
        return self.context.render_timeline(width=width)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Terminate this session (idempotent).  If it is still the
        installed global runtime, the module-level state is cleared
        too; a session replaced by a later ``init()`` only releases its
        own context."""
        global _runtime
        if self._closed:
            return
        try:
            self._flush_plan()
        finally:
            self._closed = True
        _dump_observability(self)
        self.context.release()
        if _runtime is self:
            _runtime = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


_runtime: Optional[Session] = None


def _dump_observability(session: Session) -> None:
    """Honour the resolved ``trace`` / ``metrics`` settings
    (``SKELCL_TRACE`` / ``SKELCL_METRICS``) at teardown."""
    trace_path = session.settings.trace
    metrics_path = session.settings.metrics
    if not trace_path and not metrics_path:
        return
    from .. import scope

    session.finish_all()
    if trace_path:
        scope.write_trace(session.context, trace_path)
    if metrics_path:
        snapshot = session.context.metrics_snapshot()
        with open(metrics_path, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)


_INIT_KEYWORDS = ("num_devices", "spec", "detect_races", "backend", "lazy",
                  "devices", "partition")


def init(num_devices: Optional[int] = None, spec: Optional[ocl.DeviceSpec] = None,
         detect_races=None, backend: Optional[str] = None,
         lazy: Optional[bool] = None, devices=None, partition=None,
         **unexpected) -> Session:
    """Initialize SkelCL on ``num_devices`` simulated GPUs.

    Mirrors ``SkelCL::init()``; must be called before creating containers
    or executing skeletons.  Calling it again replaces the runtime.
    Returns a :class:`Session`, usable directly (the classic global
    style) or as a context manager that terminates on exit.

    ``devices`` builds a heterogeneous pool: a sequence of device specs
    and/or preset names (see :data:`repro.ocl.DEVICE_PRESETS`), one
    device per entry — ``skelcl.init(devices=["tesla", "cpu-8core"])``.
    It is mutually exclusive with ``num_devices``/``spec``, which keep
    their homogeneous meaning.

    ``partition`` selects how Block/Overlap distributions split data
    over the pool: ``None`` defers to ``skelcl.configure(partition=...)``,
    then ``SKELCL_PARTITION``, then the historic even split; ``"throughput"`` sizes chunks once,
    proportional to each device's modeled peak throughput;
    ``"adaptive"`` additionally re-sizes from measured per-device
    kernel time whenever the imbalance exceeds the threshold (see
    :mod:`repro.skelcl.partition`); an explicit
    :class:`~repro.skelcl.partition.Partition` pins the split.

    ``detect_races`` enables the SkelSan command-graph race detector on
    every queue (see :mod:`repro.analysis`): ``"report"`` warns,
    ``"strict"`` raises :class:`repro.analysis.RaceError`; ``None``
    defers to ``skelcl.configure(sanitize=...)``, then ``SKELCL_SANITIZE``.

    ``backend`` selects the NDRange execution backend (``"vector"`` or
    ``"interp"``); ``None`` defers to ``skelcl.configure(backend=...)``,
    then ``SKELCL_BACKEND``, then the vectorized default.

    ``lazy`` enables the lazy skeleton planner (see :mod:`repro.plan`):
    skeleton calls defer into a plan and are fused at force time;
    ``None`` defers to ``skelcl.configure(lazy=...)``, then
    ``SKELCL_LAZY`` (default: eager).

    Every argument is validated eagerly, before any device state is
    created: unknown keyword arguments raise :class:`TypeError`, bad
    device presets / partition policies raise :class:`SkelCLError`
    listing the valid choices.
    """
    global _runtime
    if unexpected:
        raise TypeError(
            f"init() got unexpected keyword argument(s) "
            f"{', '.join(sorted(unexpected))}; valid keywords: "
            + ", ".join(_INIT_KEYWORDS)
        )
    if devices is not None:
        if spec is not None:
            raise SkelCLError("pass either devices= or spec=, not both")
        if num_devices is not None:
            raise SkelCLError(
                "pass either devices= (one entry per device) or "
                "num_devices=, not both"
            )
        pool: Union[ocl.DeviceSpec, Sequence] = list(devices)
        if not pool:
            raise SkelCLError("devices= needs at least one device spec or "
                              "preset name")
        try:  # resolve eagerly so typos fail before any context exists
            pool = [ocl.resolve_device_spec(entry) for entry in pool]
        except ValueError as exc:
            raise SkelCLError(str(exc)) from None
        count = len(pool)
    else:
        if num_devices is None:
            num_devices = 1
        if not isinstance(num_devices, int) or isinstance(num_devices, bool) \
                or num_devices < 1:
            raise SkelCLError(
                f"num_devices must be a positive integer, got {num_devices!r}"
            )
        if spec is None:
            pool = ocl.TESLA_T10
        else:
            try:  # accept preset names here too, validated eagerly
                pool = ocl.resolve_device_spec(spec)
            except ValueError as exc:
                raise SkelCLError(str(exc)) from None
        count = num_devices
    _runtime = Session(pool, count, detect_races=detect_races,
                       backend=backend, lazy=lazy, partition=partition)
    return _runtime


def terminate() -> None:
    """Release the runtime (``SkelCL::terminate()``).  Idempotent: safe
    to call with no runtime installed, or twice."""
    runtime = _runtime
    if runtime is not None:
        runtime.close()  # clears the global when it is still installed


def get_runtime() -> Session:
    if _runtime is None:
        raise SkelCLError("SkelCL is not initialized; call skelcl.init() first")
    return _runtime


def is_initialized() -> bool:
    return _runtime is not None
