"""The Reduce skeleton: ``red (+) [v1..vn] = v1 + ... + vn`` (§3.3).

Implemented in the classical two-stage GPU form:

1. per device, a grid-stride pass accumulates elements into one partial
   per work-item and a local-memory tree reduction produces one partial
   per work-group;
2. all partials are gathered on the first device and a single-work-group
   launch of the same kernel folds them into the final value, which is
   returned as a :class:`Scalar`.

The customizing operator must be associative (the paper's requirement);
``identity`` supplies its neutral element (default ``0``), used to pad
inactive lanes.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .distribution import Block
from .funcparse import scalar_param, scalar_return
from .matrix import Matrix
from .runtime import SkelCLError, get_runtime
from .scalar import Scalar
from .skeleton import DEFAULT_WORK_GROUP_SIZE, Skeleton, default_call_label
from .vector import Vector

_KERNEL_TEMPLATE = """\
{user_source}

__kernel void skelcl_reduce(__global const {t}* SCL_IN,
                            __global {t}* SCL_OUT,
                            const unsigned int SCL_N,
                            const unsigned int SCL_OFFSET) {{
    __local {t} SCL_SCRATCH[{wg}];
    size_t SCL_LID = get_local_id(0);
    {t} SCL_ACC = {identity};
    for (size_t SCL_I = get_global_id(0); SCL_I < SCL_N; SCL_I += get_global_size(0)) {{
        SCL_ACC = {func}(SCL_ACC, SCL_IN[SCL_I + SCL_OFFSET]);
    }}
    SCL_SCRATCH[SCL_LID] = SCL_ACC;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (unsigned int SCL_S = {wg} / 2; SCL_S > 0; SCL_S = SCL_S / 2) {{
        if (SCL_LID < SCL_S) {{
            SCL_SCRATCH[SCL_LID] = {func}(SCL_SCRATCH[SCL_LID], SCL_SCRATCH[SCL_LID + SCL_S]);
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (SCL_LID == 0) {{
        SCL_OUT[get_group_id(0)] = SCL_SCRATCH[0];
    }}
}}
"""

# Stage 1 with a fused elementwise stage (map∘reduce): instead of
# loading pre-materialized elements, each grid-stride iteration applies
# the composed map chain (``{pre}``) to the *original* input.  The
# explicit ``({t})`` cast reproduces the store the eager pipeline would
# have performed on the intermediate, keeping results bit-exact.
_FUSED_KERNEL_TEMPLATE = """\
{pre_source}
{user_source}

__kernel void skelcl_reduce_fused(__global const {in_t}* SCL_IN,
                                  __global {t}* SCL_OUT,
                                  const unsigned int SCL_N,
                                  const unsigned int SCL_OFFSET{pre_params}) {{
    __local {t} SCL_SCRATCH[{wg}];
    size_t SCL_LID = get_local_id(0);
    {t} SCL_ACC = {identity};
    for (size_t SCL_I = get_global_id(0); SCL_I < SCL_N; SCL_I += get_global_size(0)) {{
        SCL_ACC = {func}(SCL_ACC, ({t})({pre}(SCL_IN[SCL_I + SCL_OFFSET]{pre_call})));
    }}
    SCL_SCRATCH[SCL_LID] = SCL_ACC;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (unsigned int SCL_S = {wg} / 2; SCL_S > 0; SCL_S = SCL_S / 2) {{
        if (SCL_LID < SCL_S) {{
            SCL_SCRATCH[SCL_LID] = {func}(SCL_SCRATCH[SCL_LID], SCL_SCRATCH[SCL_LID + SCL_S]);
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (SCL_LID == 0) {{
        SCL_OUT[get_group_id(0)] = SCL_SCRATCH[0];
    }}
}}
"""


class Reduce(Skeleton):
    def __init__(self, source, identity: str = "0",
                 work_group_size: int = DEFAULT_WORK_GROUP_SIZE, max_groups: int = 64):
        self.identity = identity
        self.work_group_size = work_group_size
        self.max_groups = max_groups
        super().__init__(source)

    def _bind_user(self) -> None:
        if self.user.arity != 2:
            raise SkelCLError("a Reduce customizing function needs exactly two parameters")
        self.element_type = scalar_param(self.user, 0)
        if scalar_param(self.user, 1) != self.element_type or scalar_return(self.user) != self.element_type:
            raise SkelCLError("a Reduce operator must have type T (T, T)")

    def kernel_source(self) -> str:
        return _KERNEL_TEMPLATE.format(
            user_source=self.user.source,
            t=self.element_type.name,
            func=self.user.name,
            identity=self.identity,
            wg=self.work_group_size,
        )

    def fused_kernel_source(self, premap) -> str:
        """Stage-1 source with ``premap`` (a composed map chain from
        :mod:`repro.plan.compose`) applied to every loaded element."""
        return _FUSED_KERNEL_TEMPLATE.format(
            pre_source=premap.source,
            user_source=self.user.source,
            in_t=premap.in_type.name,
            t=self.element_type.name,
            pre=premap.name,
            pre_params=self.extra_param_source(premap.extra_types),
            pre_call=self.extra_call_source(premap.extra_types),
            func=self.user.name,
            identity=self.identity,
            wg=self.work_group_size,
        )

    def __call__(self, input_container: Union[Vector, Matrix], *,
                 out: Optional[Scalar] = None,
                 label: Optional[str] = None) -> Scalar:
        if out is not None and not isinstance(out, Scalar):
            raise SkelCLError(
                f"Reduce out= must be a Scalar, got {type(out).__name__}"
            )
        if self.jit is not None and isinstance(input_container, (Vector, Matrix)):
            self._specialize(self._element_hints([input_container] * 2, ()))
        planner = getattr(get_runtime(), "planner", None)
        if planner is not None and isinstance(input_container, (Vector, Matrix)):
            label = label or default_call_label("Reduce", self.user.name)
            return planner.reduce_now(self, input_container, out, label)
        return self._execute(input_container, out=out, label=label)

    def _execute(self, input_container: Union[Vector, Matrix], *,
                 out: Optional[Scalar] = None, label: Optional[str] = None,
                 premap=None) -> Scalar:
        if self.jit is not None and premap is None \
                and isinstance(input_container, (Vector, Matrix)):
            self._specialize(self._element_hints([input_container] * 2, ()))
        self._begin_call(label)
        runtime = get_runtime()
        dtype = self.result_dtype(self.element_type)
        if out is not None and not isinstance(out, Scalar):
            raise SkelCLError(
                f"Reduce out= must be a Scalar, got {type(out).__name__}"
            )
        program = self._program(self.kernel_source(), f"skelcl_reduce_{self.user.name}")
        if premap is None:
            if input_container.dtype != dtype:
                raise SkelCLError(
                    f"Reduce input dtype {input_container.dtype} does not match {self.element_type}"
                )
            stage1_program, stage1_name = program, "skelcl_reduce"
            extras = ()
        else:
            in_dtype = self.result_dtype(premap.in_type)
            if input_container.dtype != in_dtype:
                raise SkelCLError(
                    f"Reduce premap input dtype {input_container.dtype} does not "
                    f"match {premap.in_type}"
                )
            stage1_program = self._program(
                self.fused_kernel_source(premap),
                f"skelcl_reduce_{self.user.name}_fused",
            )
            stage1_name = "skelcl_reduce_fused"
            extras = tuple(self.check_extra_args(premap.extra_types, premap.extras))
        distribution = self.resolve_input_distribution(input_container, Block())
        chunks = input_container.ensure_on_devices(distribution)

        unit_elements = input_container._unit_elements
        itembytes = dtype.itemsize
        wg = self.work_group_size

        partials = []
        partial_reads = []
        seen_copy = False
        for position, (chunk, buffer) in enumerate(chunks):
            n = chunk.owned_size * unit_elements
            if n == 0:
                continue
            if distribution.kind == "copy":
                if seen_copy:
                    continue  # every device holds the same data; reduce once
                seen_copy = True
            groups = min(self.max_groups, (n + wg - 1) // wg)
            queue = runtime.queue(chunk.device_index)
            partial_buffer = runtime.context.create_buffer(
                groups * itembytes, runtime.devices[chunk.device_index], name="reduce_partials"
            )
            kernel = stage1_program.create_kernel(stage1_name)
            kernel.set_args(buffer, partial_buffer, n,
                            chunk.halo_before * unit_elements, *extras)
            launch = self._enqueue(chunk.device_index, kernel, (groups * wg,), (wg,),
                                   wait_for=input_container.chunk_events(position),
                                   inputs=[(input_container, position)])
            data, read_event = queue.enqueue_read_buffer(
                partial_buffer, dtype, groups, event_wait_list=[launch]
            )
            partial_buffer.release()
            partials.append(data)
            partial_reads.append(read_event)

        if not partials:
            raise SkelCLError("Reduce over an empty container")
        gathered = np.concatenate(partials)
        if len(gathered) == 1:
            return self._result(gathered[0], dtype, out)

        # Final stage: fold all partials in a single work-group on
        # device 0.  The gathered array depends on every partial
        # download, so the stage-2 upload waits on them all — the only
        # cross-device synchronization point of the reduction.
        device0 = runtime.devices[0]
        queue0 = runtime.queue(0)
        in_buffer = runtime.context.create_buffer(gathered.nbytes, device0, name="reduce_stage2_in")
        out_buffer = runtime.context.create_buffer(itembytes, device0, name="reduce_stage2_out")
        write_event = queue0.enqueue_write_buffer(in_buffer, gathered,
                                                  event_wait_list=partial_reads)
        kernel = program.create_kernel("skelcl_reduce")
        kernel.set_args(in_buffer, out_buffer, len(gathered), 0)
        launch2 = self._enqueue(0, kernel, (wg,), (wg,), wait_for=[write_event])
        result, _event = queue0.enqueue_read_buffer(out_buffer, dtype, 1,
                                                    event_wait_list=[launch2])
        in_buffer.release()
        out_buffer.release()
        return self._result(result[0], dtype, out)

    @staticmethod
    def _result(value, dtype, out: Optional[Scalar]) -> Scalar:
        if out is not None:
            return out.assign(value, dtype)
        return Scalar(value, dtype)
