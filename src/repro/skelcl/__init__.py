"""repro.skelcl: the SkelCL library (the paper's contribution).

The paper's three enhancements over raw OpenCL:

1. **Parallel container data types** — :class:`Vector`, :class:`Matrix`
   (and the :class:`Scalar` result wrapper): transparently accessible
   from host and devices with implicit, lazy memory transfers (§3.1).
2. **Data distributions** — :class:`Single`, :class:`Copy`,
   :class:`Block`, :class:`Overlap` with implicit redistribution (§3.2).
3. **Algorithmic skeletons** — :class:`Map`, :class:`Zip`,
   :class:`Reduce`, :class:`Scan` (§3.3), :class:`MapOverlap` (§3.4) and
   :class:`AllPairs` (§3.5), customized with OpenCL-C function strings
   or with ``@skelcl.jit``-decorated Python functions (``docs/jit.md``).

The dot-product example from Listing 1.1::

    import repro.skelcl as skelcl

    skelcl.init(num_devices=2)
    sum_ = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    mult = skelcl.Zip("float func(float x, float y) { return x * y; }")
    a = skelcl.Vector(data=...)
    b = skelcl.Vector(data=...)
    c = sum_(mult(a, b)).get_value()
"""

from ..jit import (INC, Intent, IntentAnnotation, JitError, JitFunction, READ,
                   RW, WRITE, get, jit)
from .allpairs import AllPairs
from .container import Container
from .distribution import Block, Chunk, Copy, Distribution, Overlap, Single, block, block_ranges, copy, overlap, single
from .index import IndexMatrix, IndexVector
from .map import Map
from .mapoverlap import BoundaryMode, MapOverlap, SCL_NEAREST, SCL_NEUTRAL
from .matrix import Matrix
from .partition import AdaptivePartitioner, Partition, modeled_throughput
from ..scope.profile import profile
from ..settings import PARTITION_POLICIES, Settings, configure, current_settings
from .reduce import Reduce
from .runtime import Session, SkelCLError, get_runtime, init, is_initialized, terminate
from .scalar import Scalar
from .scan import Scan
from .skeleton import DEFAULT_WORK_GROUP_SIZE, Skeleton
from .vector import Vector
from .zip import Zip

__all__ = [
    "AdaptivePartitioner",
    "AllPairs",
    "Block",
    "BoundaryMode",
    "Chunk",
    "Container",
    "Copy",
    "DEFAULT_WORK_GROUP_SIZE",
    "Distribution",
    "INC",
    "IndexMatrix",
    "IndexVector",
    "Intent",
    "IntentAnnotation",
    "JitError",
    "JitFunction",
    "Map",
    "MapOverlap",
    "Matrix",
    "Overlap",
    "PARTITION_POLICIES",
    "Partition",
    "READ",
    "RW",
    "Reduce",
    "SCL_NEAREST",
    "SCL_NEUTRAL",
    "Scalar",
    "Scan",
    "Session",
    "Settings",
    "Single",
    "SkelCLError",
    "Skeleton",
    "Vector",
    "WRITE",
    "Zip",
    "block",
    "block_ranges",
    "configure",
    "copy",
    "current_settings",
    "get",
    "get_runtime",
    "init",
    "jit",
    "is_initialized",
    "modeled_throughput",
    "overlap",
    "profile",
    "single",
    "terminate",
]
