"""Mapping between numpy dtypes and OpenCL-C element types."""

from __future__ import annotations

import numpy as np

from ..kernelc.ctypes_ import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    ScalarType,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
)

_DTYPE_TO_CTYPE = {
    np.dtype(np.int8): CHAR,
    np.dtype(np.uint8): UCHAR,
    np.dtype(np.int16): SHORT,
    np.dtype(np.uint16): USHORT,
    np.dtype(np.int32): INT,
    np.dtype(np.uint32): UINT,
    np.dtype(np.int64): LONG,
    np.dtype(np.uint64): ULONG,
    np.dtype(np.float32): FLOAT,
    np.dtype(np.float64): DOUBLE,
}

_CNAME_TO_DTYPE = {
    "char": np.dtype(np.int8),
    "uchar": np.dtype(np.uint8),
    "short": np.dtype(np.int16),
    "ushort": np.dtype(np.uint16),
    "int": np.dtype(np.int32),
    "uint": np.dtype(np.uint32),
    "long": np.dtype(np.int64),
    "ulong": np.dtype(np.uint64),
    "size_t": np.dtype(np.uint64),
    "float": np.dtype(np.float32),
    "double": np.dtype(np.float64),
    "bool": np.dtype(np.uint8),
}


def ctype_for_dtype(dtype) -> ScalarType:
    dtype = np.dtype(dtype)
    try:
        return _DTYPE_TO_CTYPE[dtype]
    except KeyError:
        raise TypeError(f"unsupported container dtype {dtype}") from None


def dtype_for_ctype(ctype: ScalarType) -> np.dtype:
    try:
        return _CNAME_TO_DTYPE[ctype.name]
    except KeyError:
        raise TypeError(f"no numpy dtype for C type {ctype}") from None


def dtype_for_cname(name: str) -> np.dtype:
    try:
        return _CNAME_TO_DTYPE[name]
    except KeyError:
        raise TypeError(f"no numpy dtype for C type name {name!r}") from None
