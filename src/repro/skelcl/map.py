"""The Map skeleton: ``map f [c1..cn] = [f(c1)..f(cn)]`` (§3.3).

Works on vectors and matrices (elementwise, flat).  The customizing
function takes the element as its first parameter; any further scalar
parameters become *additional arguments* supplied at call time::

    neg = Map("float func(float x) { return -x; }")
    result = neg(input_vector)

    scale = Map("float func(float x, float s) { return x * s; }")
    result = scale(input_vector, 2.5)
"""

from __future__ import annotations

from typing import Optional, Union

from .container import Container
from .distribution import Block
from .funcparse import extra_args_of, scalar_param, scalar_return
from .matrix import Matrix
from .runtime import SkelCLError, get_runtime
from .skeleton import (DEFAULT_WORK_GROUP_SIZE, Skeleton, default_call_label,
                       partitioned, round_up)
from .vector import Vector

_KERNEL_TEMPLATE = """\
{user_source}

__kernel void skelcl_map(__global const {in_type}* SCL_IN,
                         __global {out_type}* SCL_OUT,
                         const unsigned int SCL_N,
                         const unsigned int SCL_OFFSET{extra_params}) {{
    size_t SCL_ID = get_global_id(0);
    if (SCL_ID < SCL_N) {{
        SCL_OUT[SCL_ID] = {func}(SCL_IN[SCL_ID + SCL_OFFSET]{extra_call});
    }}
}}
"""

# Map over an IndexVector: the element IS the global index, so there is
# no input buffer at all (SCL_FIRST is the chunk's first index).
_INDEX_KERNEL_TEMPLATE = """\
{user_source}

__kernel void skelcl_map_index(__global {out_type}* SCL_OUT,
                               const unsigned int SCL_N,
                               const long SCL_FIRST{extra_params}) {{
    size_t SCL_ID = get_global_id(0);
    if (SCL_ID < SCL_N) {{
        SCL_OUT[SCL_ID] = {func}(({in_type})(SCL_FIRST + SCL_ID){extra_call});
    }}
}}
"""

# Map over an IndexMatrix: the customizing function receives (row, col).
_INDEX_MATRIX_KERNEL_TEMPLATE = """\
{user_source}

__kernel void skelcl_map_index_m(__global {out_type}* SCL_OUT,
                                 const int SCL_COLS,
                                 const int SCL_ROWS_OWNED,
                                 const long SCL_ROW0{extra_params}) {{
    long SCL_COL = get_global_id(0);
    long SCL_LROW = get_global_id(1);
    if (SCL_COL < SCL_COLS && SCL_LROW < SCL_ROWS_OWNED) {{
        SCL_OUT[SCL_LROW * SCL_COLS + SCL_COL] =
            {func}(({row_type})(SCL_ROW0 + SCL_LROW), ({col_type})SCL_COL{extra_call});
    }}
}}
"""


class Map(Skeleton):
    def __init__(self, source, work_group_size: int = DEFAULT_WORK_GROUP_SIZE):
        self.work_group_size = work_group_size
        super().__init__(source)

    def _bind_user(self) -> None:
        if self.user.arity < 1:
            raise SkelCLError("a Map customizing function needs at least one parameter")
        self.in_type = scalar_param(self.user, 0)
        self.out_type = scalar_return(self.user)
        self.extra_types = [scalar_param(self.user, 1 + i)
                            for i in range(self.user.arity - 1)]
        _ = extra_args_of  # extra types validated above

    def _specialize_call(self, input_container, extra_args) -> None:
        """Specialize a jit customizer from this call's argument types
        (index containers supply ``long`` index parameters)."""
        if self.jit is None:
            return
        from ..kernelc.ctypes_ import LONG
        from .index import IndexMatrix, IndexVector

        if isinstance(input_container, IndexMatrix):
            hints = [LONG, LONG] + [self._hint_for_extra(v) for v in extra_args]
        elif isinstance(input_container, IndexVector):
            hints = [LONG] + [self._hint_for_extra(v) for v in extra_args]
        else:
            hints = self._element_hints([input_container], extra_args)
        self._specialize(hints)

    def kernel_source(self) -> str:
        return _KERNEL_TEMPLATE.format(
            user_source=self.user.source,
            in_type=self.in_type.name,
            out_type=self.out_type.name,
            func=self.user.name,
            extra_params=self.extra_param_source(self.extra_types),
            extra_call=self.extra_call_source(self.extra_types),
        )

    def index_kernel_source(self) -> str:
        return _INDEX_KERNEL_TEMPLATE.format(
            user_source=self.user.source,
            in_type=self.in_type.name,
            out_type=self.out_type.name,
            func=self.user.name,
            extra_params=self.extra_param_source(self.extra_types),
            extra_call=self.extra_call_source(self.extra_types),
        )

    def index_matrix_kernel_source(self) -> str:
        return _INDEX_MATRIX_KERNEL_TEMPLATE.format(
            user_source=self.user.source,
            row_type=self.in_type.name,
            col_type=self.user.param_types[1].name,
            out_type=self.out_type.name,
            func=self.user.name,
            extra_params=self.extra_param_source(self.extra_types[1:]),
            extra_call=self.extra_call_source(self.extra_types[1:]),
        )

    def _call_index_matrix(self, index_matrix, extra_args, out, sample_fraction):
        """Map over an IndexMatrix: the function receives (row, col)."""
        if self.user.arity < 2:
            raise SkelCLError(
                "Map over an IndexMatrix needs a customizing function taking "
                "(row, col) as its first two parameters"
            )
        col_type = self.user.param_types[1]
        if not (self.in_type.is_integer() and getattr(col_type, "is_integer", lambda: False)()):
            raise SkelCLError(
                "Map over an IndexMatrix needs integer (row, col) parameters"
            )
        extras = self.check_extra_args(self.extra_types[1:], extra_args)
        out_dtype = self.result_dtype(self.out_type)
        if out is None:
            out = Matrix(index_matrix.shape, dtype=out_dtype)
        elif out.dtype != out_dtype:
            raise SkelCLError(f"output container dtype {out.dtype} does not match {self.out_type}")
        out_chunks = out.prepare_as_output(partitioned(index_matrix.distribution))
        program = self._program(self.index_matrix_kernel_source(),
                                f"skelcl_map_index_m_{self.user.name}")
        cols = index_matrix.cols
        local = (16, 16)
        for position, (chunk, out_buffer) in enumerate(out_chunks):
            rows = chunk.owned_size
            if rows == 0:
                continue
            kernel = program.create_kernel("skelcl_map_index_m")
            kernel.set_args(out_buffer, cols, rows, chunk.owned_start, *extras)
            global_size = (round_up(cols, local[0]), round_up(rows, local[1]))
            self._enqueue(chunk.device_index, kernel, global_size, local, sample_fraction,
                          wait_for=out.chunk_write_events(position),
                          output=out, output_position=position)
        out.mark_written_on_devices()
        return out

    def _call_index(self, index_vector, extras, out, sample_fraction):
        """Map over an IndexVector: no input buffer, elements are indices."""
        out_dtype = self.result_dtype(self.out_type)
        if out is None:
            out = Vector(index_vector.size, dtype=out_dtype)
        elif out.dtype != out_dtype:
            raise SkelCLError(f"output container dtype {out.dtype} does not match {self.out_type}")
        out_chunks = out.prepare_as_output(partitioned(index_vector.distribution))
        program = self._program(self.index_kernel_source(), f"skelcl_map_index_{self.user.name}")
        for position, (chunk, out_buffer) in enumerate(out_chunks):
            n = chunk.owned_size
            if n == 0:
                continue
            kernel = program.create_kernel("skelcl_map_index")
            kernel.set_args(out_buffer, n, chunk.owned_start, *extras)
            global_size = round_up(n, self.work_group_size)
            self._enqueue(chunk.device_index, kernel, (global_size,), (self.work_group_size,),
                          sample_fraction,
                          wait_for=out.chunk_write_events(position),
                          output=out, output_position=position)
        out.mark_written_on_devices()
        return out

    def __call__(self, input_container: Union[Vector, Matrix], *extra_args,
                 out: Optional[Container] = None, label: Optional[str] = None,
                 sample_fraction: Optional[float] = None):
        from .index import IndexMatrix, IndexVector

        self._specialize_call(input_container, extra_args)
        planner = getattr(get_runtime(), "planner", None)
        if (planner is not None and out is None and sample_fraction is None
                and not isinstance(input_container, (IndexMatrix, IndexVector))
                and isinstance(input_container, (Vector, Matrix))):
            label = label or default_call_label("Map", self.user.name)
            return planner.defer_map(self, input_container, extra_args, label)
        return self._execute(input_container, extra_args, out=out, label=label,
                             sample_fraction=sample_fraction)

    def _execute(self, input_container: Union[Vector, Matrix], extra_args=(),
                 *, out: Optional[Container] = None, label: Optional[str] = None,
                 sample_fraction: Optional[float] = None):
        self._specialize_call(input_container, extra_args)
        self._begin_call(label)
        runtime = get_runtime()
        from .index import IndexMatrix, IndexVector

        if isinstance(input_container, IndexMatrix):
            return self._call_index_matrix(input_container, extra_args, out, sample_fraction)
        if isinstance(input_container, IndexVector):
            if not self.in_type.is_integer():
                raise SkelCLError(
                    f"Map over an IndexVector needs an integer parameter, "
                    f"the customizing function takes {self.in_type}"
                )
            extras = self.check_extra_args(self.extra_types, extra_args)
            return self._call_index(input_container, extras, out, sample_fraction)
        if input_container.dtype != self.result_dtype(self.in_type):
            raise SkelCLError(
                f"Map input has dtype {input_container.dtype}, but the customizing "
                f"function takes {self.in_type}"
            )
        extras = self.check_extra_args(self.extra_types, extra_args)

        distribution = self.resolve_input_distribution(input_container, Block())
        chunks = input_container.ensure_on_devices(distribution)

        out_dtype = self.result_dtype(self.out_type)
        if out is None:
            if isinstance(input_container, Matrix):
                out = Matrix(input_container.shape, dtype=out_dtype)
            else:
                out = Vector(input_container.size, dtype=out_dtype)
        elif out.dtype != out_dtype:
            raise SkelCLError(f"output container dtype {out.dtype} does not match {self.out_type}")
        out_chunks = out.prepare_as_output(self.output_distribution(distribution))

        program = self._program(self.kernel_source(), f"skelcl_map_{self.user.name}")
        unit_elements = input_container._unit_elements
        for position, ((in_chunk, in_buffer), (out_chunk, out_buffer)) in enumerate(
            zip(chunks, out_chunks)
        ):
            n = in_chunk.owned_size * unit_elements
            if n == 0:
                continue
            offset = in_chunk.halo_before * unit_elements
            kernel = program.create_kernel("skelcl_map")
            kernel.set_args(in_buffer, out_buffer, n, offset, *extras)
            global_size = round_up(n, self.work_group_size)
            self._enqueue(in_chunk.device_index, kernel, (global_size,), (self.work_group_size,),
                          sample_fraction,
                          wait_for=input_container.chunk_events(position)
                          + out.chunk_write_events(position),
                          inputs=[(input_container, position)],
                          output=out, output_position=position)
        out.mark_written_on_devices()
        return out
