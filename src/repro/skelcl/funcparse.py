"""Parsing of user-supplied customizing functions.

SkelCL users pass functions as plain OpenCL-C strings (§3.3): the
library parses them to learn the function name and signature, which
drive kernel code generation and container type checking — and, for
MapOverlap, to rewrite the signature with the hidden position/geometry
parameters the generated ``get()`` accessor needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..kernelc import ast
from ..kernelc.ctypes_ import CType, PointerType, ScalarType
from ..kernelc.diagnostics import CompileError
from ..kernelc.parser import parse
from ..kernelc.preprocessor import preprocess
from .runtime import SkelCLError


@dataclass
class UserFunction:
    source: str  # the (preprocessed) full user source, possibly with helpers
    name: str  # the customizing function: the *last* function defined
    return_type: CType
    param_types: Tuple[CType, ...]
    param_names: Tuple[str, ...]
    definition: ast.FunctionDef

    @property
    def arity(self) -> int:
        return len(self.param_types)


def parse_user_function(source: str) -> UserFunction:
    """Parse a customizing function string.

    The string may contain several helper functions; the last function
    defined is the customizing function (as in SkelCL).
    """
    expanded = preprocess(source, "<user function>")
    try:
        program = parse(expanded, "<user function>")
    except CompileError as exc:
        raise SkelCLError(f"cannot parse user function:\n{exc}") from exc
    if not program.functions:
        raise SkelCLError("user function source defines no function")
    fn = program.functions[-1]
    if fn.is_kernel:
        raise SkelCLError("a customizing function must not be a __kernel")
    return UserFunction(
        source=expanded,
        name=fn.name,
        return_type=fn.return_type,
        param_types=tuple(p.declared_type for p in fn.params),
        param_names=tuple(p.name for p in fn.params),
        definition=fn,
    )


def scalar_param(user_function: UserFunction, index: int) -> ScalarType:
    ctype = user_function.param_types[index]
    if not isinstance(ctype, ScalarType) or not ctype.is_arithmetic():
        raise SkelCLError(
            f"parameter {index} of {user_function.name!r} must be a scalar "
            f"arithmetic type, got {ctype}"
        )
    return ctype


def scalar_return(user_function: UserFunction) -> ScalarType:
    ctype = user_function.return_type
    if not isinstance(ctype, ScalarType) or not ctype.is_arithmetic():
        raise SkelCLError(
            f"{user_function.name!r} must return a scalar arithmetic type, got {ctype}"
        )
    return ctype


def pointer_param(user_function: UserFunction, index: int) -> PointerType:
    ctype = user_function.param_types[index]
    if not isinstance(ctype, PointerType):
        raise SkelCLError(
            f"parameter {index} of {user_function.name!r} must be a pointer, got {ctype}"
        )
    return ctype


def append_hidden_params(user_function: UserFunction, extra_params: str) -> str:
    """Rewrite the customizing function's signature, appending
    ``extra_params`` (e.g. ``"long _gx, int _w"``) — used by MapOverlap
    to put the hidden geometry arguments in scope for ``get()``.
    """
    source = user_function.source
    body_offset = user_function.definition.body.span.start.offset
    close = source.rfind(")", 0, body_offset)
    if close < 0:
        raise SkelCLError("cannot locate the user function's parameter list")
    # Empty parameter list: don't produce "(, extra)".
    open_paren = source.rfind("(", 0, close)
    inner = source[open_paren + 1 : close].strip()
    separator = ", " if inner and inner != "void" else ""
    if inner == "void":
        return source[:open_paren + 1] + extra_params + source[close:]
    return source[:close] + separator + extra_params + source[close:]


def extra_args_of(user_function: UserFunction, fixed: int) -> List[CType]:
    """The trailing "additional argument" types after the fixed ones."""
    return list(user_function.param_types[fixed:])
