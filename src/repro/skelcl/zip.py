"""The Zip skeleton: elementwise combination of two containers (§3.3)::

    add = Zip("float func(float x, float y) { return x + y; }")
    result = add(left_vector, right_vector)

Additional scalar arguments after the two elements are supported, as in
Map.
"""

from __future__ import annotations

from typing import Optional, Union

from .container import Container
from .distribution import Block
from .funcparse import scalar_param, scalar_return
from .matrix import Matrix
from .runtime import SkelCLError, get_runtime
from .skeleton import (DEFAULT_WORK_GROUP_SIZE, Skeleton, default_call_label,
                       round_up)
from .vector import Vector

_KERNEL_TEMPLATE = """\
{user_source}

__kernel void skelcl_zip(__global const {left_type}* SCL_LEFT,
                         __global const {right_type}* SCL_RIGHT,
                         __global {out_type}* SCL_OUT,
                         const unsigned int SCL_N,
                         const unsigned int SCL_LEFT_OFFSET,
                         const unsigned int SCL_RIGHT_OFFSET{extra_params}) {{
    size_t SCL_ID = get_global_id(0);
    if (SCL_ID < SCL_N) {{
        SCL_OUT[SCL_ID] = {func}(SCL_LEFT[SCL_ID + SCL_LEFT_OFFSET],
                                 SCL_RIGHT[SCL_ID + SCL_RIGHT_OFFSET]{extra_call});
    }}
}}
"""


class Zip(Skeleton):
    def __init__(self, source, work_group_size: int = DEFAULT_WORK_GROUP_SIZE):
        self.work_group_size = work_group_size
        super().__init__(source)

    def _bind_user(self) -> None:
        if self.user.arity < 2:
            raise SkelCLError("a Zip customizing function needs at least two parameters")
        self.left_type = scalar_param(self.user, 0)
        self.right_type = scalar_param(self.user, 1)
        self.out_type = scalar_return(self.user)
        self.extra_types = [scalar_param(self.user, 2 + i) for i in range(self.user.arity - 2)]

    def kernel_source(self) -> str:
        return _KERNEL_TEMPLATE.format(
            user_source=self.user.source,
            left_type=self.left_type.name,
            right_type=self.right_type.name,
            out_type=self.out_type.name,
            func=self.user.name,
            extra_params=self.extra_param_source(self.extra_types),
            extra_call=self.extra_call_source(self.extra_types),
        )

    def __call__(self, left: Union[Vector, Matrix], right: Union[Vector, Matrix],
                 *extra_args, out: Optional[Container] = None,
                 label: Optional[str] = None):
        if self.jit is not None and isinstance(left, (Vector, Matrix)) \
                and isinstance(right, (Vector, Matrix)):
            self._specialize(self._element_hints([left, right], extra_args))
        planner = getattr(get_runtime(), "planner", None)
        if (planner is not None and out is None
                and type(left) in (Vector, Matrix)
                and type(right) in (Vector, Matrix)):
            label = label or default_call_label("Zip", self.user.name)
            return planner.defer_zip(self, left, right, extra_args, label)
        return self._execute(left, right, extra_args, out=out, label=label)

    def _execute(self, left: Union[Vector, Matrix], right: Union[Vector, Matrix],
                 extra_args=(), *, out: Optional[Container] = None,
                 label: Optional[str] = None):
        if self.jit is not None and isinstance(left, (Vector, Matrix)) \
                and isinstance(right, (Vector, Matrix)):
            self._specialize(self._element_hints([left, right], extra_args))
        self._begin_call(label)
        runtime = get_runtime()
        if type(left) is not type(right):
            raise SkelCLError("Zip inputs must both be vectors or both be matrices")
        left_size = left.shape if isinstance(left, Matrix) else left.size
        right_size = right.shape if isinstance(right, Matrix) else right.size
        if left_size != right_size:
            raise SkelCLError(f"Zip inputs differ in size: {left_size} vs {right_size}")
        if left.dtype != self.result_dtype(self.left_type):
            raise SkelCLError(f"left input dtype {left.dtype} does not match {self.left_type}")
        if right.dtype != self.result_dtype(self.right_type):
            raise SkelCLError(f"right input dtype {right.dtype} does not match {self.right_type}")
        extras = self.check_extra_args(self.extra_types, extra_args)

        distribution = self.resolve_input_distribution(left, Block())
        left_chunks = left.ensure_on_devices(distribution)
        right_chunks = right.ensure_on_devices(distribution)

        out_dtype = self.result_dtype(self.out_type)
        if out is None:
            if isinstance(left, Matrix):
                out = Matrix(left.shape, dtype=out_dtype)
            else:
                out = Vector(left.size, dtype=out_dtype)
        elif out.dtype != out_dtype:
            raise SkelCLError(f"output container dtype {out.dtype} does not match {self.out_type}")
        out_chunks = out.prepare_as_output(self.output_distribution(distribution))

        program = self._program(self.kernel_source(), f"skelcl_zip_{self.user.name}")
        unit_elements = left._unit_elements
        for position, ((l_chunk, l_buffer), (r_chunk, r_buffer), (o_chunk, o_buffer)) in enumerate(
            zip(left_chunks, right_chunks, out_chunks)
        ):
            n = l_chunk.owned_size * unit_elements
            if n == 0:
                continue
            kernel = program.create_kernel("skelcl_zip")
            kernel.set_args(
                l_buffer,
                r_buffer,
                o_buffer,
                n,
                l_chunk.halo_before * unit_elements,
                r_chunk.halo_before * unit_elements,
                *extras,
            )
            global_size = round_up(n, self.work_group_size)
            self._enqueue(l_chunk.device_index, kernel, (global_size,), (self.work_group_size,),
                          wait_for=left.chunk_events(position)
                          + right.chunk_events(position)
                          + out.chunk_write_events(position),
                          inputs=[(left, position), (right, position)],
                          output=out, output_position=position)
        out.mark_written_on_devices()
        return out
