"""The AllPairs skeleton (§3.5): ``C[i,j] = A_i ⊕ B_j`` over all row
pairs of an ``n×d`` matrix A and an ``m×d`` matrix B.

Two customization forms are supported, as in SkelCL:

* **zip/reduce composition** — the row operator is
  ``⊕(a, b) = reduce(zip(a, b))``, supplied as a :class:`Zip` and a
  :class:`Reduce`; the generated kernel fuses both (e.g. matrix
  multiplication: zip = multiply, reduce = add)::

      mult = Zip("float func(float x, float y) { return x * y; }")
      plus = Reduce("float func(float x, float y) { return x + y; }")
      matmul = AllPairs(plus, mult)
      C = matmul(A, B_transposed)

* **raw row function** — a function receiving both row pointers and the
  row length: ``float func(const float* a, const float* b, int d)``.

Default distributions: A block (rows), B copy, C block — each device
computes the C rows matching its A rows, which is the scalable
multi-GPU decomposition the paper's distribution mechanism enables.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .distribution import Block, Copy
from .funcparse import parse_user_function, pointer_param, scalar_return
from .matrix import Matrix
from .reduce import Reduce
from .runtime import SkelCLError, get_runtime
from .skeleton import (default_call_label, partitioned, reject_positional_out,
                       rename_function, round_up)
from .types_ import dtype_for_ctype
from .zip import Zip

_FUSED_TEMPLATE = """\
{zip_source}

{reduce_source}

__kernel void skelcl_allpairs(__global const {t}* SCL_A,
                              __global const {t}* SCL_B,
                              __global {u}* SCL_C,
                              const unsigned int SCL_N,
                              const unsigned int SCL_M,
                              const unsigned int SCL_D) {{
    size_t SCL_COL = get_global_id(0);
    size_t SCL_ROW = get_global_id(1);
    if (SCL_ROW < SCL_N && SCL_COL < SCL_M) {{
        {u} SCL_ACC = {identity};
        for (unsigned int SCL_K = 0; SCL_K < SCL_D; ++SCL_K) {{
            SCL_ACC = SCL_RED_F(SCL_ACC,
                                SCL_ZIP_F(SCL_A[SCL_ROW * SCL_D + SCL_K],
                                          /* generic variant: the tiled
                                             kernel below is the coalesced
                                             path.
                                             skelcl-lint: allow(strided-global-read) */
                                          SCL_B[SCL_COL * SCL_D + SCL_K]));
        }}
        SCL_C[SCL_ROW * SCL_M + SCL_COL] = SCL_ACC;
    }}
}}
"""

_TILED_TEMPLATE = """\
{zip_source}

{reduce_source}

#define TILE {tile}

__kernel void skelcl_allpairs(__global const {t}* SCL_A,
                              __global const {t}* SCL_B,
                              __global {u}* SCL_C,
                              const unsigned int SCL_N,
                              const unsigned int SCL_M,
                              const unsigned int SCL_D) {{
    __local {t} SCL_AT[TILE][TILE];
    __local {t} SCL_BT[TILE][TILE];
    const int SCL_LX = get_local_id(0);
    const int SCL_LY = get_local_id(1);
    const long SCL_COL = get_global_id(0);
    const long SCL_ROW = get_global_id(1);
    const long SCL_COL0 = (long)get_group_id(0) * TILE;
    {u} SCL_ACC = {identity};
    for (int SCL_T = 0; SCL_T < SCL_D; SCL_T += TILE) {{
        int SCL_AX = SCL_T + SCL_LX;
        {t} SCL_AV = 0;
        if (SCL_ROW < SCL_N && SCL_AX < SCL_D) {{
            SCL_AV = SCL_A[SCL_ROW * SCL_D + SCL_AX];
        }}
        SCL_AT[SCL_LY][SCL_LX] = SCL_AV;
        long SCL_BROW = SCL_COL0 + SCL_LX;
        int SCL_BX = SCL_T + SCL_LY;
        {t} SCL_BV = 0;
        if (SCL_BROW < SCL_M && SCL_BX < SCL_D) {{
            SCL_BV = SCL_B[SCL_BROW * SCL_D + SCL_BX];
        }}
        SCL_BT[SCL_LY][SCL_LX] = SCL_BV;
        barrier(CLK_LOCAL_MEM_FENCE);
        if (SCL_ROW < SCL_N && SCL_COL < SCL_M) {{
            int SCL_KMAX = SCL_D - SCL_T;
            if (SCL_KMAX > TILE) {{ SCL_KMAX = TILE; }}
            for (int SCL_K = 0; SCL_K < SCL_KMAX; ++SCL_K) {{
                SCL_ACC = SCL_RED_F(SCL_ACC,
                                    SCL_ZIP_F(SCL_AT[SCL_LY][SCL_K],
                                              SCL_BT[SCL_K][SCL_LX]));
            }}
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (SCL_ROW < SCL_N && SCL_COL < SCL_M) {{
        SCL_C[SCL_ROW * SCL_M + SCL_COL] = SCL_ACC;
    }}
}}
"""

_RAW_TEMPLATE = """\
{user_source}

__kernel void skelcl_allpairs(__global const {t}* SCL_A,
                              __global const {t}* SCL_B,
                              __global {u}* SCL_C,
                              const unsigned int SCL_N,
                              const unsigned int SCL_M,
                              const unsigned int SCL_D) {{
    size_t SCL_COL = get_global_id(0);
    size_t SCL_ROW = get_global_id(1);
    if (SCL_ROW < SCL_N && SCL_COL < SCL_M) {{
        SCL_C[SCL_ROW * SCL_M + SCL_COL] =
            {func}(SCL_A + SCL_ROW * SCL_D, SCL_B + SCL_COL * SCL_D, (int)SCL_D);
    }}
}}
"""


class AllPairs:
    """AllPairs skeleton.

    ``tiled=True`` (zip/reduce form only) enables the local-memory
    tiling optimization the SkelCL authors describe in their follow-up
    work: both row tiles are staged in local memory and the reduction
    runs chunkwise, cutting global loads by the tile factor.  The raw
    (opaque function) form cannot be tiled — the library needs to *see*
    the zip/reduce structure to restructure the loop, which is exactly
    the argument for structured customization.
    """

    def __init__(self, reduce: Optional[Reduce] = None, zip: Optional[Zip] = None,
                 source: Optional[str] = None, tiled: bool = False, tile: int = 16):
        self.last_events = []
        self._programs = {}
        self._call_label: Optional[str] = None
        self.tiled = tiled
        self.tile = tile
        if source is not None:
            if reduce is not None or zip is not None:
                raise SkelCLError("AllPairs takes either (reduce, zip) or a raw source, not both")
            if tiled:
                raise SkelCLError(
                    "the tiled AllPairs optimization requires the zip/reduce form "
                    "(an opaque row function cannot be restructured)"
                )
            from ..jit import JitFunction

            if isinstance(source, JitFunction):
                # AllPairs never sees a container element type directly
                # (the row function takes pointers), so a jit row
                # function must be fully annotated — lower_source raises
                # with the unannotated parameter otherwise.
                source = source.lower_source()
            self.user = parse_user_function(source)
            if self.user.arity != 3:
                raise SkelCLError(
                    "a raw AllPairs function must be f(const T* a, const T* b, int d)"
                )
            self.element_type = pointer_param(self.user, 0).pointee
            self.out_type = scalar_return(self.user)
            self._mode = "raw"
        else:
            if reduce is None or zip is None:
                raise SkelCLError("AllPairs needs a Reduce and a Zip (or a raw source)")
            if zip.user is None or reduce.user is None:
                raise SkelCLError(
                    "AllPairs needs specialized operators: annotate the "
                    "@skelcl.jit zip/reduce functions so their element "
                    "types are known at construction"
                )
            if zip.left_type != zip.right_type:
                raise SkelCLError("AllPairs zip operator must combine equal element types")
            if reduce.element_type != zip.out_type:
                raise SkelCLError(
                    f"zip produces {zip.out_type} but reduce combines {reduce.element_type}"
                )
            self.reduce = reduce
            self.zip = zip
            self.element_type = zip.left_type
            self.out_type = reduce.element_type
            self._mode = "fused"

    # -- code generation -------------------------------------------------------

    def kernel_source(self) -> str:
        if self._mode == "raw":
            return _RAW_TEMPLATE.format(
                user_source=self.user.source,
                t=self.element_type.name,
                u=self.out_type.name,
                func=self.user.name,
            )
        zip_source = rename_function(self.zip.user.source, self.zip.user.name, "SCL_ZIP_F")
        reduce_source = rename_function(self.reduce.user.source, self.reduce.user.name, "SCL_RED_F")
        template = _TILED_TEMPLATE if self.tiled else _FUSED_TEMPLATE
        return template.format(
            zip_source=zip_source,
            reduce_source=reduce_source,
            t=self.element_type.name,
            u=self.out_type.name,
            identity=self.reduce.identity,
            tile=self.tile,
        )

    @property
    def last_kernel_time_ns(self) -> int:
        """Simulated kernel time of the most recent call: the
        critical-path window (latest completion minus earliest start)
        over the call's kernel events, as scheduled on the command
        graph."""
        kernels = [e for e in self.last_events if e.command_type == "ndrange_kernel"]
        if not kernels:
            return 0
        for event in kernels:
            event.wait()
        return max(e.end_ns for e in kernels) - min(e.start_ns for e in kernels)

    # -- execution ----------------------------------------------------------------

    def __call__(self, a: Matrix, b: Matrix, *_deprecated,
                 out: Optional[Matrix] = None,
                 label: Optional[str] = None) -> Matrix:
        reject_positional_out(_deprecated, "AllPairs")
        if not isinstance(a, Matrix) or not isinstance(b, Matrix):
            raise SkelCLError("AllPairs operates on two matrices")
        if a.cols != b.cols:
            raise SkelCLError(
                f"AllPairs inputs must share the entity dimension d: {a.shape} vs {b.shape}"
            )
        element_dtype = dtype_for_ctype(self.element_type)
        if a.dtype != element_dtype or b.dtype != element_dtype:
            raise SkelCLError("AllPairs input dtypes do not match the customizing functions")
        if self._mode == "raw":
            func_name = self.user.name
        else:
            func_name = f"{self.reduce.user.name}∘{self.zip.user.name}"
        label = label or default_call_label("AllPairs", func_name)
        planner = getattr(get_runtime(), "planner", None)
        if planner is not None and out is None:
            # The B-side Copy distribution makes AllPairs unfusable — it
            # defers as an eager-at-force node (docs/planner.md).
            deferred = Matrix((a.rows, b.rows), dtype=dtype_for_ctype(self.out_type))
            run = lambda: self._execute(a, b, out=deferred, label=label)
            return planner.defer_opaque("allpairs", self, [a, b], deferred,
                                        run, label)
        return self._execute(a, b, out=out, label=label)

    def _execute(self, a: Matrix, b: Matrix, *, out: Optional[Matrix] = None,
                 label: Optional[str] = None) -> Matrix:
        self.last_events = []
        self._call_label = label
        runtime = get_runtime()
        n, d = a.shape
        m = b.rows

        if b is a:
            # Aliased inputs (e.g. allpairs(P, P) in n-body): A needs a
            # Block distribution while B needs Copy, and redistributing
            # one side of the shared container would tear down the other
            # side's chunks mid-flight.  Materialize an independent copy
            # for the B side instead.
            b = Matrix(data=np.array(a.to_numpy(), copy=True))

        # A's rows split over the devices (partition-sized when a policy
        # is active); B is replicated, and the output rows follow A.
        a_dist = partitioned(Block())
        a_chunks = a.ensure_on_devices(a_dist)
        b_chunks = b.ensure_on_devices(Copy())
        out_dtype = dtype_for_ctype(self.out_type)
        if out is None:
            out = Matrix((n, m), dtype=out_dtype)
        elif out.shape != (n, m):
            raise SkelCLError(f"output matrix has shape {out.shape}, expected {(n, m)}")
        out_chunks = out.prepare_as_output(a_dist)

        source = self.kernel_source()
        from .. import ocl

        program = self._programs.get(source)
        if program is None:
            program = ocl.Program(source, "skelcl_allpairs").build()
            self._programs[source] = program

        b_by_device = {chunk.device_index: buffer for chunk, buffer in b_chunks}
        b_events_by_device = {
            chunk.device_index: b.chunk_events(position)
            for position, (chunk, _buffer) in enumerate(b_chunks)
        }
        b_position_by_device = {
            chunk.device_index: position
            for position, (chunk, _buffer) in enumerate(b_chunks)
        }
        local0 = local1 = self.tile if self.tiled else 16
        for position, ((a_chunk, a_buffer), (c_chunk, c_buffer)) in enumerate(
            zip(a_chunks, out_chunks)
        ):
            rows = a_chunk.owned_size
            if rows == 0:
                continue
            kernel = program.create_kernel("skelcl_allpairs")
            kernel.set_args(a_buffer, b_by_device[a_chunk.device_index], c_buffer, rows, m, d)
            global_size = (round_up(m, local0), round_up(rows, local1))
            queue = runtime.queue(a_chunk.device_index)
            event = queue.enqueue_nd_range_kernel(
                kernel, global_size, (local0, local1),
                event_wait_list=a.chunk_events(position)
                + b_events_by_device.get(a_chunk.device_index, [])
                + out.chunk_write_events(position),
            )
            event.info["device_index"] = a_chunk.device_index
            event.label = self._call_label
            a.record_chunk_reader(position, event)
            b_position = b_position_by_device.get(a_chunk.device_index)
            if b_position is not None:
                b.record_chunk_reader(b_position, event)
            out.record_chunk_event(position, event)
            self.last_events.append(event)
        out.mark_written_on_devices()
        return out
