"""Data distributions over multiple GPUs (§3.2 of the paper).

Four distributions describe how a container's elements are placed on the
devices of the system (Fig. 1 / Fig. 2):

* :class:`Single` — all data on one GPU,
* :class:`Copy` — the entire data on every GPU,
* :class:`Block` — contiguous disjoint chunks, one per GPU,
* :class:`Overlap` — block plus a halo of border elements (vector) or
  rows (matrix) replicated from the neighbouring chunks.

A distribution turns a container length (elements for vectors, rows for
matrices) into a list of :class:`Chunk`: the *owned* range a device is
responsible for plus the *stored* range (owned + halo) it keeps in its
buffer.

Chunk *sizing* is delegated to :class:`~repro.skelcl.partition.Partition`
— an immutable per-device weight vector.  ``Block`` and ``Overlap``
accept an optional partition (``None`` means the historic even split),
so heterogeneous pools can give a 4x-faster GPU a 4x-larger chunk while
`Single`/`Copy` are unaffected.  ``with_partition`` re-targets a
distribution at a new split, preserving its other parameters (e.g. the
overlap width).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .partition import Partition


@dataclass(frozen=True)
class Chunk:
    """One device's part of a distributed container (in element/row units)."""

    device_index: int
    owned_start: int
    owned_end: int
    stored_start: int
    stored_end: int

    @property
    def owned_size(self) -> int:
        return self.owned_end - self.owned_start

    @property
    def stored_size(self) -> int:
        return self.stored_end - self.stored_start

    @property
    def halo_before(self) -> int:
        return self.owned_start - self.stored_start

    @property
    def halo_after(self) -> int:
        return self.stored_end - self.owned_end


class Distribution:
    """Base class; instances are immutable and compared by value."""

    kind = "abstract"
    #: The partition sizing this distribution's chunks, when it splits
    #: data at all (`Block`/`Overlap`); None means the even split.
    partition: Optional[Partition] = None

    def chunks(self, size: int, num_devices: int) -> List[Chunk]:
        raise NotImplementedError

    def with_partition(self, partition: Optional[Partition]) -> "Distribution":
        """This distribution re-targeted at ``partition``.  The base
        returns ``self``: `Single` and `Copy` do not split data, so a
        partition does not apply to them."""
        return self

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and vars(self) == vars(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(vars(self).items()))))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Single(Distribution):
    """All data on one device (the first, unless specified otherwise)."""

    kind = "single"

    def __init__(self, device_index: int = 0):
        self.device_index = device_index

    def chunks(self, size: int, num_devices: int) -> List[Chunk]:
        if not 0 <= self.device_index < num_devices:
            raise ValueError(
                f"single distribution on device {self.device_index}, "
                f"but only {num_devices} device(s) available"
            )
        return [Chunk(self.device_index, 0, size, 0, size)]

    def __repr__(self) -> str:
        return f"Single(device_index={self.device_index})"


class Copy(Distribution):
    """The entire data replicated on every device."""

    kind = "copy"

    def chunks(self, size: int, num_devices: int) -> List[Chunk]:
        return [Chunk(index, 0, size, 0, size) for index in range(num_devices)]


def _resolve_ranges(partition: Optional[Partition], size: int,
                    num_devices: int) -> List[tuple]:
    part = partition if partition is not None else Partition.even(num_devices)
    if part.num_devices != num_devices:
        raise ValueError(
            f"partition has {part.num_devices} weights but the runtime "
            f"has {num_devices} device(s)"
        )
    return part.ranges(size)


class Block(Distribution):
    """Contiguous disjoint chunks, one per device.

    Without a partition the chunks are as equal as possible (the
    paper's homogeneous split); with one, each device's chunk is sized
    by its weight — including zero-length chunks for zero weights.
    """

    kind = "block"

    def __init__(self, partition: Optional[Partition] = None):
        self.partition = partition

    def chunks(self, size: int, num_devices: int) -> List[Chunk]:
        return [
            Chunk(index, start, end, start, end)
            for index, (start, end) in enumerate(
                _resolve_ranges(self.partition, size, num_devices)
            )
        ]

    def with_partition(self, partition: Optional[Partition]) -> "Block":
        return Block(partition)

    def __repr__(self) -> str:
        if self.partition is None:
            return "Block()"
        return f"Block(partition={self.partition})"


class Overlap(Distribution):
    """Block distribution plus ``overlap`` halo elements/rows per border.

    Each device stores its block and, additionally, ``overlap``
    elements (vector) or rows (matrix) of the neighbouring blocks, so a
    MapOverlap skeleton can read across chunk borders without inter-GPU
    communication (Fig. 1d / Fig. 2d).  Like `Block`, an optional
    partition sizes the owned ranges; a device whose owned range is
    empty stores nothing at all — no halo — so fully-skewed partitions
    enqueue no work for the starved device.
    """

    kind = "overlap"

    def __init__(self, overlap: int = 1, partition: Optional[Partition] = None):
        if overlap < 0:
            raise ValueError(f"overlap must be non-negative, got {overlap}")
        self.overlap = overlap
        self.partition = partition

    def chunks(self, size: int, num_devices: int) -> List[Chunk]:
        result: List[Chunk] = []
        for index, (start, end) in enumerate(
            _resolve_ranges(self.partition, size, num_devices)
        ):
            if start == end:
                # An empty owned range keeps no halo either: the device
                # holds no data and no commands are enqueued for it.
                result.append(Chunk(index, start, end, start, end))
                continue
            stored_start = max(0, start - self.overlap)
            stored_end = min(size, end + self.overlap)
            result.append(Chunk(index, start, end, stored_start, stored_end))
        return result

    def with_partition(self, partition: Optional[Partition]) -> "Overlap":
        return Overlap(self.overlap, partition)

    def __repr__(self) -> str:
        if self.partition is None:
            return f"Overlap(overlap={self.overlap})"
        return f"Overlap(overlap={self.overlap}, partition={self.partition})"


def block_ranges(size: int, num_devices: int) -> List[tuple]:
    """Split ``size`` into ``num_devices`` contiguous near-equal ranges.

    The historic even split, now a thin wrapper over
    :meth:`Partition.ranges`: the first ``size % num_devices`` chunks
    get one extra element; empty ranges are produced when there are
    more devices than elements.
    """
    return Partition.even(num_devices).ranges(size)


# Convenience singletons mirroring the paper's notation.
single = Single()
copy = Copy()
block = Block()


def overlap(width: int = 1) -> Overlap:
    return Overlap(width)
