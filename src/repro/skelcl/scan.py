"""The Scan skeleton (inclusive prefix computation, §3.3)::

    prefix_sum = Scan("float func(float x, float y) { return x + y; }")
    result = prefix_sum(input_vector)

Implementation: the classical three-phase GPU scan, run per device —

1. each work-group performs a Hillis–Steele inclusive scan of its block
   in local memory and emits its block total,
2. the block totals are scanned (recursively, same kernel),
3. every block (but the first) folds the preceding blocks' total into
   its elements.

Across devices, each device scans its block-distributed chunk; the
per-device totals are scanned in a single tiny launch on device 0 and
folded into the trailing devices' chunks — the inter-device pattern the
paper's distribution mechanism makes implicit.
"""

from __future__ import annotations

import numpy as np

from .distribution import Block, Overlap
from .funcparse import scalar_param, scalar_return
from typing import Optional

from .runtime import SkelCLError, get_runtime
from .skeleton import (Skeleton, default_call_label, partitioned,
                       reject_positional_out)
from .vector import Vector

# Hillis-Steele uses one element per work-item; 256 matches the SkelCL
# default work-group size.
_SCAN_WG = 256

_KERNEL_TEMPLATE = """\
{user_source}

__kernel void skelcl_scan_block(__global const {t}* SCL_IN,
                                __global {t}* SCL_OUT,
                                __global {t}* SCL_SUMS,
                                const unsigned int SCL_N,
                                const unsigned int SCL_OFFSET) {{
    __local {t} SCL_BUF[{wg}];
    size_t SCL_GID = get_global_id(0);
    size_t SCL_LID = get_local_id(0);
    {t} SCL_X = {identity};
    if (SCL_GID < SCL_N) {{
        SCL_X = SCL_IN[SCL_GID + SCL_OFFSET];
    }}
    SCL_BUF[SCL_LID] = SCL_X;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (unsigned int SCL_D = 1; SCL_D < {wg}; SCL_D = SCL_D * 2) {{
        {t} SCL_T = SCL_BUF[SCL_LID];
        if (SCL_LID >= SCL_D) {{
            SCL_T = {func}(SCL_BUF[SCL_LID - SCL_D], SCL_T);
        }}
        barrier(CLK_LOCAL_MEM_FENCE);
        SCL_BUF[SCL_LID] = SCL_T;
        barrier(CLK_LOCAL_MEM_FENCE);
    }}
    if (SCL_GID < SCL_N) {{
        SCL_OUT[SCL_GID] = SCL_BUF[SCL_LID];
    }}
    if (SCL_LID == {wg} - 1) {{
        SCL_SUMS[get_group_id(0)] = SCL_BUF[SCL_LID];
    }}
}}

__kernel void skelcl_scan_add_blocks(__global {t}* SCL_OUT,
                                     __global const {t}* SCL_SCANNED_SUMS,
                                     const unsigned int SCL_N) {{
    size_t SCL_GID = get_global_id(0);
    size_t SCL_G = get_group_id(0);
    if (SCL_G > 0 && SCL_GID < SCL_N) {{
        SCL_OUT[SCL_GID] = {func}(SCL_SCANNED_SUMS[SCL_G - 1], SCL_OUT[SCL_GID]);
    }}
}}

__kernel void skelcl_scan_add_offset(__global {t}* SCL_OUT,
                                     const {t} SCL_OFF,
                                     const unsigned int SCL_N) {{
    size_t SCL_GID = get_global_id(0);
    if (SCL_GID < SCL_N) {{
        SCL_OUT[SCL_GID] = {func}(SCL_OFF, SCL_OUT[SCL_GID]);
    }}
}}
"""


class Scan(Skeleton):
    def __init__(self, source, identity: str = "0"):
        self.identity = identity
        super().__init__(source)

    def _bind_user(self) -> None:
        if self.user.arity != 2:
            raise SkelCLError("a Scan customizing function needs exactly two parameters")
        self.element_type = scalar_param(self.user, 0)
        if scalar_param(self.user, 1) != self.element_type or scalar_return(self.user) != self.element_type:
            raise SkelCLError("a Scan operator must have type T (T, T)")

    def kernel_source(self) -> str:
        return _KERNEL_TEMPLATE.format(
            user_source=self.user.source,
            t=self.element_type.name,
            func=self.user.name,
            identity=self.identity,
            wg=_SCAN_WG,
        )

    def __call__(self, input_vector: Vector, *_deprecated,
                 out: Optional[Vector] = None,
                 label: Optional[str] = None) -> Vector:
        reject_positional_out(_deprecated, "Scan")
        if not isinstance(input_vector, Vector):
            raise SkelCLError("Scan operates on vectors")
        if self.jit is not None:
            self._specialize(self._element_hints([input_vector] * 2, ()))
        dtype = self.result_dtype(self.element_type)
        if input_vector.dtype != dtype:
            raise SkelCLError(
                f"Scan input dtype {input_vector.dtype} does not match {self.element_type}"
            )
        planner = getattr(get_runtime(), "planner", None)
        if planner is not None and out is None:
            label = label or default_call_label("Scan", self.user.name)
            deferred = Vector(input_vector.size, dtype=dtype)
            run = lambda: self._execute(input_vector, out=deferred, label=label)
            return planner.defer_opaque("scan", self, [input_vector], deferred,
                                        run, label)
        return self._execute(input_vector, out=out, label=label)

    def _execute(self, input_vector: Vector, *, out: Optional[Vector] = None,
                 label: Optional[str] = None) -> Vector:
        if self.jit is not None:
            self._specialize(self._element_hints([input_vector] * 2, ()))
        self._begin_call(label)
        runtime = get_runtime()
        dtype = self.result_dtype(self.element_type)
        # Scan requires ordered, disjoint chunks; an uneven input split
        # is preserved (only the halo is dropped from an Overlap).
        current = input_vector.distribution
        carried = current.partition if isinstance(current, (Block, Overlap)) else None
        distribution = partitioned(Block(carried))
        chunks = input_vector.ensure_on_devices(distribution)
        if out is None:
            out = Vector(input_vector.size, dtype=dtype)
        out_chunks = out.prepare_as_output(distribution)
        program = self._program(self.kernel_source(), f"skelcl_scan_{self.user.name}")

        # Phase A: scan each device's chunk independently — the per-chunk
        # dependency chains run concurrently across devices.
        for position, ((in_chunk, in_buffer), (out_chunk, out_buffer)) in enumerate(
            zip(chunks, out_chunks)
        ):
            n = in_chunk.owned_size
            if n == 0:
                continue
            final = self._scan_on_device(
                program, in_chunk.device_index, in_buffer, out_buffer, n,
                in_chunk.halo_before,
                wait_for=input_vector.chunk_events(position) + out.chunk_write_events(position),
            )
            input_vector.record_chunk_reader(position, final)
            out.record_chunk_event(position, final)

        if len([c for c, _b in chunks if c.owned_size > 0]) > 1:
            self._apply_device_offsets(program, out, out_chunks, dtype)
        out.mark_written_on_devices()
        return out

    # -- single-device multi-block scan (recursive) -------------------------

    def _scan_on_device(self, program, device_index: int, in_buffer, out_buffer,
                        n: int, offset: int, wait_for=None) -> "ocl.Event":
        """Scan one buffer on one device; returns the event producing the
        final contents of ``out_buffer``."""
        runtime = get_runtime()
        dtype = self.result_dtype(self.element_type)
        groups = (n + _SCAN_WG - 1) // _SCAN_WG
        sums_buffer = runtime.context.create_buffer(
            max(groups, 1) * dtype.itemsize, runtime.devices[device_index], name="scan_sums"
        )
        kernel = program.create_kernel("skelcl_scan_block")
        kernel.set_args(in_buffer, out_buffer, sums_buffer, n, offset)
        block_scan = self._enqueue(device_index, kernel, (groups * _SCAN_WG,), (_SCAN_WG,),
                                   wait_for=wait_for)
        final = block_scan
        if groups > 1:
            scanned_sums = runtime.context.create_buffer(
                groups * dtype.itemsize, runtime.devices[device_index], name="scan_sums_scanned"
            )
            sums_scan = self._scan_on_device(program, device_index, sums_buffer, scanned_sums,
                                             groups, 0, wait_for=[block_scan])
            add_kernel = program.create_kernel("skelcl_scan_add_blocks")
            add_kernel.set_args(out_buffer, scanned_sums, n)
            final = self._enqueue(device_index, add_kernel, (groups * _SCAN_WG,), (_SCAN_WG,),
                                  wait_for=[block_scan, sums_scan])
            scanned_sums.release()
        sums_buffer.release()
        return final

    # -- cross-device offsets --------------------------------------------------

    def _apply_device_offsets(self, program, out, out_chunks, dtype) -> None:
        runtime = get_runtime()
        # Gather per-device totals (the last element of each scanned chunk).
        totals = []
        active = []
        total_reads = []
        for position, (chunk, buffer) in enumerate(out_chunks):
            if chunk.owned_size == 0:
                continue
            queue = runtime.queue(chunk.device_index)
            data, read_event = queue.enqueue_read_buffer(
                buffer, dtype, 1, (chunk.owned_size - 1) * dtype.itemsize,
                event_wait_list=out.chunk_events(position),
            )
            out.record_chunk_reader(position, read_event)
            totals.append(data[0])
            active.append((position, chunk, buffer))
            total_reads.append(read_event)
        if len(active) <= 1:
            return
        # Scan the totals with the user operator in one tiny launch on
        # device 0; the upload waits on every per-device total download.
        device0 = runtime.devices[0]
        queue0 = runtime.queue(0)
        totals_array = np.asarray(totals, dtype=dtype)
        tot_in = runtime.context.create_buffer(totals_array.nbytes, device0, name="scan_dev_totals")
        tot_out = runtime.context.create_buffer(totals_array.nbytes, device0, name="scan_dev_offsets")
        sums_scratch = runtime.context.create_buffer(dtype.itemsize, device0, name="scan_dev_sums")
        write_event = queue0.enqueue_write_buffer(tot_in, totals_array,
                                                  event_wait_list=total_reads)
        kernel = program.create_kernel("skelcl_scan_block")
        kernel.set_args(tot_in, tot_out, sums_scratch, len(totals), 0)
        launch = self._enqueue(0, kernel, (_SCAN_WG,), (_SCAN_WG,), wait_for=[write_event])
        scanned, scanned_read = queue0.enqueue_read_buffer(tot_out, dtype, len(totals),
                                                           event_wait_list=[launch])
        for buffer in (tot_in, tot_out, sums_scratch):
            buffer.release()
        # Fold the preceding devices' total into each later chunk; the
        # folds on distinct devices proceed concurrently once the scanned
        # offsets are on the host.
        for index, (position, chunk, buffer) in enumerate(active[1:], start=1):
            offset_value = scanned[index - 1]
            add_kernel = program.create_kernel("skelcl_scan_add_offset")
            add_kernel.set_args(buffer, offset_value, chunk.owned_size)
            groups = (chunk.owned_size + _SCAN_WG - 1) // _SCAN_WG
            self._enqueue(chunk.device_index, add_kernel, (groups * _SCAN_WG,), (_SCAN_WG,),
                          wait_for=[scanned_read] + out.chunk_write_events(position),
                          output=out, output_position=position)
