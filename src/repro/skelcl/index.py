"""Index containers: virtual vectors of their own indices.

Real SkelCL provides ``IndexVector``/``IndexMatrix``: containers whose
element *is* its index.  They occupy no memory and transfer nothing —
a Map over one computes its elements from ``get_global_id`` directly.
This is how the SkelCL Mandelbrot passes "a vector with one entry per
pixel" without uploading anything.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .distribution import Block, Chunk, Distribution
from .runtime import get_runtime


class IndexVector:
    """A virtual vector ``[0, 1, ..., size-1]`` (no storage, no transfers)."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError(f"IndexVector size must be positive, got {size}")
        self._size = int(size)
        self._distribution: Distribution = Block()

    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return self._size

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.int32)

    @property
    def distribution(self) -> Distribution:
        return self._distribution

    def set_distribution(self, distribution: Distribution) -> None:
        self._distribution = distribution

    def chunks(self) -> List[Chunk]:
        """The index ranges each device computes (no buffers involved)."""
        return self._distribution.chunks(self._size, get_runtime().num_devices)

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for IndexVector({self._size})")
        return index

    def __iter__(self):
        return iter(range(self._size))

    def __repr__(self) -> str:
        return f"<IndexVector size={self._size}>"


class IndexMatrix:
    """A virtual matrix whose element is its flat row-major index."""

    def __init__(self, shape: Tuple[int, int]):
        rows, cols = int(shape[0]), int(shape[1])
        if rows <= 0 or cols <= 0:
            raise ValueError(f"IndexMatrix shape must be positive, got {shape}")
        self._shape = (rows, cols)
        self._distribution: Distribution = Block()

    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def rows(self) -> int:
        return self._shape[0]

    @property
    def cols(self) -> int:
        return self._shape[1]

    @property
    def size(self) -> int:
        return self._shape[0] * self._shape[1]

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.int32)

    @property
    def distribution(self) -> Distribution:
        return self._distribution

    def chunks(self) -> List[Chunk]:
        """Row-granular chunks, as for a real Matrix."""
        return self._distribution.chunks(self._shape[0], get_runtime().num_devices)

    def __getitem__(self, key) -> int:
        row, col = key
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"index {key} out of range for IndexMatrix{self._shape}")
        return row * self.cols + col

    def __repr__(self) -> str:
        return f"<IndexMatrix shape={self._shape}>"
