"""First-class partitions: weighted device splits and adaptive sizing.

SkelCL's original evaluation ran on a homogeneous Tesla S1070, so every
distribution split containers into near-equal chunks.  Real multi-device
systems are skewed — a CPU and a GPU in one pool differ by integer
factors — and compound computations want throughput-proportional splits
(see "Execution of Compound Multi-Kernel OpenCL Computations in
Multi-CPU/Multi-GPU Environments" and EngineCL in PAPERS.md).

This module is deliberately dependency-free within the package so the
distribution layer can build on it without cycles:

* :class:`Partition` — an immutable per-device weight vector that turns
  a container length into contiguous integer ranges (largest-remainder
  apportionment; zero-length ranges are legal).  ``Partition.even(n)``
  reproduces the historic ``block_ranges`` split bit-for-bit.
* :func:`modeled_throughput` — peak compute rate of a
  :class:`~repro.ocl.spec.DeviceSpec` in ops/ns, the prior used to seed
  proportional splits.
* :class:`AdaptivePartitioner` — the feedback loop: reads per-device
  ``skelcl_kernel_ns_total`` counters from the session's SkelScope
  metrics registry after each flush and re-partitions when the measured
  imbalance exceeds a threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Re-partition when max/mean measured kernel time across participating
#: devices exceeds ``1 + REBALANCE_THRESHOLD``.
REBALANCE_THRESHOLD = 0.10

#: Weights are quantized to this resolution before comparison so the
#: feedback loop reaches a fixed point instead of oscillating on noise.
WEIGHT_QUANTUM = 1e-4


@dataclass(frozen=True)
class Partition:
    """An immutable per-device weight vector.

    ``weights[i]`` is device *i*'s share of any container split with
    this partition; weights need not be normalized.  Zero weights are
    legal and yield zero-length ranges (the device holds no data and —
    because the runtime skips no-op commands — enqueues nothing).
    """

    weights: Tuple[float, ...]

    def __post_init__(self):
        if not self.weights:
            raise ValueError("a partition needs at least one device weight")
        if any(w < 0 for w in self.weights):
            raise ValueError(f"partition weights must be non-negative: {self.weights}")
        if not any(w > 0 for w in self.weights):
            raise ValueError("at least one partition weight must be positive")

    # -- constructors ----------------------------------------------------

    @staticmethod
    def even(num_devices: int) -> "Partition":
        """The historic equal split (`block_ranges` semantics)."""
        if num_devices <= 0:
            raise ValueError("need at least one device")
        return Partition((1.0,) * num_devices)

    @staticmethod
    def of(*weights: float) -> "Partition":
        return Partition(tuple(float(w) for w in weights))

    @staticmethod
    def proportional(values: Sequence[float]) -> "Partition":
        """A partition proportional to ``values`` (e.g. device throughputs)."""
        return Partition(tuple(float(v) for v in values))

    @staticmethod
    def from_specs(specs: Sequence) -> "Partition":
        """Seed partition proportional to each spec's modeled peak
        throughput (see :func:`modeled_throughput`)."""
        return Partition.proportional([modeled_throughput(s) for s in specs])

    # -- derived views ---------------------------------------------------

    @property
    def num_devices(self) -> int:
        return len(self.weights)

    def normalized(self) -> Tuple[float, ...]:
        total = sum(self.weights)
        return tuple(w / total for w in self.weights)

    def share(self, device_index: int) -> float:
        return self.normalized()[device_index]

    # -- apportionment ---------------------------------------------------

    def counts(self, size: int) -> List[int]:
        """Apportion ``size`` units over the devices by largest
        remainder: every device gets ``floor(share * size)``, and the
        leftover units go to the largest fractional remainders (ties
        broken by device index).  For even weights this reproduces the
        historic split exactly — the first ``size % n`` devices get one
        extra unit."""
        if size < 0:
            raise ValueError(f"cannot partition a negative size ({size})")
        total = sum(self.weights)
        exact = [w / total * size for w in self.weights]
        counts = [int(math.floor(x)) for x in exact]
        remainder = size - sum(counts)
        order = sorted(
            range(len(counts)), key=lambda i: (-(exact[i] - counts[i]), i)
        )
        for index in order[:remainder]:
            counts[index] += 1
        return counts

    def ranges(self, size: int) -> List[Tuple[int, int]]:
        """Contiguous ``[start, end)`` ranges covering ``0..size``, one
        per device, sized by :meth:`counts`.  Zero-length ranges are
        produced for zero weights (or when devices outnumber units)."""
        ranges: List[Tuple[int, int]] = []
        start = 0
        for length in self.counts(size):
            ranges.append((start, start + length))
            start += length
        return ranges

    def quantized(self, quantum: float = WEIGHT_QUANTUM) -> "Partition":
        """Normalized weights rounded to ``quantum`` — the canonical
        form the adaptive loop compares for convergence."""
        digits = max(0, round(-math.log10(quantum)))
        return Partition(tuple(round(w, digits) for w in self.normalized()))

    def __repr__(self) -> str:
        shares = ", ".join(f"{w:.3f}" for w in self.normalized())
        return f"Partition([{shares}])"


def modeled_throughput(spec) -> float:
    """Modeled peak compute rate of a device spec in ops/ns.

    Deliberately simple — processing elements × clock × IPC ×
    efficiency, the leading term of the analytic kernel-time model in
    :mod:`repro.ocl.timing`.  It ignores memory bandwidth and launch
    overhead; the adaptive feedback loop corrects for whatever the
    prior gets wrong.
    """
    return (
        spec.processing_elements * spec.clock_ghz * spec.ipc * spec.efficiency
    )


class AdaptivePartitioner:
    """Closed-loop partition sizing from measured per-device kernel time.

    The partitioner starts from a seed split (proportional to modeled
    peak throughput by default, or even/explicit), then after each
    flush reads the per-device ``skelcl_kernel_ns_total`` counters the
    queues maintain at enqueue time.  If the measured imbalance —
    ``max(t_i) / mean(t_i)`` over devices that held data — exceeds
    ``1 + threshold``, it re-sizes every weight proportional to the
    device's *measured* throughput ``w_i / t_i`` (units per nanosecond;
    the container size cancels, so no knowledge of the workload is
    needed).  Devices that held no data, or produced no signal, fall
    back to modeled throughput rescaled by the fleet's mean
    measured-to-modeled ratio, so a starved device can re-enter the
    pool.

    The new partition only takes effect on the *next* skeleton call:
    containers still distributed with the old split redistribute
    through the existing command-graph machinery (download + re-upload
    with full RAW/WAR ordering), so adaptation is race-free by
    construction.
    """

    def __init__(self, session, initial="throughput",
                 threshold: float = REBALANCE_THRESHOLD,
                 quantum: float = WEIGHT_QUANTUM):
        self.session = session
        self.threshold = threshold
        self.quantum = quantum
        self.modeled = [modeled_throughput(spec) for spec in session.specs]
        if isinstance(initial, Partition):
            seed = initial
        elif initial == "even":
            seed = Partition.even(session.num_devices)
        elif initial in ("throughput", "proportional"):
            seed = Partition.proportional(self.modeled)
        else:
            raise ValueError(
                f"unknown initial partition policy {initial!r} "
                "(expected 'throughput', 'even', or a Partition)"
            )
        if seed.num_devices != session.num_devices:
            raise ValueError(
                f"partition has {seed.num_devices} weights for "
                f"{session.num_devices} device(s)"
            )
        self._partition = seed.quantized(quantum)
        self.repartitions = 0
        self.last_imbalance = 1.0
        self.history: List[Partition] = [self._partition]
        self._last_totals = [0.0] * session.num_devices

    @property
    def partition(self) -> Partition:
        return self._partition

    # -- the feedback loop ----------------------------------------------

    def _kernel_ns_totals(self) -> List[float]:
        metrics = self.session.metrics
        return [
            float(metrics.value("skelcl_kernel_ns_total", device=index))
            for index in range(self.session.num_devices)
        ]

    def observe(self, force: bool = False) -> bool:
        """Ingest the kernel time enqueued since the last observation
        and re-partition if the imbalance warrants it.  Returns True
        when the partition changed.  ``force`` re-sizes even below the
        imbalance threshold (used by ``session.rebalance()``)."""
        totals = self._kernel_ns_totals()
        deltas = [now - before for now, before in zip(totals, self._last_totals)]
        if any(delta < 0 for delta in deltas):
            # The registry was reset since we last looked; re-baseline.
            deltas = totals
        self._last_totals = totals

        weights = self._partition.normalized()
        active = [
            (w, t) for w, t in zip(weights, deltas) if w > 0 and t > 0
        ]
        metrics = self.session.metrics
        if not active:
            return False
        times = [t for _w, t in active]
        mean_ns = sum(times) / len(times)
        imbalance = max(times) / mean_ns if mean_ns else 1.0
        self.last_imbalance = imbalance
        metrics.gauge("skelcl_partition_imbalance").set(round(imbalance, 6))
        for index, share in enumerate(weights):
            metrics.gauge("skelcl_partition_share", device=index).set(round(share, 6))
        if not force and imbalance <= 1.0 + self.threshold:
            return False

        # Measured throughput in units/ns, up to the (irrelevant) common
        # container-size factor; fill gaps with the rescaled model.
        measured = [
            w / t if (w > 0 and t > 0) else None
            for w, t in zip(weights, deltas)
        ]
        ratios = [
            m / modeled
            for m, modeled in zip(measured, self.modeled)
            if m is not None and modeled > 0
        ]
        scale = sum(ratios) / len(ratios) if ratios else 1.0
        filled = [
            m if m is not None else modeled * scale
            for m, modeled in zip(measured, self.modeled)
        ]
        candidate = Partition.proportional(filled).quantized(self.quantum)
        if candidate == self._partition:
            return False
        self._partition = candidate
        self.repartitions += 1
        self.history.append(candidate)
        metrics.counter("skelcl_repartition_total").inc()
        for index, share in enumerate(candidate.normalized()):
            metrics.gauge("skelcl_partition_share", device=index).set(round(share, 6))
        return True
