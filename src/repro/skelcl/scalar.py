"""The ``Scalar<T>`` result wrapper (used by Reduce, cf. Listing 1.1)."""

from __future__ import annotations

import numpy as np


class Scalar:
    """A single value returned by a skeleton (e.g. a reduction result)."""

    def __init__(self, value, dtype=np.float32):
        self._dtype = np.dtype(dtype)
        self._value = self._dtype.type(value)

    def get_value(self):
        """The host value (``C.getValue()`` in the paper's listing)."""
        return self._value.item()

    def assign(self, value, dtype=None) -> "Scalar":
        """Overwrite the held value (fills a preallocated ``out=`` Scalar)."""
        if dtype is not None:
            self._dtype = np.dtype(dtype)
        self._value = self._dtype.type(value)
        return self

    @property
    def value(self):
        return self._value.item()

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def __float__(self) -> float:
        return float(self._value)

    def __int__(self) -> int:
        return int(self._value)

    def __repr__(self) -> str:
        return f"Scalar({self._value!r})"
