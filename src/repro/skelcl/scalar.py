"""The ``Scalar<T>`` result wrapper (used by Reduce, cf. Listing 1.1)."""

from __future__ import annotations

import numpy as np


class Scalar:
    """A single value returned by a skeleton (e.g. a reduction result)."""

    #: A recorded-but-unexecuted Reduce producing this value (set by the
    #: lazy planner in recording mode); any read forces it first.
    _pending = None

    def __init__(self, value, dtype=np.float32):
        self._dtype = np.dtype(dtype)
        self._value = self._dtype.type(value)

    def _force(self) -> None:
        node = self._pending
        if node is not None:
            node.planner.force_node(node)

    def get_value(self):
        """The host value (``C.getValue()`` in the paper's listing)."""
        self._force()
        return self._value.item()

    def assign(self, value, dtype=None) -> "Scalar":
        """Overwrite the held value (fills a preallocated ``out=`` Scalar)."""
        if dtype is not None:
            self._dtype = np.dtype(dtype)
        self._value = self._dtype.type(value)
        return self

    @property
    def value(self):
        self._force()
        return self._value.item()

    def to_numpy(self):
        """The typed value (a NumPy scalar of :attr:`dtype`)."""
        self._force()
        return self._value

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def __float__(self) -> float:
        self._force()
        return float(self._value)

    def __int__(self) -> int:
        self._force()
        return int(self._value)

    def __repr__(self) -> str:
        return f"Scalar({self._value!r})"
