"""The MapOverlap skeleton (§3.4): stencil computations on vectors and
matrices.

The customizing function receives a pointer to the current element and
reads neighbours through the ``get`` accessor with *relative* indices::

    m = MapOverlap('''
        float func(float* m) {
            float sum = 0.0f;
            for (int i = -1; i <= 1; ++i)
                for (int j = -1; j <= 1; ++j)
                    sum += get(m, i, j);
            return sum;
        }''', 1, BoundaryMode.NEUTRAL, 0.0)

Boundary handling follows the paper: outside the container ``get``
yields the *neutral value* (``SCL_NEUTRAL``) or the nearest valid
element (``SCL_NEAREST``).  Accesses beyond the declared overlap ``d``
are rejected by a runtime range check in ``get`` (the checks the paper
proposes eliminating statically — see
:mod:`repro.kernelc.boundcheck`).

**Implementation** (mirrors the real SkelCL, cf. §4.2: "the NVIDIA
implementation and the MapOverlap skeleton of SkelCL" use fast local
memory): each work-group cooperatively stages its block plus a
``d``-wide halo in local memory; boundary handling happens once during
the staged load, so ``get`` is a plain tile read.  On multiple GPUs the
input uses the *overlap* distribution (Fig. 1d/2d), making all stencil
reads device-local.

Code generation note: the hidden tile-stride parameter ``get`` needs is
appended to the customizing function's signature by a source rewrite,
and a ``#define`` splices it into every ``get`` call site — the same
source-to-source approach the SkelCL library uses.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

from .distribution import Block, Copy, Distribution, Overlap, Single
from .funcparse import append_hidden_params, pointer_param, scalar_return
from .matrix import Matrix
from .runtime import SkelCLError, get_runtime
from .skeleton import (Skeleton, default_call_label, partitioned,
                       reject_positional_out, round_up, scalar_literal)
from .types_ import dtype_for_ctype
from .vector import Vector


class BoundaryMode(enum.Enum):
    NEUTRAL = "neutral"
    NEAREST = "nearest"


# Paper-style constant aliases.
SCL_NEUTRAL = BoundaryMode.NEUTRAL
SCL_NEAREST = BoundaryMode.NEAREST

# Work-group geometry baked into generated sources.
_VEC_WG = 256
_MAT_WG = 16

_VECTOR_GET_CHECKED = """\
{t} SCL_GET_V(const {t}* SCL_M, int SCL_DI) {{
    if (SCL_DI < -{d} || SCL_DI > {d}) {{ __scl_trap(1); }}
    return SCL_M[SCL_DI];
}}

#define get(m, di) SCL_GET_V((m), (di))"""

# When the static analysis proves every offset in range, get() inlines
# to a bare tile access (the paper's §3.4 future-work optimization).
_VECTOR_GET_UNCHECKED = "#define get(m, di) ((m)[(di)])"

_VECTOR_TEMPLATE = """\
{get_accessor}

{user_source}

__attribute__((reqd_work_group_size({wg}, 1, 1)))
__kernel void skelcl_mapoverlap_v(__global const {t}* SCL_IN,
                                  __global {u}* SCL_OUT,
                                  const unsigned int SCL_OWNED,
                                  const long SCL_START,
                                  const long SCL_TOTAL,
                                  const int SCL_HALO,
                                  const int SCL_STORED) {{
    __local {t} SCL_TILE[{wg} + 2 * {d}];
    size_t SCL_LID = get_local_id(0);
    long SCL_BASE = (long)get_group_id(0) * {wg};
    {{
        /* own element */
        long SCL_OFF = SCL_BASE + SCL_LID;
        long SCL_G = SCL_START + SCL_OFF;
{load_body}
        SCL_TILE[SCL_LID + {d}] = SCL_V;
    }}
    for (int SCL_I = (int)SCL_LID; SCL_I < 2 * {d}; SCL_I += {wg}) {{
        /* halo elements (2*d of them, loaded by the first work-items) */
        int SCL_T = SCL_I < {d} ? SCL_I : {wg} + SCL_I;
        long SCL_OFF = SCL_BASE + SCL_T - {d};
        long SCL_G = SCL_START + SCL_OFF;
{load_body}
        SCL_TILE[SCL_T] = SCL_V;
    }}
    barrier(CLK_LOCAL_MEM_FENCE);
    size_t SCL_ID = get_global_id(0);
    if (SCL_ID < SCL_OWNED) {{
        SCL_OUT[SCL_ID] = {func}(&SCL_TILE[SCL_LID + {d}]);
    }}
}}
"""

_VECTOR_LOAD_NEUTRAL = """\
        {t} SCL_V = {neutral};
        if (SCL_G >= 0 && SCL_G < SCL_TOTAL && SCL_OFF + SCL_HALO < SCL_STORED) {{
            SCL_V = SCL_IN[SCL_OFF + SCL_HALO];
        }}"""

_VECTOR_LOAD_NEAREST = """\
        long SCL_C = SCL_G;
        if (SCL_C < 0) {{ SCL_C = 0; }}
        if (SCL_C >= SCL_TOTAL) {{ SCL_C = SCL_TOTAL - 1; }}
        long SCL_IDX = SCL_C - SCL_START + SCL_HALO;
        if (SCL_IDX >= SCL_STORED) {{ SCL_IDX = SCL_STORED - 1; }}
        if (SCL_IDX < 0) {{ SCL_IDX = 0; }}
        {t} SCL_V = SCL_IN[SCL_IDX];"""

_MATRIX_GET_CHECKED = """\
{t} SCL_GET_M(const {t}* SCL_M, int SCL_DX, int SCL_DY, int SCL_STRIDE) {{
    if (SCL_DX < -{d} || SCL_DX > {d} || SCL_DY < -{d} || SCL_DY > {d}) {{ __scl_trap(1); }}
    return SCL_M[SCL_DY * SCL_STRIDE + SCL_DX];
}}

#define get(m, dx, dy) SCL_GET_M((m), (dx), (dy), _stride)"""

_MATRIX_GET_UNCHECKED = "#define get(m, dx, dy) ((m)[(dy) * _stride + (dx)])"

_MATRIX_TEMPLATE = """\
{get_accessor}

{user_source}

__attribute__((reqd_work_group_size({wg}, {wg}, 1)))
__kernel void skelcl_mapoverlap_m(__global const {t}* SCL_IN,
                                  __global {u}* SCL_OUT,
                                  const int SCL_W,
                                  const int SCL_H,
                                  const int SCL_ROW0,
                                  const int SCL_ROWS_OWNED,
                                  const int SCL_HALO,
                                  const int SCL_STORED_ROWS) {{
    __local {t} SCL_TILE[{wg} + 2 * {d}][{wg} + 2 * {d}];
    const int SCL_LX = get_local_id(0);
    const int SCL_LY = get_local_id(1);
    const long SCL_CX0 = (long)get_group_id(0) * {wg} - {d};
    const long SCL_RY0 = (long)get_group_id(1) * {wg} - {d};
    const int SCL_SPAN = {wg} + 2 * {d};
    {{
        /* own element */
        long SCL_SX = SCL_CX0 + SCL_LX + {d};
        long SCL_SR = SCL_RY0 + SCL_LY + {d};
        long SCL_GY = SCL_ROW0 + SCL_SR;
{load_body}
        SCL_TILE[SCL_LY + {d}][SCL_LX + {d}] = SCL_V;
    }}
    const int SCL_BORDER = SCL_SPAN * SCL_SPAN - {wg} * {wg};
    for (int SCL_I = SCL_LY * {wg} + SCL_LX; SCL_I < SCL_BORDER;
         SCL_I += {wg} * {wg}) {{
        /* halo cells: top band, bottom band, then the side columns */
        int SCL_K = SCL_I;
        int SCL_TX;
        int SCL_TY;
        if (SCL_K < {d} * SCL_SPAN) {{
            SCL_TY = SCL_K / SCL_SPAN;
            SCL_TX = SCL_K % SCL_SPAN;
        }} else if (SCL_K < 2 * {d} * SCL_SPAN) {{
            SCL_K -= {d} * SCL_SPAN;
            SCL_TY = SCL_SPAN - {d} + SCL_K / SCL_SPAN;
            SCL_TX = SCL_K % SCL_SPAN;
        }} else {{
            SCL_K -= 2 * {d} * SCL_SPAN;
            SCL_TY = {d} + SCL_K / (2 * {d});
            int SCL_COL = SCL_K % (2 * {d});
            SCL_TX = SCL_COL < {d} ? SCL_COL : {wg} + SCL_COL;
        }}
        long SCL_SX = SCL_CX0 + SCL_TX;
        long SCL_SR = SCL_RY0 + SCL_TY;
        long SCL_GY = SCL_ROW0 + SCL_SR;
{load_body}
        SCL_TILE[SCL_TY][SCL_TX] = SCL_V;
    }}
    barrier(CLK_LOCAL_MEM_FENCE);
    long _gx = get_global_id(0);
    long SCL_LROW = get_global_id(1);
    if (_gx < SCL_W && SCL_LROW < SCL_ROWS_OWNED) {{
        int _stride = SCL_SPAN;
        SCL_OUT[SCL_LROW * SCL_W + _gx] =
            {func}(&SCL_TILE[SCL_LY + {d}][SCL_LX + {d}], _stride);
    }}
}}
"""

_MATRIX_LOAD_NEUTRAL = """\
        {t} SCL_V = {neutral};
        if (SCL_SX >= 0 && SCL_SX < SCL_W && SCL_GY >= 0 && SCL_GY < SCL_H
                && SCL_SR + SCL_HALO < SCL_STORED_ROWS) {{
            SCL_V = SCL_IN[(SCL_SR + SCL_HALO) * SCL_W + SCL_SX];
        }}"""

_MATRIX_LOAD_NEAREST = """\
        long SCL_CX = SCL_SX;
        if (SCL_CX < 0) {{ SCL_CX = 0; }}
        if (SCL_CX >= SCL_W) {{ SCL_CX = SCL_W - 1; }}
        long SCL_CY = SCL_GY;
        if (SCL_CY < 0) {{ SCL_CY = 0; }}
        if (SCL_CY >= SCL_H) {{ SCL_CY = SCL_H - 1; }}
        long SCL_RIDX = SCL_CY - SCL_ROW0 + SCL_HALO;
        if (SCL_RIDX >= SCL_STORED_ROWS) {{ SCL_RIDX = SCL_STORED_ROWS - 1; }}
        if (SCL_RIDX < 0) {{ SCL_RIDX = 0; }}
        {t} SCL_V = SCL_IN[SCL_RIDX * SCL_W + SCL_CX];"""


class MapOverlap(Skeleton):
    def __init__(self, source, overlap: int,
                 boundary: BoundaryMode = BoundaryMode.NEUTRAL, neutral=0,
                 static_bounds: bool = True):
        super().__init__(source)
        if self.user is None:
            # A jit customizer left unspecialized: its pointer parameter
            # carries no intent annotation, so the element type (and the
            # bounds proof below) cannot be derived.
            raise SkelCLError(
                "a @skelcl.jit MapOverlap function must annotate its "
                "neighbourhood parameter with an intent, e.g. "
                "m: skelcl.READ[np.float32]"
            )
        if overlap < 0:
            raise SkelCLError(f"overlap range must be non-negative, got {overlap}")
        self.overlap = overlap
        self.boundary = boundary
        self.neutral = neutral
        # Static bounds proof (the paper's §3.4 future work): when every
        # get() offset is provably within ±d, the runtime range checks
        # are compiled out.
        from ..kernelc.boundcheck import analyze_get_bounds

        self.bounds_proof = analyze_get_bounds(self.user.definition, overlap)
        self.checks_elided = static_bounds and self.bounds_proof.proven

    def _bind_user(self) -> None:
        if self.user.arity != 1:
            raise SkelCLError(
                "a MapOverlap customizing function takes exactly one pointer parameter"
            )
        self.pointer_type = pointer_param(self.user, 0)
        self.in_type = self.pointer_type.pointee
        self.out_type = scalar_return(self.user)

    @property
    def effective_overlap(self) -> int:
        """The halo width actually staged and transferred.

        When the bounds proof pins every ``get`` offset inside a reach
        smaller than the declared overlap, the tile halo and the overlap
        distribution shrink to the proven reach — halo bytes beyond it
        are never read, so they are never shipped (footprint-driven
        transfers; the saving is counted in
        ``skelcl_transfer_bytes_saved_total``)."""
        if not self.checks_elided:
            return self.overlap
        reach = 0
        for intervals in self.bounds_proof.accesses:
            for interval in intervals:
                if interval.is_top:
                    return self.overlap
                reach = max(reach, int(max(abs(interval.lo), abs(interval.hi))))
        return min(reach, self.overlap)

    # -- code generation ------------------------------------------------------

    def _neutral_literal(self) -> str:
        return scalar_literal(self.neutral, self.in_type)

    def vector_source(self) -> str:
        load_template = (
            _VECTOR_LOAD_NEUTRAL if self.boundary is BoundaryMode.NEUTRAL else _VECTOR_LOAD_NEAREST
        )
        load_body = load_template.format(t=self.in_type.name, neutral=self._neutral_literal())
        accessor = (
            _VECTOR_GET_UNCHECKED
            if self.checks_elided
            else _VECTOR_GET_CHECKED.format(t=self.in_type.name, d=self.overlap)
        )
        return _VECTOR_TEMPLATE.format(
            t=self.in_type.name,
            u=self.out_type.name,
            get_accessor=accessor,
            load_body=load_body,
            user_source=self.user.source,
            func=self.user.name,
            d=self.effective_overlap,
            wg=_VEC_WG,
        )

    def matrix_source(self) -> str:
        load_template = (
            _MATRIX_LOAD_NEUTRAL if self.boundary is BoundaryMode.NEUTRAL else _MATRIX_LOAD_NEAREST
        )
        load_body = load_template.format(t=self.in_type.name, neutral=self._neutral_literal())
        accessor = (
            _MATRIX_GET_UNCHECKED
            if self.checks_elided
            else _MATRIX_GET_CHECKED.format(t=self.in_type.name, d=self.overlap)
        )
        user = append_hidden_params(self.user, "int _stride")
        return _MATRIX_TEMPLATE.format(
            t=self.in_type.name,
            u=self.out_type.name,
            get_accessor=accessor,
            load_body=load_body,
            user_source=user,
            func=self.user.name,
            d=self.effective_overlap,
            wg=_MAT_WG,
        )

    # -- distribution policy -----------------------------------------------------

    def _resolve_distribution(self, container) -> Distribution:
        current = container.distribution
        halo = self.effective_overlap
        if isinstance(current, (Single, Copy)):
            return current  # whole data present: no halo needed
        if isinstance(current, Overlap) and current.overlap >= halo:
            return partitioned(current)
        # A block-distributed input keeps its (possibly uneven) split;
        # the halo is grown around the same owned ranges.
        carried = current.partition if isinstance(current, (Block, Overlap)) else None
        return partitioned(Overlap(halo, carried))

    def _count_halo_savings(self, chunks, total: int, row_bytes: int) -> None:
        """Credit ``skelcl_transfer_bytes_saved_total`` with the halo
        rows/elements the proven reach let us *not* ship, relative to
        the declared overlap (``row_bytes`` is the size of one halo
        unit: an element for vectors, a row for matrices)."""
        saved_units = 0
        for chunk, _buffer in chunks:
            full_before = min(self.overlap, chunk.owned_start)
            full_after = min(self.overlap, total - chunk.owned_end)
            saved_units += max(0, full_before - chunk.halo_before)
            saved_units += max(0, full_after - chunk.halo_after)
        if saved_units:
            get_runtime().metrics.counter(
                "skelcl_transfer_bytes_saved_total"
            ).inc(saved_units * row_bytes)

    # -- execution -------------------------------------------------------------------

    def __call__(self, input_container: Union[Vector, Matrix], *_deprecated,
                 out: Optional[Union[Vector, Matrix]] = None,
                 label: Optional[str] = None):
        reject_positional_out(_deprecated, "MapOverlap")
        expected = dtype_for_ctype(self.in_type)
        if input_container.dtype != expected:
            raise SkelCLError(
                f"MapOverlap input dtype {input_container.dtype} does not match {self.in_type}"
            )
        planner = getattr(get_runtime(), "planner", None)
        if (planner is not None and out is None
                and type(input_container) in (Vector, Matrix)):
            # Halo exchange makes MapOverlap unfusable — it defers as an
            # eager-at-force node (docs/planner.md, "Fallbacks").
            label = label or default_call_label("MapOverlap", self.user.name)
            out_dtype = dtype_for_ctype(self.out_type)
            if isinstance(input_container, Matrix):
                deferred = Matrix(input_container.shape, dtype=out_dtype)
            else:
                deferred = Vector(input_container.size, dtype=out_dtype)
            run = lambda: self._execute(input_container, out=deferred, label=label)
            return planner.defer_opaque("mapoverlap", self, [input_container],
                                        deferred, run, label)
        return self._execute(input_container, out=out, label=label)

    def _execute(self, input_container: Union[Vector, Matrix], *,
                 out: Optional[Union[Vector, Matrix]] = None,
                 label: Optional[str] = None):
        self._begin_call(label)
        if isinstance(input_container, Matrix):
            return self._call_matrix(input_container, out)
        return self._call_vector(input_container, out)

    def _call_vector(self, vector: Vector, out: Optional[Vector]):
        distribution = self._resolve_distribution(vector)
        chunks = vector.ensure_on_devices(distribution)
        if distribution.kind == "overlap" and self.effective_overlap < self.overlap:
            self._count_halo_savings(chunks, vector.size, vector.dtype.itemsize)
        out_dtype = dtype_for_ctype(self.out_type)
        if out is None:
            out = Vector(vector.size, dtype=out_dtype)
        out_chunks = out.prepare_as_output(
            Block(distribution.partition) if distribution.kind == "overlap" else distribution
        )
        program = self._program(self.vector_source(), f"skelcl_mapoverlap_{self.user.name}")
        total = vector.size
        for position, ((in_chunk, in_buffer), (out_chunk, out_buffer)) in enumerate(
            zip(chunks, out_chunks)
        ):
            n = in_chunk.owned_size
            if n == 0:
                continue
            kernel = program.create_kernel("skelcl_mapoverlap_v")
            kernel.set_args(in_buffer, out_buffer, n, in_chunk.owned_start, total,
                            in_chunk.halo_before, in_chunk.stored_size)
            global_size = round_up(n, _VEC_WG)
            self._enqueue(in_chunk.device_index, kernel, (global_size,), (_VEC_WG,),
                          wait_for=vector.chunk_events(position) + out.chunk_write_events(position),
                          inputs=[(vector, position)],
                          output=out, output_position=position)
        out.mark_written_on_devices()
        return out

    def _call_matrix(self, matrix: Matrix, out: Optional[Matrix]):
        distribution = self._resolve_distribution(matrix)
        chunks = matrix.ensure_on_devices(distribution)
        if distribution.kind == "overlap" and self.effective_overlap < self.overlap:
            self._count_halo_savings(chunks, matrix.rows,
                                     matrix.cols * matrix.dtype.itemsize)
        out_dtype = dtype_for_ctype(self.out_type)
        if out is None:
            out = Matrix(matrix.shape, dtype=out_dtype)
        out_chunks = out.prepare_as_output(
            Block(distribution.partition) if distribution.kind == "overlap" else distribution
        )
        program = self._program(self.matrix_source(), f"skelcl_mapoverlap_{self.user.name}")
        width = matrix.cols
        height = matrix.rows
        for position, ((in_chunk, in_buffer), (out_chunk, out_buffer)) in enumerate(
            zip(chunks, out_chunks)
        ):
            rows = in_chunk.owned_size
            if rows == 0:
                continue
            kernel = program.create_kernel("skelcl_mapoverlap_m")
            kernel.set_args(in_buffer, out_buffer, width, height, in_chunk.owned_start,
                            rows, in_chunk.halo_before, in_chunk.stored_size)
            global_size = (round_up(width, _MAT_WG), round_up(rows, _MAT_WG))
            self._enqueue(in_chunk.device_index, kernel, global_size, (_MAT_WG, _MAT_WG),
                          wait_for=matrix.chunk_events(position) + out.chunk_write_events(position),
                          inputs=[(matrix, position)],
                          output=out, output_position=position)
        out.mark_written_on_devices()
        return out
