"""The central scheduler: weighted-fair DRR (default) or naive FIFO.

Both policies drain per-tenant FIFO queues by handing jobs to
``server.dispatch`` one (possibly batched) launch at a time; they differ
only in *which* tenant goes next:

``drr``
    Deficit round-robin over modeled kernel-ns.  Each round every
    backlogged tenant accrues ``quantum_ns × weight`` of credit; a
    tenant dispatches while its credit is positive and is charged the
    *measured* kernel-ns of each job after it runs (post-hoc charging —
    job costs aren't known up front in a skeleton library, the measured
    duration is).  Overshoot goes negative and is paid back in later
    rounds, so long-run device time converges to the weight ratio
    without needing cost estimates.

``fifo``
    The naive baseline: one global queue in admission order, no
    weights, no batching.  Head-of-line blocking included — that is the
    point of the baseline.

Window quotas apply to both policies: a tenant whose
``max_device_ns_per_window`` is exhausted is skipped (DRR) or stalls
the queue head (FIFO) until its window rolls; when every backlogged
tenant is capped, the serving clock fast-forwards to the earliest
window roll instead of spinning.

Launch batching (DRR only): consecutive *map* jobs at a tenant's queue
head with the same batch key (same skeleton, dtype and extra args) and
at most ``batch_max_elements`` elements each are concatenated into one
launch of up to ``batch_max_jobs`` jobs — amortizing per-launch
overhead for small-job tenants without ever reordering a tenant's own
queue.
"""

from __future__ import annotations

from typing import List, Optional

from .jobs import Job, ServeError
from .tenant import Tenant

POLICIES = ("drr", "fifo")


class Scheduler:
    def __init__(self, server, policy: str = "drr", *,
                 quantum_ns: int = 1_000_000, batching: bool = True,
                 batch_max_elements: int = 65536, batch_max_jobs: int = 8):
        if policy not in POLICIES:
            raise ServeError(
                f"unknown scheduling policy {policy!r} "
                f"(choose from {', '.join(POLICIES)})"
            )
        if quantum_ns < 1:
            raise ServeError("quantum_ns must be positive")
        if batch_max_jobs < 1:
            raise ServeError("batch_max_jobs must be at least 1")
        self.server = server
        self.policy = policy
        self.quantum_ns = quantum_ns
        self.batching = batching and policy == "drr"
        self.batch_max_elements = batch_max_elements
        self.batch_max_jobs = batch_max_jobs
        self.rounds = 0

    # -- draining ----------------------------------------------------------

    def drain(self) -> None:
        """Dispatch until every tenant queue is empty."""
        if self.policy == "fifo":
            self._drain_fifo()
        else:
            self._drain_drr()

    def _tenants(self) -> List[Tenant]:
        return list(self.server.tenants.values())

    def _backlogged(self) -> List[Tenant]:
        return [t for t in self._tenants() if t.queue]

    def _fast_forward(self) -> None:
        """Every backlogged tenant is window-capped: jump the serving
        clock to the earliest window roll instead of busy-waiting."""
        blocked = self._backlogged()
        if not blocked:
            return
        self.server.fast_forward_to(min(t.next_window_ns() for t in blocked))

    def _drain_drr(self) -> None:
        server = self.server
        while self._backlogged():
            self.rounds += 1
            accrued = False
            for tenant in self._tenants():
                if not tenant.queue:
                    tenant.deficit = 0.0  # empty queues bank no credit
                    continue
                if not tenant.window_allows(server.now_ns):
                    continue
                tenant.deficit += self.quantum_ns * tenant.weight
                accrued = True
                while (tenant.queue and tenant.deficit > 0
                       and tenant.window_allows(server.now_ns)):
                    batch = self._take_batch(tenant)
                    cost = server.dispatch(tenant, batch)
                    tenant.deficit -= cost
                if not tenant.queue:
                    tenant.deficit = 0.0
            if not accrued:
                self._fast_forward()

    def _drain_fifo(self) -> None:
        server = self.server
        while True:
            head: Optional[Job] = None
            owner: Optional[Tenant] = None
            for tenant in self._backlogged():
                job = tenant.queue[0]
                if head is None or job.id < head.id:
                    head, owner = job, tenant
            if head is None:
                return
            while not owner.window_allows(server.now_ns):
                server.fast_forward_to(owner.next_window_ns())
            owner.queue.popleft()
            server.dispatch(owner, [head])

    # -- batching ----------------------------------------------------------

    def _batchable(self, job: Job) -> bool:
        return (job.kind == "map" and job.batch_key is not None
                and job.payload[1].size <= self.batch_max_elements)

    def _take_batch(self, tenant: Tenant) -> List[Job]:
        """Pop the queue head plus any directly following compatible
        small map jobs (never reorders the tenant's queue)."""
        job = tenant.queue.popleft()
        if not self.batching or not self._batchable(job):
            return [job]
        batch = [job]
        total = job.payload[1].size
        while tenant.queue and len(batch) < self.batch_max_jobs:
            nxt = tenant.queue[0]
            if not self._batchable(nxt) or nxt.batch_key != job.batch_key:
                break
            if total + nxt.payload[1].size > self.batch_max_elements * self.batch_max_jobs:
                break
            total += nxt.payload[1].size
            batch.append(tenant.queue.popleft())
        return batch
