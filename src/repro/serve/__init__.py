"""repro.serve: a multi-tenant serving runtime on a shared device pool.

The serving layer turns one SkelCL session — one simulated context over
a mixed CPU+GPU pool — into a shared service::

    with serve.Server(devices=["tesla", "cpu-8core"]) as server:
        a = server.client("team-a", weight=2.0)
        b = server.client("team-b")
        job = a.submit(lambda: total(mult(va, vb)))     # graph job
        b.submit_map(double, np.arange(1024, dtype=np.float32))
        server.drain()
        print(job.result())

Pieces:

* :class:`Server` / :class:`ClientSession` — the shared pool and the
  per-tenant handles (:mod:`repro.serve.server`);
* :class:`Scheduler` — weighted-fair deficit round-robin over modeled
  kernel-ns, or the naive FIFO baseline; launch batching of compatible
  small map jobs (:mod:`repro.serve.scheduler`);
* :class:`Tenant` / :class:`TenantQuota` — per-tenant queues, weights,
  admission and window quotas (:mod:`repro.serve.tenant`);
* :class:`Job` and the error taxonomy (:class:`Backpressure`,
  :class:`QuotaExceeded`) — :mod:`repro.serve.jobs`.

See ``docs/serving.md`` for the design rationale and the fairness /
backpressure semantics.
"""

from .jobs import Backpressure, Job, QuotaExceeded, ServeError
from .scheduler import POLICIES, Scheduler
from .server import ClientSession, Server
from .tenant import Tenant, TenantQuota

__all__ = [
    "Backpressure",
    "ClientSession",
    "Job",
    "POLICIES",
    "QuotaExceeded",
    "Scheduler",
    "Server",
    "ServeError",
    "Tenant",
    "TenantQuota",
]
