"""Tenants: per-client queues, weights, and quotas.

Each :class:`~repro.serve.server.ClientSession` is backed by one
:class:`Tenant` on the server.  The tenant owns the client's FIFO job
queue and all the accounting state the scheduler and admission
controller read: the scheduling weight, the DRR deficit, the rolling
device-ns window, and the in-flight byte total.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from .jobs import Job, ServeError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits.

    ``max_queue_depth`` bounds the number of queued jobs (admission
    control: submits beyond it raise :class:`~repro.serve.Backpressure`).
    ``max_inflight_bytes`` bounds the declared input bytes of queued +
    running jobs (:class:`~repro.serve.QuotaExceeded`).
    ``max_device_ns_per_window`` caps the modeled kernel-ns a tenant may
    be charged inside one ``window_ns`` stretch of serving time; a
    tenant at its cap is skipped by the scheduler until its window
    rolls (time fast-forwards when every backlogged tenant is capped).
    """

    max_queue_depth: int = 64
    max_inflight_bytes: Optional[int] = None
    max_device_ns_per_window: Optional[int] = None
    window_ns: int = 10_000_000

    def __post_init__(self):
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if self.max_inflight_bytes is not None and self.max_inflight_bytes < 1:
            raise ValueError("max_inflight_bytes must be positive")
        if self.max_device_ns_per_window is not None \
                and self.max_device_ns_per_window < 1:
            raise ValueError("max_device_ns_per_window must be positive")
        if self.window_ns < 1:
            raise ValueError("window_ns must be positive")


class Tenant:
    def __init__(self, name: str, index: int, weight: float = 1.0,
                 quota: Optional[TenantQuota] = None):
        if not name or not isinstance(name, str):
            raise ServeError("a tenant needs a non-empty string name")
        if not (weight > 0):
            raise ServeError(f"tenant weight must be positive, got {weight!r}")
        self.name = name
        self.index = index  # stable: drives the tenant's trace tracks
        self.weight = float(weight)
        self.quota = quota if quota is not None else TenantQuota()
        self.queue: Deque[Job] = deque()
        self.deficit = 0.0          # DRR credit, in modeled kernel-ns
        self.inflight_bytes = 0
        self.device_ns_total = 0
        self.window_start_ns = 0
        self.window_used_ns = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_rejected = 0

    # -- window quota ------------------------------------------------------

    def window_allows(self, now_ns: int) -> bool:
        """Whether the device-ns window quota permits dispatching for
        this tenant right now (rolls the window first if it expired)."""
        cap = self.quota.max_device_ns_per_window
        if cap is None:
            return True
        if now_ns - self.window_start_ns >= self.quota.window_ns:
            self.window_start_ns = now_ns
            self.window_used_ns = 0
        return self.window_used_ns < cap

    def next_window_ns(self) -> int:
        """When the current window rolls (the fast-forward target)."""
        return self.window_start_ns + self.quota.window_ns

    # -- accounting --------------------------------------------------------

    def charge(self, cost_ns: int) -> None:
        self.device_ns_total += cost_ns
        self.window_used_ns += cost_ns

    def __repr__(self) -> str:
        return (f"<Tenant {self.name!r} weight={self.weight} "
                f"queued={len(self.queue)} ns={self.device_ns_total}>")
