"""Serve jobs and the serve error taxonomy.

A :class:`Job` is one tenant request: either a *graph* job (a recorded
skeleton command graph, captured by the lazy planner's recording mode at
submit) or a *map* job (a structured single-skeleton call over a host
array, the batchable form).  Jobs move ``queued → running → done``; a
request the admission controller refuses never becomes a queued job —
the submit call raises :class:`Backpressure` or :class:`QuotaExceeded`
instead, and the client is expected to back off and retry after a
``drain()``.
"""

from __future__ import annotations

from typing import List, Optional


class ServeError(Exception):
    """Base of all serving-runtime errors."""


class Backpressure(ServeError):
    """Admission rejected a submit: the tenant's queue is at its
    ``max_queue_depth``.  Back off and resubmit after a ``drain()``."""


class QuotaExceeded(ServeError):
    """Admission rejected a submit: accepting the job would exceed the
    tenant's ``max_inflight_bytes`` quota."""


class Job:
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"

    __slots__ = ("id", "tenant", "kind", "label", "state", "nodes",
                 "payload", "batch_key", "value", "input_bytes",
                 "arrival_ns", "start_ns", "end_ns", "cost_ns", "batched")

    def __init__(self, tenant, kind: str, *, label: Optional[str] = None):
        self.id: Optional[int] = None  # assigned at admission
        self.tenant = tenant
        self.kind = kind  # "graph" | "map"
        self.label = label
        self.state = Job.QUEUED
        self.nodes: List = []      # graph jobs: recorded PlanNodes
        self.payload = None        # map jobs: (skeleton, array, extras)
        self.batch_key = None      # map jobs: launch-batching key
        self.value = None          # the client-visible result
        self.input_bytes = 0       # declared inputs (quota accounting)
        self.arrival_ns = 0        # serving clock at admission
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None
        self.cost_ns = 0           # charged modeled kernel-ns
        self.batched = False       # ran as part of a fused launch

    @property
    def done(self) -> bool:
        return self.state == Job.DONE

    @property
    def latency_ns(self) -> Optional[int]:
        """Admission-to-completion time on the serving clock."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.arrival_ns

    def result(self):
        """The job's result (a graph job's submit-callable return value,
        or a map job's output array).  Only available once the scheduler
        has run the job — call ``server.drain()`` first."""
        if self.state != Job.DONE:
            raise ServeError(
                f"job #{self.id} ({self.label or self.kind}) is {self.state}; "
                "results are available after server.drain()"
            )
        return self.value

    def __repr__(self) -> str:
        return (f"<Job #{self.id} {self.kind} tenant={self.tenant.name!r} "
                f"{self.state}>")
