"""The serving runtime: one shared device pool, many tenants.

A :class:`Server` owns a single lazy :class:`~repro.skelcl.runtime.Session`
over a (possibly mixed CPU+GPU) device pool.  Tenants open lightweight
:class:`ClientSession` handles and submit work in one of two forms:

* ``submit(fn)`` — *graph* jobs: ``fn`` runs inside a planner recording
  window, so every skeleton call it makes (including Reduce) defers into
  a captured command graph that executes only when the scheduler
  dispatches the job;
* ``submit_map(skeleton, array)`` — *map* jobs: a structured
  one-skeleton call over a host array.  Small compatible map jobs from
  the same tenant are fused into one launch (see
  :mod:`repro.serve.scheduler`).

Admission control is synchronous: a submit either returns an accepted
:class:`~repro.serve.jobs.Job` or raises
:class:`~repro.serve.jobs.Backpressure` (queue depth) /
:class:`~repro.serve.jobs.QuotaExceeded` (in-flight bytes).  Accepted
jobs wait in per-tenant FIFO queues until :meth:`Server.drain` runs the
scheduler.

Time: the *serving clock* is the simulated device timeline
(``context.elapsed_ns()``) plus accumulated idle time — fast-forwards
past window-quota stalls when no tenant may dispatch.  Job latency
(admission → completion on this clock) therefore includes queueing
delay, which is what the saturation benchmark measures.

The server's session is installed as the process-wide SkelCL runtime
(it calls ``skelcl.init``), so client-side containers and skeletons
bind to the shared pool, and SkelSan — when enabled via the usual
configuration chain — checks the *interleaved* multi-tenant command
graph for races.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..skelcl import runtime as _runtime
from ..skelcl.vector import Vector
from .jobs import Backpressure, Job, QuotaExceeded, ServeError
from .scheduler import Scheduler
from .tenant import Tenant, TenantQuota


class ClientSession:
    """A tenant's handle on the server: submit jobs, read results.

    Lightweight by design — no device state, no queues of its own; just
    the tenant identity plus the submit entry points.  Closing it
    detaches the tenant (pending jobs still drain)."""

    def __init__(self, server: "Server", tenant: Tenant):
        self._server = server
        self._tenant = tenant
        self._closed = False

    @property
    def name(self) -> str:
        return self._tenant.name

    @property
    def weight(self) -> float:
        return self._tenant.weight

    @property
    def quota(self) -> TenantQuota:
        return self._tenant.quota

    def submit(self, fn, *, label: Optional[str] = None) -> Job:
        """Record ``fn``'s skeleton calls as one graph job.  ``fn`` runs
        *now* (inside a recording window — every skeleton call defers);
        its return value becomes ``job.result()`` once the job runs."""
        self._check_open()
        return self._server._submit_graph(self._tenant, fn, label=label)

    def submit_map(self, skeleton, data, extra_args: Sequence = (), *,
                   label: Optional[str] = None) -> Job:
        """Submit one elementwise ``skeleton`` application over host
        array ``data`` — the batchable job form."""
        self._check_open()
        return self._server._submit_map(self._tenant, skeleton, data,
                                        tuple(extra_args), label=label)

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError(f"client session {self.name!r} is closed")

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"<ClientSession {self.name!r} weight={self.weight}>"


class Server:
    """A multi-tenant serving runtime on a shared device pool."""

    def __init__(self, devices: Sequence = ("test",), *,
                 policy: str = "drr", quantum_ns: int = 1_000_000,
                 default_quota: Optional[TenantQuota] = None,
                 batching: bool = True, batch_max_elements: int = 1 << 16,
                 batch_max_jobs: int = 8, detect_races=None,
                 backend: Optional[str] = None, partition=None):
        self.session = _runtime.init(devices=list(devices), lazy=True,
                                     detect_races=detect_races,
                                     backend=backend, partition=partition)
        self.tenants: Dict[str, Tenant] = {}
        self.scheduler = Scheduler(self, policy, quantum_ns=quantum_ns,
                                   batching=batching,
                                   batch_max_elements=batch_max_elements,
                                   batch_max_jobs=batch_max_jobs)
        self.default_quota = default_quota
        self._idle_ns = 0
        self._next_job_id = 0
        self._closed = False

    # -- the serving clock -------------------------------------------------

    @property
    def now_ns(self) -> int:
        """The serving clock: device timeline + accumulated idle time."""
        return self.session.context.elapsed_ns() + self._idle_ns

    def advance_clock(self, ns: int) -> None:
        """Model idle wall-clock between request waves (load generators
        use this to shape the offered-load interarrival times)."""
        if ns < 0:
            raise ServeError("cannot advance the clock backwards")
        self._idle_ns += ns

    def fast_forward_to(self, target_ns: int) -> None:
        """Jump the serving clock forward to ``target_ns`` (no-op if the
        clock is already past it)."""
        gap = target_ns - self.now_ns
        if gap > 0:
            self._idle_ns += gap
            self.metrics.counter("skelcl_serve_idle_ns_total").inc(gap)

    # -- tenants -----------------------------------------------------------

    @property
    def metrics(self):
        return self.session.metrics

    @property
    def planner(self):
        return self.session.planner

    def client(self, name: str, *, weight: float = 1.0,
               quota: Optional[TenantQuota] = None) -> ClientSession:
        """Open a tenant session.  ``weight`` scales the tenant's share
        of device time under the weighted-fair policy; ``quota`` falls
        back to the server's ``default_quota``."""
        self._check_open()
        if name in self.tenants:
            raise ServeError(f"tenant {name!r} already exists")
        tenant = Tenant(name, index=len(self.tenants), weight=weight,
                        quota=quota if quota is not None else self.default_quota)
        self.tenants[name] = tenant
        return ClientSession(self, tenant)

    # -- admission ---------------------------------------------------------

    def _reject(self, tenant: Tenant, reason: str) -> None:
        tenant.jobs_rejected += 1
        self.metrics.counter("skelcl_serve_jobs_total",
                             tenant=tenant.name, outcome="rejected").inc()
        if reason == "depth":
            raise Backpressure(
                f"tenant {tenant.name!r} queue is full "
                f"({tenant.quota.max_queue_depth} jobs); back off and "
                "resubmit after drain()"
            )
        raise QuotaExceeded(
            f"tenant {tenant.name!r} would exceed its in-flight byte "
            f"quota ({tenant.quota.max_inflight_bytes} bytes)"
        )

    def _admission_check(self, tenant: Tenant, input_bytes: int) -> None:
        if len(tenant.queue) >= tenant.quota.max_queue_depth:
            self._reject(tenant, "depth")
        cap = tenant.quota.max_inflight_bytes
        if cap is not None and tenant.inflight_bytes + input_bytes > cap:
            self._reject(tenant, "bytes")

    def _admit(self, tenant: Tenant, job: Job) -> Job:
        self._admission_check(tenant, job.input_bytes)
        job.id = self._next_job_id
        self._next_job_id += 1
        job.arrival_ns = self.now_ns
        tenant.queue.append(job)
        tenant.inflight_bytes += job.input_bytes
        tenant.jobs_submitted += 1
        self.metrics.counter("skelcl_serve_jobs_total",
                             tenant=tenant.name, outcome="accepted").inc()
        self.metrics.gauge("skelcl_serve_queue_depth",
                           tenant=tenant.name).set(len(tenant.queue))
        return job

    # -- submission --------------------------------------------------------

    def _submit_graph(self, tenant: Tenant, fn, *, label: Optional[str]) -> Job:
        self._check_open()
        # Fast-fail the cheap check before running fn at all; the byte
        # quota needs the recorded graph, so it re-checks afterwards.
        self._admission_check(tenant, 0)
        job = Job(tenant, "graph", label=label)
        with self.planner.record() as nodes:
            job.value = fn()
        job.nodes = nodes
        job.input_bytes = self._graph_input_bytes(nodes)
        try:
            return self._admit(tenant, job)
        except ServeError:
            self.planner.discard(nodes)
            raise

    @staticmethod
    def _graph_input_bytes(nodes) -> int:
        """Declared input footprint of a recorded graph: the distinct
        external input containers (not produced inside the graph)."""
        produced = {id(node.output) for node in nodes}
        seen, total = set(), 0
        for node in nodes:
            for container in node.inputs:
                if id(container) in produced or id(container) in seen:
                    continue
                seen.add(id(container))
                host = getattr(container, "_host", None)
                if host is not None:
                    total += host.nbytes
        return total

    def _submit_map(self, tenant: Tenant, skeleton, data,
                    extra_args: Tuple, *, label: Optional[str]) -> Job:
        self._check_open()
        array = np.ascontiguousarray(data)
        job = Job(tenant, "map", label=label)
        job.payload = (skeleton, array, extra_args)
        # Launch-batching key: same skeleton instance, same element
        # type, same extra args → the flattened arrays can share one
        # launch and be split apart afterwards.
        job.batch_key = (id(skeleton), array.dtype.str, extra_args)
        job.input_bytes = array.nbytes
        return self._admit(tenant, job)

    # -- dispatch (called by the scheduler) --------------------------------

    def dispatch(self, tenant: Tenant, jobs: List[Job]) -> int:
        """Run one launch: a single job, or a batch of compatible map
        jobs.  Returns the measured kernel-ns cost charged to the
        tenant (the DRR currency)."""
        context = self.session.context
        # A job cannot start before it arrived on the serving clock.
        self.fast_forward_to(max(job.arrival_ns for job in jobs))
        start_ns = self.now_ns
        ns_before = self._kernel_ns()
        marks = [len(queue.events) for queue in context.queues]
        for job in jobs:
            job.state = Job.RUNNING
            job.start_ns = start_ns
        if jobs[0].kind == "graph":
            assert len(jobs) == 1
            self.planner.flush_subset(jobs[0].nodes)
        else:
            self._run_maps(jobs)
        # Resolve the context directly: Session.finish_all() would flush
        # *every* tenant's still-pending recorded graphs, not just this
        # launch's.
        context.finish_all()
        cost = self._kernel_ns() - ns_before
        self._tag_events(tenant, marks)
        tenant.charge(cost)
        end_ns = self.now_ns
        per_job = cost // len(jobs)
        for job in jobs:
            job.state = Job.DONE
            job.end_ns = end_ns
            job.cost_ns = per_job
            job.batched = len(jobs) > 1
            tenant.inflight_bytes -= job.input_bytes
            tenant.jobs_completed += 1
            self.metrics.counter("skelcl_serve_jobs_total",
                                 tenant=tenant.name, outcome="completed").inc()
            self.metrics.histogram("skelcl_serve_latency_ns",
                                   tenant=tenant.name).observe(job.latency_ns)
        self.metrics.counter("skelcl_serve_tenant_ns_total",
                             tenant=tenant.name).inc(cost)
        self.metrics.gauge("skelcl_serve_queue_depth",
                           tenant=tenant.name).set(len(tenant.queue))
        if len(jobs) > 1:
            self.metrics.counter("skelcl_serve_batches_total",
                                 tenant=tenant.name).inc()
            self.metrics.counter("skelcl_serve_batched_jobs_total",
                                 tenant=tenant.name).inc(len(jobs))
        return cost

    def _kernel_ns(self) -> int:
        return sum(
            self.metrics.value("skelcl_kernel_ns_total", device=i)
            for i in range(len(self.session.devices))
        )

    def _run_maps(self, jobs: List[Job]) -> None:
        """Execute map jobs as one launch: concatenate the flattened
        inputs, run the skeleton once, split the result back out."""
        skeleton, _array, extras = jobs[0].payload
        flats = [job.payload[1].reshape(-1) for job in jobs]
        merged = Vector(data=np.concatenate(flats) if len(flats) > 1 else flats[0])
        label = jobs[0].label or f"serve:{jobs[0].tenant.name}"
        result = skeleton(merged, *extras, label=label).to_numpy()
        offset = 0
        for job, flat in zip(jobs, flats):
            job.value = result[offset:offset + flat.size] \
                .reshape(job.payload[1].shape).copy()
            offset += flat.size

    def _tag_events(self, tenant: Tenant, marks: List[int]) -> None:
        """Attribute every command this launch enqueued to the tenant —
        SkelScope renders them on per-tenant trace tracks."""
        for queue, mark in zip(self.session.context.queues, marks):
            for event in queue.events[mark:]:
                event.info["tenant"] = tenant.name
                event.info["tenant_track"] = tenant.index + 1

    # -- draining / stats --------------------------------------------------

    def drain(self) -> Dict[str, Dict[str, object]]:
        """Run the scheduler until every queue is empty; returns
        :meth:`stats`."""
        self._check_open()
        self.scheduler.drain()
        from ..scope.metrics import derive_serve_metrics

        derive_serve_metrics(self)
        return self.stats()

    def stats(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for name, tenant in sorted(self.tenants.items()):
            hist = self.metrics.histogram("skelcl_serve_latency_ns",
                                          tenant=name)
            out[name] = {
                "weight": tenant.weight,
                "submitted": tenant.jobs_submitted,
                "completed": tenant.jobs_completed,
                "rejected": tenant.jobs_rejected,
                "queued": len(tenant.queue),
                "device_ns": tenant.device_ns_total,
                "mean_latency_ns": hist.mean,
                "max_latency_ns": hist.max,
            }
        return out

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("server is closed")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.session.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
