"""Simulated compute devices."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .errors import OutOfResources
from .spec import DeviceSpec


class Device:
    """One simulated GPU: a spec plus allocation bookkeeping."""

    def __init__(self, spec: DeviceSpec, index: int = 0):
        self.spec = spec
        self.index = index
        self.allocated_bytes = 0

    @property
    def name(self) -> str:
        return f"{self.spec.name} #{self.index}"

    @property
    def global_mem_size(self) -> int:
        return self.spec.global_mem_bytes

    @property
    def local_mem_size(self) -> int:
        return self.spec.local_mem_bytes

    @property
    def max_work_group_size(self) -> int:
        return self.spec.max_work_group_size

    def allocate(self, nbytes: int) -> None:
        if self.allocated_bytes + nbytes > self.spec.global_mem_bytes:
            raise OutOfResources(
                f"{self.name}: allocating {nbytes} bytes exceeds device memory "
                f"({self.allocated_bytes} of {self.spec.global_mem_bytes} in use)"
            )
        self.allocated_bytes += nbytes

    def free(self, nbytes: int) -> None:
        self.allocated_bytes = max(0, self.allocated_bytes - nbytes)

    def __repr__(self) -> str:
        return f"<Device {self.name}>"


class Platform:
    """A simulated OpenCL platform.

    ``Platform(spec, n)`` builds N identical devices (the historic,
    homogeneous form).  ``Platform([spec_a, spec_b, ...])`` builds one
    device per spec, so heterogeneous CPU+GPU pools are expressible;
    device indices follow the sequence order.
    """

    def __init__(self, spec: Union[DeviceSpec, Sequence[DeviceSpec]],
                 num_devices: int = 1, name: Optional[str] = None):
        if isinstance(spec, DeviceSpec):
            if num_devices < 1:
                raise ValueError("a platform needs at least one device")
            specs: List[DeviceSpec] = [spec] * num_devices
        else:
            specs = list(spec)
            if not specs:
                raise ValueError("a platform needs at least one device")
            for candidate in specs:
                if not isinstance(candidate, DeviceSpec):
                    raise TypeError(
                        f"expected DeviceSpec instances, got {type(candidate).__name__}"
                    )
        self.specs = specs
        if name is not None:
            self.name = name
        elif len(set(s.name for s in specs)) == 1:
            self.name = f"Simulated platform ({specs[0].name})"
        else:
            self.name = "Simulated platform (mixed: " + " + ".join(
                s.name for s in specs
            ) + ")"
        self.devices = [Device(s, index) for index, s in enumerate(specs)]

    def __repr__(self) -> str:
        return f"<Platform {self.name!r} devices={len(self.devices)}>"
