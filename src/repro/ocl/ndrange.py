"""NDRange geometry: global/local sizes and work-group enumeration."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from .errors import InvalidValue, InvalidWorkGroupSize


def _as_tuple(value) -> Tuple[int, ...]:
    if isinstance(value, int):
        return (value,)
    return tuple(int(v) for v in value)


@dataclass(frozen=True)
class NDRange:
    """A validated NDRange: 1-3 dimensions, local divides global."""

    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]

    @staticmethod
    def create(global_size, local_size=None, max_work_group_size: int = 1024) -> "NDRange":
        gsize = _as_tuple(global_size)
        if not 1 <= len(gsize) <= 3:
            raise InvalidValue(f"NDRange must have 1-3 dimensions, got {len(gsize)}")
        if any(g <= 0 for g in gsize):
            raise InvalidValue(f"global size must be positive, got {gsize}")
        if local_size is None:
            lsize = tuple(_default_local(g, max_work_group_size if i == 0 else 1) if len(gsize) == 1
                          else _default_local(g, 16) for i, g in enumerate(gsize))
            # Shrink until the group fits the device limit.
            lsize = list(lsize)
            while _product(lsize) > max_work_group_size:
                dim = lsize.index(max(lsize))
                lsize[dim] = max(1, lsize[dim] // 2)
            lsize = tuple(lsize)
        else:
            lsize = _as_tuple(local_size)
        if len(lsize) != len(gsize):
            raise InvalidWorkGroupSize(
                f"local size has {len(lsize)} dimension(s), global has {len(gsize)}"
            )
        if any(l <= 0 for l in lsize):
            raise InvalidWorkGroupSize(f"local size must be positive, got {lsize}")
        if any(g % l != 0 for g, l in zip(gsize, lsize)):
            raise InvalidWorkGroupSize(
                f"global size {gsize} is not divisible by local size {lsize}"
            )
        if _product(lsize) > max_work_group_size:
            raise InvalidWorkGroupSize(
                f"work-group size {_product(lsize)} exceeds the device limit {max_work_group_size}"
            )
        return NDRange(gsize, lsize)

    @property
    def work_dim(self) -> int:
        return len(self.global_size)

    @property
    def total_work_items(self) -> int:
        return _product(self.global_size)

    @property
    def work_group_size(self) -> int:
        return _product(self.local_size)

    @property
    def num_groups(self) -> Tuple[int, ...]:
        return tuple(g // l for g, l in zip(self.global_size, self.local_size))

    @property
    def total_groups(self) -> int:
        return _product(self.num_groups)

    def group_ids(self) -> Iterator[Tuple[int, ...]]:
        """All work-group ids in row-major order (dim 0 fastest)."""
        ranges = [range(n) for n in reversed(self.num_groups)]
        for combo in itertools.product(*ranges):
            yield tuple(reversed(combo))

    def local_ids(self) -> Iterator[Tuple[int, ...]]:
        ranges = [range(n) for n in reversed(self.local_size)]
        for combo in itertools.product(*ranges):
            yield tuple(reversed(combo))


def _product(values: Sequence[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


def _default_local(global_dim: int, preferred: int) -> int:
    size = preferred
    while size > 1 and global_dim % size != 0:
        size //= 2
    return max(size, 1)
