"""Device buffers.

A :class:`Buffer` is raw device memory (a byte array).  Kernels view it
through a typed :class:`~repro.kernelc.memory.Pointer` created per
launch, which both applies C value semantics and reports traffic to the
launch's counters — exactly how an OpenCL buffer is untyped until a
kernel argument gives it an element type.
"""

from __future__ import annotations

import itertools
from typing import Optional

import numpy as np

from ..kernelc.ctypes_ import CType, VectorType, numpy_dtype
from ..kernelc.memory import MemoryCounters, Pointer
from .device import Device
from .errors import InvalidValue


class Buffer:
    # Process-wide identity for the race detector: ``id()`` can be
    # reused after garbage collection, a monotonic counter cannot.
    _uid_counter = itertools.count(1)

    def __init__(self, device: Device, nbytes: int, name: str = ""):
        if nbytes <= 0:
            raise InvalidValue(f"buffer size must be positive, got {nbytes}")
        self.device = device
        self.nbytes = int(nbytes)
        self.name = name
        self.uid = next(Buffer._uid_counter)
        device.allocate(self.nbytes)
        self._storage = np.zeros(self.nbytes, dtype=np.uint8)
        self._released = False
        # Sampled-execution taint: set when a sampled kernel launch (or a
        # kernel reading a tainted buffer) wrote this buffer, making its
        # contents partial.  The queue refuses to read tainted buffers
        # back to the host; a full host write clears the taint.
        self.sampled = False

    def release(self) -> None:
        if not self._released:
            self.device.free(self.nbytes)
            self._released = True

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.release()
        except Exception:
            pass

    # -- typed access -----------------------------------------------------

    def typed_view(self, ctype: CType) -> np.ndarray:
        """A numpy view of the buffer as elements of ``ctype``."""
        dtype = numpy_dtype(ctype)
        usable = (self.nbytes // dtype.itemsize) * dtype.itemsize
        return self._storage[:usable].view(dtype)

    def pointer(self, ctype: CType, counters: Optional[MemoryCounters] = None) -> Pointer:
        """A typed device pointer for kernel execution."""
        view = self.typed_view(ctype.element if isinstance(ctype, VectorType) else ctype)
        if isinstance(ctype, VectorType):
            length = len(view) // ctype.width
        else:
            length = len(view)
        return Pointer(view, ctype, "global", 0, counters, length)

    # -- host data movement (raw; the queue adds timing) -------------------

    def write_from_host(self, data: np.ndarray, offset_bytes: int = 0) -> int:
        """Copy ``data`` into the buffer; returns the bytes written."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if offset_bytes + raw.nbytes > self.nbytes:
            raise InvalidValue(
                f"write of {raw.nbytes} bytes at offset {offset_bytes} "
                f"overflows buffer of {self.nbytes} bytes"
            )
        self._storage[offset_bytes : offset_bytes + raw.nbytes] = raw
        return raw.nbytes

    def read_to_host(self, dtype, count: Optional[int] = None, offset_bytes: int = 0) -> np.ndarray:
        """Copy out of the buffer as ``count`` elements of ``dtype``."""
        dtype = np.dtype(dtype)
        if count is None:
            count = (self.nbytes - offset_bytes) // dtype.itemsize
        nbytes = count * dtype.itemsize
        if offset_bytes + nbytes > self.nbytes:
            raise InvalidValue("read overflows buffer")
        raw = self._storage[offset_bytes : offset_bytes + nbytes]
        return raw.view(dtype).copy()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Buffer{label} {self.nbytes} bytes on {self.device.name}>"
