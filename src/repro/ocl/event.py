"""Events: profiling records *and* dependency handles (simulated ns).

Mirrors the OpenCL event model the paper's asynchronous execution story
relies on (§4): every enqueued command returns an :class:`Event` that

* carries the four OpenCL profiling timestamps
  (``CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END}``),
* walks the ``queued → submitted → running → complete`` lifecycle,
* names the commands it must wait for (its ``wait_for`` list — the
  ``event_wait_list`` of the ``clEnqueue*`` call that created it), and
* can be waited on (``event.wait()``, cf. ``clWaitForEvents``).

Commands are *deferred*: enqueueing records the command and its planned
duration, but timestamps are only assigned when the event graph is
resolved — by ``event.wait()``, ``queue.finish()`` or
``Context.finish_all()``.  Resolution schedules each command at
``max(engine-ready time, completion of its wait list)`` on its device's
compute or transfer engine, so independent commands overlap exactly as
on real hardware.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

# Process-wide event sequence numbers: stable identities for trace flow
# edges (``id()`` values can be reused after garbage collection).
_SEQ = itertools.count(1)


class EventStatus(enum.Enum):
    """Host-visible command lifecycle (cf. ``CL_{QUEUED,SUBMITTED,RUNNING,COMPLETE}``)."""

    QUEUED = "queued"        # enqueued, timestamps not yet resolved
    SUBMITTED = "submitted"  # wait list satisfied, waiting for its engine
    RUNNING = "running"      # occupying its engine (transient during resolution)
    COMPLETE = "complete"    # timestamps assigned


# Engines a device executes commands on.  Kernels run on the compute
# engine; host↔device and device-local copies on the transfer (DMA)
# engine.  The two engines advance independently, which is what lets a
# kernel overlap a PCIe transfer.  Markers/barriers are synchronization
# points that occupy no engine.
COMPUTE_ENGINE = "compute"
TRANSFER_ENGINE = "transfer"
SYNC_ENGINE = "sync"

ENGINE_OF_COMMAND = {
    "ndrange_kernel": COMPUTE_ENGINE,
    "write_buffer": TRANSFER_ENGINE,
    "read_buffer": TRANSFER_ENGINE,
    "copy_buffer": TRANSFER_ENGINE,
    "marker": SYNC_ENGINE,
    "barrier": SYNC_ENGINE,
}


@dataclass
class Event:
    command_type: str  # 'ndrange_kernel', 'write_buffer', 'read_buffer', 'copy_buffer', 'marker', 'barrier'
    name: str
    queued_ns: int = 0
    submit_ns: int = 0
    start_ns: int = 0
    end_ns: int = 0
    # Free-form per-command statistics.  Values are integer counters
    # except where noted; standard keys:
    #
    #   kernels:   'ops', 'warp_ops', 'global_loads', 'global_stores',
    #              'global_bytes', 'local_loads', 'local_stores',
    #              'barriers', 'work_items', 'groups_total',
    #              'groups_executed' (ints)
    #   transfers: 'bytes' (int)
    #   skeletons: 'device_index' (int, which simulated GPU ran it)
    info: Dict[str, Union[int, float]] = field(default_factory=dict)
    # Dependency edges: this command may not start before every event in
    # the list is complete (the enqueue call's ``event_wait_list``).
    wait_for: List["Event"] = field(default_factory=list)
    status: EventStatus = EventStatus.COMPLETE
    # Which engine of the device executes the command.
    engine: str = COMPUTE_ENGINE
    device_index: int = 0
    # Planned duration, known at enqueue time; authoritative until the
    # scheduler assigns start/end.
    planned_ns: int = 0
    # Buffer access set (``repro.analysis.access.BufferAccess`` records):
    # which byte ranges of which buffers this command reads/writes.
    # Markers and barriers carry an empty set — pure ordering edges.
    accesses: List[object] = field(default_factory=list, repr=False, compare=False)
    # "file:line" of the user-code frame that enqueued the command;
    # captured only when a sanitizer is attached (provenance costs a
    # stack walk).
    enqueue_site: Optional[str] = field(default=None, repr=False, compare=False)
    # Trace span name, set by the layer that knows what the command
    # *means* (skeletons label their launches "Map(func)@file.py:12");
    # None falls back to ``name`` in trace exports.
    label: Optional[str] = field(default=None, repr=False, compare=False)
    # Unique, monotonically increasing id (SkelScope flow-edge ids).
    seq: int = field(default_factory=lambda: next(_SEQ), repr=False, compare=False)
    # Back-pointer to the owning queue (None for hand-built events).
    _queue: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def duration_ns(self) -> int:
        if self.status is EventStatus.COMPLETE:
            return self.end_ns - self.start_ns
        return self.planned_ns

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    @property
    def is_complete(self) -> bool:
        return self.status is EventStatus.COMPLETE

    def wait(self) -> int:
        """Resolve this event (and, transitively, everything it depends
        on), cf. ``clWaitForEvents`` on a single event.  Returns the
        completion timestamp ``end_ns``."""
        if self.status is not EventStatus.COMPLETE:
            if self._queue is not None:
                self._queue._resolve_until(self)  # type: ignore[attr-defined]
            else:
                self.status = EventStatus.COMPLETE
        return self.end_ns

    def status_at(self, time_ns: int) -> EventStatus:
        """The lifecycle state this command was in at simulated time
        ``time_ns`` (resolves the event first)."""
        self.wait()
        if time_ns < self.submit_ns:
            return EventStatus.QUEUED
        if time_ns < self.start_ns:
            return EventStatus.SUBMITTED
        if time_ns < self.end_ns:
            return EventStatus.RUNNING
        return EventStatus.COMPLETE

    def __repr__(self) -> str:
        return (
            f"<Event {self.command_type} {self.name!r} [{self.status.value}] "
            f"{self.duration_ms:.4f} ms>"
        )


def wait_for_events(events: Sequence[Event]) -> int:
    """``clWaitForEvents``: resolve all of ``events``; returns the latest
    completion timestamp (0 for an empty sequence)."""
    latest = 0
    for event in events:
        latest = max(latest, event.wait())
    return latest
