"""Events with profiling information (simulated nanoseconds).

Mirrors the OpenCL profiling API the paper uses for Fig. 5: an event
records when a command was queued, submitted, started and finished on
its device's simulated timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Event:
    command_type: str  # 'ndrange_kernel', 'write_buffer', 'read_buffer', 'copy_buffer'
    name: str
    queued_ns: int = 0
    submit_ns: int = 0
    start_ns: int = 0
    end_ns: int = 0
    # Free-form statistics (ops, memory traffic, groups executed...).
    info: Dict[str, float] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def __repr__(self) -> str:
        return f"<Event {self.command_type} {self.name!r} {self.duration_ms:.4f} ms>"
