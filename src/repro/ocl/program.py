"""Programs: kernel source → checked AST → compiled kernels.

``Program.build()`` runs the full kernelc front-end, the lint pass and
the compiling backend.  Builds are cached per ``(source, defines)`` so
that skeleton libraries repeatedly instantiating the same generated
source (as SkelCL does) only pay the compilation cost once.

Lint findings (:mod:`repro.kernelc.lint`) are recorded on the program
(``lint_diagnostics``) and rendered into the build log; lint *errors*
fail the build when the SkelSan strict switch is set
(``SKELCL_SANITIZE=strict``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.races import SanitizeMode, resolve_sanitize_mode
from ..scope.metrics import record_build
from ..kernelc import progcache
from ..kernelc.compiler import CompiledProgram, compile_program
from ..kernelc.diagnostics import CompileError, Diagnostic, Severity
from ..kernelc.frontend import compile_preprocessed, preprocess_source
from ..kernelc.lint import lint_program
from ..kernelc.preprocessor import PreprocessorError
from .errors import BuildError

_BUILD_CACHE: Dict[
    Tuple[str, Tuple[Tuple[str, str], ...]],
    Tuple[CompiledProgram, List[Diagnostic]],
] = {}


def clear_build_cache() -> None:
    _BUILD_CACHE.clear()


def build_cache_size() -> int:
    return len(_BUILD_CACHE)


class Program:
    def __init__(self, source: str, name: str = "<kernel>", defines: Optional[Dict[str, str]] = None):
        self.source = source
        self.name = name
        self.defines = dict(defines) if defines else {}
        self.build_log = ""
        self.lint_diagnostics: List[Diagnostic] = []
        self._compiled: Optional[CompiledProgram] = None

    @property
    def is_built(self) -> bool:
        return self._compiled is not None

    def build(self) -> "Program":
        key = (self.source, tuple(sorted(self.defines.items())))
        cached = _BUILD_CACHE.get(key)
        if cached is not None:
            record_build("memory")
            self._compiled, self.lint_diagnostics = cached
            self.build_log = "(cached)"
            self._enforce_lint()
            return self
        try:
            preprocessed = preprocess_source(self.source, self.name, self.defines)
        except PreprocessorError as exc:
            self.build_log = str(exc)
            raise BuildError(self.build_log) from exc

        # On-disk level: a prior process type-checked this exact
        # preprocessed source — skip re-parse/re-typecheck/lint and go
        # straight to the compiling backend.
        compiled = lint = None
        checked = None
        entry = progcache.load(preprocessed)
        if entry is not None:
            restored, lint = entry
            try:
                compiled = compile_program(restored)
            except Exception:
                compiled = lint = None  # corrupt/stale entry: cold-compile
        if compiled is not None:
            record_build("disk")
            self.build_log = "(disk cache)"
        else:
            try:
                checked = compile_preprocessed(preprocessed, self.name)
                lint = lint_program(checked)
                compiled = compile_program(checked)
            except CompileError as exc:
                self.build_log = str(exc)
                raise BuildError(self.build_log) from exc
            record_build("compiled")
            progcache.store(preprocessed, checked, lint)
            self.build_log = "build successful"
        _BUILD_CACHE[key] = (compiled, lint)
        self._compiled = compiled
        self.lint_diagnostics = lint
        if lint:
            source = getattr(checked, "source", None)
            rendered = "\n".join(d.render(source) for d in lint)
            self.build_log += "\n" + rendered
        self._enforce_lint()
        return self

    def _enforce_lint(self) -> None:
        """Under ``SKELCL_SANITIZE=strict``, lint errors fail the build."""
        errors = [d for d in self.lint_diagnostics if d.severity is Severity.ERROR]
        if errors and resolve_sanitize_mode(None) is SanitizeMode.STRICT:
            source = getattr(getattr(self._compiled, "program", None), "source", None)
            rendered = "\n".join(d.render(source) for d in errors)
            self.build_log = rendered
            raise BuildError(rendered)

    @property
    def compiled(self) -> CompiledProgram:
        if self._compiled is None:
            self.build()
        return self._compiled

    def kernel_names(self):
        return sorted(self.compiled.kernels)

    def create_kernel(self, name: str) -> "Kernel":
        from .kernel import Kernel

        return Kernel(self, self.compiled.kernel(name))

    def __repr__(self) -> str:
        state = "built" if self.is_built else "source"
        return f"<Program {self.name!r} ({state})>"
