"""Programs: kernel source → checked AST → compiled kernels.

``Program.build()`` runs the full kernelc front-end and the compiling
backend.  Builds are cached per ``(source, defines)`` so that skeleton
libraries repeatedly instantiating the same generated source (as SkelCL
does) only pay the compilation cost once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..kernelc.compiler import CompiledProgram, compile_program
from ..kernelc.diagnostics import CompileError
from ..kernelc.frontend import compile_source
from ..kernelc.preprocessor import PreprocessorError
from .errors import BuildError

_BUILD_CACHE: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], CompiledProgram] = {}


def clear_build_cache() -> None:
    _BUILD_CACHE.clear()


def build_cache_size() -> int:
    return len(_BUILD_CACHE)


class Program:
    def __init__(self, source: str, name: str = "<kernel>", defines: Optional[Dict[str, str]] = None):
        self.source = source
        self.name = name
        self.defines = dict(defines) if defines else {}
        self.build_log = ""
        self._compiled: Optional[CompiledProgram] = None

    @property
    def is_built(self) -> bool:
        return self._compiled is not None

    def build(self) -> "Program":
        key = (self.source, tuple(sorted(self.defines.items())))
        cached = _BUILD_CACHE.get(key)
        if cached is not None:
            self._compiled = cached
            self.build_log = "(cached)"
            return self
        try:
            checked = compile_source(self.source, self.name, self.defines)
            compiled = compile_program(checked)
        except CompileError as exc:
            self.build_log = str(exc)
            raise BuildError(self.build_log) from exc
        except PreprocessorError as exc:
            self.build_log = str(exc)
            raise BuildError(self.build_log) from exc
        _BUILD_CACHE[key] = compiled
        self._compiled = compiled
        self.build_log = "build successful"
        return self

    @property
    def compiled(self) -> CompiledProgram:
        if self._compiled is None:
            self.build()
        return self._compiled

    def kernel_names(self):
        return sorted(self.compiled.kernels)

    def create_kernel(self, name: str) -> "Kernel":
        from .kernel import Kernel

        return Kernel(self, self.compiled.kernel(name))

    def __repr__(self) -> str:
        state = "built" if self.is_built else "source"
        return f"<Program {self.name!r} ({state})>"
