"""NDRange execution on a simulated device.

Runs every work-group of an NDRange through a compiled kernel.  Kernels
that use ``barrier()`` are Python generators: all work-items of a group
are driven phase-by-phase, with divergence detection (every item of a
group must reach the same number of barriers, as OpenCL requires).

For very large NDRanges the executor supports *sampled* execution: a
deterministic, evenly spread subset of work-groups is executed and the
cost statistics are scaled up by the sampling factor.  Outputs are then
only partially written, so sampling is reserved for timing runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..kernelc.compiler import CompiledKernel
from ..kernelc.execmodel import ExecutionCounters, WorkItemContext
from ..kernelc.interp import allocate_local_memory
from ..kernelc.memory import KernelFault
from .ndrange import NDRange

# SIMD width used for divergence accounting (NVIDIA warp).
WARP_SIZE = 32


@dataclass
class ExecutionResult:
    counters: ExecutionCounters
    groups_total: int
    groups_executed: int

    @property
    def sampled(self) -> bool:
        return self.groups_executed < self.groups_total

    @property
    def scale(self) -> float:
        return self.groups_total / max(self.groups_executed, 1)


def select_sample_groups(groups: List[tuple], fraction: float) -> List[tuple]:
    """A deterministic, evenly spread subset of work-groups."""
    count = max(1, round(len(groups) * fraction))
    if count >= len(groups):
        return groups
    step = len(groups) / count
    return [groups[min(int(i * step), len(groups) - 1)] for i in range(count)]


def execute_ndrange(
    kernel: CompiledKernel,
    ndrange: NDRange,
    args: Sequence,
    sample_fraction: Optional[float] = None,
    counters: Optional[ExecutionCounters] = None,
) -> ExecutionResult:
    """Execute ``kernel`` over ``ndrange``; returns scaled cost counters.

    ``counters`` must be the same object the argument pointers report
    their memory traffic to (the queue wires this up), so that sampled
    execution scales operations and memory traffic consistently.
    """
    if counters is None:
        counters = ExecutionCounters()
    groups = list(ndrange.group_ids())
    if sample_fraction is not None and 0 < sample_fraction < 1:
        selected = select_sample_groups(groups, sample_fraction)
    else:
        selected = groups

    local_ids = list(ndrange.local_ids())
    local_size = ndrange.local_size
    global_size = ndrange.global_size
    func = kernel.func
    has_locals = bool(kernel.local_decls)

    for group in selected:
        if has_locals:
            storage = allocate_local_memory(kernel.definition, counters)
            lmem = [storage[id(decl)] for decl in kernel.local_decls]
        else:
            lmem = ()
        base = tuple(g * l for g, l in zip(group, local_size))
        contexts = [
            WorkItemContext(
                tuple(b + l for b, l in zip(base, local_id)),
                local_id,
                group,
                global_size,
                local_size,
            )
            for local_id in local_ids
        ]
        if kernel.uses_barrier:
            _run_group_with_barriers(func, counters, contexts, lmem, args)
        else:
            # Warp-divergence accounting: a 32-lane warp runs as long as
            # its slowest lane.  Work-items enumerate in local linear
            # order (dimension 0 fastest), matching hardware warp packing.
            warp_max = 0
            lane = 0
            before = counters.ops
            for ctx in contexts:
                func(counters, ctx, lmem, *args)
                item_ops = counters.ops - before
                before = counters.ops
                if item_ops > warp_max:
                    warp_max = item_ops
                lane += 1
                if lane == WARP_SIZE:
                    counters.warp_ops += warp_max * WARP_SIZE
                    warp_max = 0
                    lane = 0
            if lane:
                counters.warp_ops += warp_max * WARP_SIZE

    if len(selected) < len(groups):
        scale = len(groups) / len(selected)
        counters = counters.scaled(scale)
    return ExecutionResult(counters, len(groups), len(selected))


def _run_group_with_barriers(func, counters, contexts, lmem, args) -> None:
    generators = [func(counters, ctx, lmem, *args) for ctx in contexts]
    alive = generators
    while alive:
        yielded: List = []
        finished = 0
        for generator in alive:
            try:
                next(generator)
                yielded.append(generator)
            except StopIteration:
                finished += 1
        if yielded and finished:
            raise KernelFault(
                "barrier divergence: some work-items of a group reached a "
                "barrier other items skipped"
            )
        alive = yielded
