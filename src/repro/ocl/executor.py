"""NDRange execution on a simulated device.

Two backends execute an NDRange:

``vector`` (the default)
    The lockstep numpy backend (:mod:`repro.kernelc.vectorize`): every
    selected work-item advances through the kernel simultaneously under
    active-lane masks.  Kernels using constructs with no lockstep
    lowering fall back transparently to the per-item backend.

``interp``
    The original per-item path: every work-item runs the compiled
    kernel function to completion (or, for ``barrier()`` kernels,
    phase-by-phase as a Python generator with divergence detection).

Both backends produce bit-identical buffers and identical
``ExecutionCounters``; ``tests/kernelc/test_vectorize_differential.py``
enforces this.  Select with the ``backend=`` argument (plumbed through
``Context``) or the ``SKELCL_BACKEND`` environment variable.

For very large NDRanges the executor supports *sampled* execution: a
deterministic, evenly spread subset of work-groups is executed and the
cost statistics are scaled up by the sampling factor.  Outputs are then
only partially written, so sampling is reserved for timing runs; the
queue layer quarantines sampled buffers (see ``ocl.buffer``) so their
contents can never be read back as results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..kernelc import vectorize
from ..kernelc.compiler import CompiledKernel
from ..kernelc.execmodel import ExecutionCounters, WorkItemContext
from ..kernelc.interp import allocate_local_memory
from ..kernelc.memory import KernelFault
from .errors import InvalidValue
from .ndrange import NDRange

BACKENDS = ("vector", "interp")
DEFAULT_BACKEND = "vector"


def resolve_backend(backend: Optional[str]) -> str:
    """Normalize a backend selection (None defers to the configuration
    chain: ``skelcl.configure(backend=...)``, then ``SKELCL_BACKEND``,
    then the default)."""
    if backend is None:
        from .. import settings

        try:
            return settings.get("backend")
        except ValueError as exc:
            raise InvalidValue(str(exc)) from None
    if backend not in BACKENDS:
        raise InvalidValue(
            f"unknown execution backend {backend!r} (choose from {', '.join(BACKENDS)})"
        )
    return backend

# SIMD width used for divergence accounting (NVIDIA warp).
WARP_SIZE = 32


@dataclass
class ExecutionResult:
    counters: ExecutionCounters
    groups_total: int
    groups_executed: int

    @property
    def sampled(self) -> bool:
        return self.groups_executed < self.groups_total

    @property
    def scale(self) -> float:
        return self.groups_total / max(self.groups_executed, 1)


def select_sample_groups(groups: List[tuple], fraction: float) -> List[tuple]:
    """A deterministic, evenly spread subset of work-groups."""
    count = max(1, round(len(groups) * fraction))
    if count >= len(groups):
        return groups
    step = len(groups) / count
    return [groups[min(int(i * step), len(groups) - 1)] for i in range(count)]


def execute_ndrange(
    kernel: CompiledKernel,
    ndrange: NDRange,
    args: Sequence,
    sample_fraction: Optional[float] = None,
    counters: Optional[ExecutionCounters] = None,
    backend: Optional[str] = None,
) -> ExecutionResult:
    """Execute ``kernel`` over ``ndrange``; returns scaled cost counters.

    ``counters`` must be the same object the argument pointers report
    their memory traffic to (the queue wires this up), so that sampled
    execution scales operations and memory traffic consistently.
    """
    if counters is None:
        counters = ExecutionCounters()
    backend = resolve_backend(backend)
    groups = list(ndrange.group_ids())
    if sample_fraction is not None and 0 < sample_fraction < 1:
        selected = select_sample_groups(groups, sample_fraction)
    else:
        selected = groups

    local_ids = list(ndrange.local_ids())

    if backend == "vector":
        plan = vectorize.plan_for(kernel)
        if plan is not None:
            vectorize.execute(kernel, plan, ndrange, selected, local_ids, args, counters)
            if len(selected) < len(groups):
                counters = counters.scaled(len(groups) / len(selected))
            return ExecutionResult(counters, len(groups), len(selected))
        # Unsupported construct: fall through to the per-item path.

    local_size = ndrange.local_size
    global_size = ndrange.global_size
    func = kernel.func
    has_locals = bool(kernel.local_decls)

    for group in selected:
        if has_locals:
            storage = allocate_local_memory(kernel.definition, counters)
            lmem = [storage[id(decl)] for decl in kernel.local_decls]
        else:
            lmem = ()
        base = tuple(g * l for g, l in zip(group, local_size))
        contexts = [
            WorkItemContext(
                tuple(b + l for b, l in zip(base, local_id)),
                local_id,
                group,
                global_size,
                local_size,
            )
            for local_id in local_ids
        ]
        if kernel.uses_barrier:
            _run_group_with_barriers(func, counters, contexts, lmem, args)
        else:
            # Warp-divergence accounting: a 32-lane warp runs as long as
            # its slowest lane.  Work-items enumerate in local linear
            # order (dimension 0 fastest), matching hardware warp packing.
            warp_max = 0
            lane = 0
            before = counters.ops
            for ctx in contexts:
                func(counters, ctx, lmem, *args)
                item_ops = counters.ops - before
                before = counters.ops
                if item_ops > warp_max:
                    warp_max = item_ops
                lane += 1
                if lane == WARP_SIZE:
                    counters.warp_ops += warp_max * WARP_SIZE
                    warp_max = 0
                    lane = 0
            if lane:
                counters.warp_ops += warp_max * WARP_SIZE

    if len(selected) < len(groups):
        scale = len(groups) / len(selected)
        counters = counters.scaled(scale)
    return ExecutionResult(counters, len(groups), len(selected))


def _run_group_with_barriers(func, counters, contexts, lmem, args) -> None:
    generators = [func(counters, ctx, lmem, *args) for ctx in contexts]
    alive = generators
    while alive:
        yielded: List = []
        finished = 0
        for generator in alive:
            try:
                next(generator)
                yielded.append(generator)
            except StopIteration:
                finished += 1
        if yielded and finished:
            raise KernelFault(
                "barrier divergence: some work-items of a group reached a "
                "barrier other items skipped"
            )
        alive = yielded
