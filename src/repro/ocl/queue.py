"""In-order command queues with a simulated device timeline.

Every enqueued command advances the queue's clock by the duration the
analytic timing model assigns to it, and returns an :class:`Event`
carrying OpenCL-style profiling timestamps.  Different queues (different
devices) advance independently — multi-GPU wall-clock time is the
maximum over the involved queues, which :class:`repro.ocl.context.Context`
computes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..kernelc.execmodel import ExecutionCounters
from .buffer import Buffer
from .device import Device
from .errors import InvalidValue
from .event import Event
from .executor import execute_ndrange
from .kernel import Kernel
from .ndrange import NDRange
from .timing import kernel_time_ns, simd_utilization, transfer_time_ns


class CommandQueue:
    def __init__(self, device: Device, profiling: bool = True):
        self.device = device
        self.profiling = profiling
        self.time_ns = 0
        self.events: List[Event] = []
        # Aggregate statistics over the queue's lifetime.
        self.total_kernel_ns = 0
        self.total_transfer_ns = 0
        self.total_transfer_bytes = 0

    # -- timeline -----------------------------------------------------------

    def reset_timeline(self) -> None:
        self.time_ns = 0
        self.events.clear()
        self.total_kernel_ns = 0
        self.total_transfer_ns = 0
        self.total_transfer_bytes = 0

    def finish(self) -> int:
        """Block until all commands complete; returns the queue clock."""
        return self.time_ns

    def _record(self, event: Event, duration_ns: int) -> Event:
        event.queued_ns = self.time_ns
        event.submit_ns = self.time_ns
        event.start_ns = self.time_ns
        event.end_ns = self.time_ns + duration_ns
        self.time_ns = event.end_ns
        if self.profiling:
            self.events.append(event)
        return event

    # -- commands -------------------------------------------------------------

    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size,
        local_size=None,
        sample_fraction: Optional[float] = None,
    ) -> Event:
        """Launch ``kernel``; returns the profiling event."""
        ndrange = NDRange.create(global_size, local_size, self.device.max_work_group_size)
        counters = ExecutionCounters()
        # The pointers created here report memory traffic into
        # `counters.memory`, and the executor charges ops to the same
        # object, so sampling scales both consistently.
        args = kernel.marshal_args(counters, self.device)
        result = execute_ndrange(kernel.compiled, ndrange, args, sample_fraction, counters)
        duration = kernel_time_ns(
            self.device.spec,
            result.counters,
            simd_utilization(ndrange.work_group_size),
        )
        event = Event("ndrange_kernel", kernel.name)
        event.info.update(
            ops=result.counters.ops,
            warp_ops=result.counters.warp_ops,
            global_loads=result.counters.memory.global_loads,
            global_stores=result.counters.memory.global_stores,
            global_bytes=result.counters.memory.global_bytes,
            local_loads=result.counters.memory.local_loads,
            local_stores=result.counters.memory.local_stores,
            barriers=result.counters.barriers,
            work_items=ndrange.total_work_items,
            groups_total=result.groups_total,
            groups_executed=result.groups_executed,
        )
        self._record(event, duration)
        self.total_kernel_ns += duration
        return event

    def enqueue_write_buffer(self, buffer: Buffer, data: np.ndarray, blocking: bool = True,
                             offset_bytes: int = 0) -> Event:
        if buffer.device is not self.device:
            raise InvalidValue("buffer belongs to a different device than this queue")
        nbytes = buffer.write_from_host(data, offset_bytes)
        duration = transfer_time_ns(self.device.spec, nbytes)
        event = Event("write_buffer", buffer.name or "buffer", info={"bytes": nbytes})
        self._record(event, duration)
        self.total_transfer_ns += duration
        self.total_transfer_bytes += nbytes
        return event

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer, nbytes: int,
                            src_offset_bytes: int = 0, dst_offset_bytes: int = 0) -> Event:
        """Device-local buffer-to-buffer copy (clEnqueueCopyBuffer).

        Both buffers must live on this queue's device; the copy costs
        global-memory bandwidth (read + write), never the PCIe link.
        """
        if src.device is not self.device or dst.device is not self.device:
            raise InvalidValue("copy_buffer requires both buffers on this queue's device")
        data = src.read_to_host(np.uint8, nbytes, src_offset_bytes)
        dst.write_from_host(data, dst_offset_bytes)
        duration = int(
            2 * nbytes / self.device.spec.global_bandwidth_gbs + 1000  # +1us overhead
        )
        event = Event("copy_buffer", dst.name or "buffer", info={"bytes": nbytes})
        self._record(event, duration)
        return event

    def enqueue_read_buffer(self, buffer: Buffer, dtype, count: Optional[int] = None,
                            offset_bytes: int = 0, blocking: bool = True):
        """Read back data; returns ``(array, event)``."""
        if buffer.device is not self.device:
            raise InvalidValue("buffer belongs to a different device than this queue")
        data = buffer.read_to_host(dtype, count, offset_bytes)
        duration = transfer_time_ns(self.device.spec, data.nbytes)
        event = Event("read_buffer", buffer.name or "buffer", info={"bytes": data.nbytes})
        self._record(event, duration)
        self.total_transfer_ns += duration
        self.total_transfer_bytes += data.nbytes
        return data, event

    def kernel_events(self) -> List[Event]:
        return [e for e in self.events if e.command_type == "ndrange_kernel"]

    def __repr__(self) -> str:
        return f"<CommandQueue on {self.device.name} t={self.time_ns}ns>"
