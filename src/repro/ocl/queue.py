"""Command queues scheduling an asynchronous command graph.

Enqueueing a command executes its *data* effects immediately (so results
stay checkable) but defers its *timeline*: the command enters a pending
list with a planned duration, a wait list, and status ``QUEUED``.  The
scheduler resolves timestamps lazily — on ``event.wait()``,
``queue.finish()``, any read of ``queue.time_ns``, or
``Context.finish_all()`` — by assigning each command

    start = max(engine-ready time, completion of its wait list)

on one of the device's two engines: *compute* (kernels) or *transfer*
(host↔device and device-local copies).  The engines advance
independently, so a kernel overlaps a PCIe transfer exactly as real
hardware overlaps them, and cross-queue wait lists model inter-GPU
dependency edges (redistribution, halo exchange).

Ordering rules mirror OpenCL 1.x in-order queues with events:

* ``event_wait_list=None`` (the default) keeps the classic in-order
  behaviour — the command implicitly depends on the previously enqueued
  command of the same queue, fully serializing the queue.
* ``event_wait_list=[...]`` (possibly empty) makes the dependencies
  explicit: the command waits for exactly those events (plus any active
  barrier) and may otherwise overlap other commands of the same device.
* ``enqueue_marker``/``enqueue_barrier`` are zero-duration sync points;
  a barrier additionally gates every subsequently enqueued command.
"""

from __future__ import annotations

import os.path
import sys
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.access import BufferAccess, kernel_buffer_accesses
from ..kernelc.execmodel import ExecutionCounters
from .buffer import Buffer
from .device import Device
from .errors import InvalidValue, SampledBufferRead
from .event import (
    COMPUTE_ENGINE,
    ENGINE_OF_COMMAND,
    Event,
    EventStatus,
    SYNC_ENGINE,
    TRANSFER_ENGINE,
)
from .executor import execute_ndrange
from .kernel import Kernel
from .ndrange import NDRange
from .timing import kernel_time_ns, simd_utilization, transfer_time_ns

_OCL_DIR = os.path.dirname(os.path.abspath(__file__))


def _capture_enqueue_site() -> Optional[str]:
    """``file.py:line`` of the innermost caller outside ``repro.ocl`` —
    the skeleton or user code that issued the enqueue."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not os.path.abspath(filename).startswith(_OCL_DIR):
            parts = filename.replace("\\", "/").rsplit("/", 2)[-2:]
            return f"{'/'.join(parts)}:{frame.f_lineno}"
        frame = frame.f_back
    return None


class CommandQueue:
    def __init__(self, device: Device, profiling: bool = True):
        self.device = device
        self.profiling = profiling
        self.events: List[Event] = []
        # Scheduler state: commands whose timestamps are unresolved, the
        # ready time of each engine, and the last command per engine /
        # overall (for markers and implicit in-order dependencies).
        self._pending: Deque[Event] = deque()
        self._engine_ready: Dict[str, int] = {COMPUTE_ENGINE: 0, TRANSFER_ENGINE: 0}
        self._engine_tail: Dict[str, Optional[Event]] = {
            COMPUTE_ENGINE: None,
            TRANSFER_ENGINE: None,
        }
        self._last_event: Optional[Event] = None
        self._barrier: Optional[Event] = None
        self._horizon = 0  # latest resolved end_ns on this queue
        # Race detector attached by the owning Context (may stay None).
        self._sanitizer = None
        # Execution backend attached by the owning Context; None defers
        # to SKELCL_BACKEND / the executor default at launch time.
        self._backend: Optional[str] = None
        # SkelScope metrics registry attached by the owning Context
        # (may stay None for bare queues built in tests).
        self._metrics = None
        # Aggregate statistics over the queue's lifetime.  ``transfer``
        # covers every data-movement command (write/read/copy);
        # ``pcie`` only the commands crossing the host link (write/read).
        self.total_kernel_ns = 0
        self.total_transfer_ns = 0
        self.total_transfer_bytes = 0
        self.total_pcie_ns = 0
        self.total_pcie_bytes = 0

    # -- timeline -----------------------------------------------------------

    @property
    def time_ns(self) -> int:
        """The queue clock: resolves all pending commands and returns the
        time the last of them completes."""
        self.flush()
        return self._horizon

    def reset_timeline(self) -> None:
        self.events.clear()
        self._pending.clear()
        self._engine_ready = {COMPUTE_ENGINE: 0, TRANSFER_ENGINE: 0}
        self._engine_tail = {COMPUTE_ENGINE: None, TRANSFER_ENGINE: None}
        self._last_event = None
        self._barrier = None
        self._horizon = 0
        self.total_kernel_ns = 0
        self.total_transfer_ns = 0
        self.total_transfer_bytes = 0
        self.total_pcie_ns = 0
        self.total_pcie_bytes = 0

    def flush(self) -> None:
        """Resolve every pending command's timestamps."""
        while self._pending:
            self._schedule(self._pending.popleft())

    def finish(self) -> int:
        """Block until all commands complete; returns the queue clock."""
        return self.time_ns

    # -- scheduling ---------------------------------------------------------

    def _submit(self, event: Event, duration_ns: int,
                wait_for: Optional[Sequence[Event]]) -> Event:
        """Record ``event`` as pending with its dependency edges."""
        event._queue = self
        event.planned_ns = int(duration_ns)
        event.engine = ENGINE_OF_COMMAND[event.command_type]
        event.device_index = self.device.index
        event.status = EventStatus.QUEUED
        if wait_for is None:
            # Classic in-order queue: serialize behind the previous command.
            deps = [self._last_event] if self._last_event is not None else []
        else:
            deps = [dep for dep in wait_for if dep is not None]
            if self._barrier is not None and self._barrier not in deps:
                deps.append(self._barrier)
        event.wait_for = deps
        self._pending.append(event)
        self._last_event = event
        if event.engine in self._engine_tail:
            self._engine_tail[event.engine] = event
        if self.profiling:
            self.events.append(event)
        metrics = self._metrics
        if metrics is not None:
            metrics.counter("skelcl_commands_total", kind=event.command_type).inc()
        sanitizer = self._sanitizer
        if sanitizer is not None and sanitizer.enabled:
            event.enqueue_site = _capture_enqueue_site()
            # Queue state is final at this point, so a strict-mode
            # RaceError leaves a consistent timeline behind it.
            sanitizer.observe(event)
        return event

    def _count_transfer(self, link: str, direction: str, nbytes: int, duration: int) -> None:
        """Metrics for one data movement: ``link`` separates the host
        link ("pcie": write/read) from device-local traffic ("device":
        copy_buffer, i.e. the inter-GPU redistribution path)."""
        metrics = self._metrics
        if metrics is None:
            return
        device = self.device.index
        metrics.counter("skelcl_transfer_bytes_total", link=link, direction=direction).inc(nbytes)
        metrics.counter("skelcl_transfer_ns_total", link=link, device=device).inc(duration)

    def _resolve_until(self, target: Event) -> None:
        """Resolve pending commands (in order) until ``target`` is complete."""
        while self._pending and target.status is not EventStatus.COMPLETE:
            self._schedule(self._pending.popleft())

    def _schedule(self, event: Event) -> None:
        if event.status is EventStatus.COMPLETE:
            return
        # Wait-list events may live on other queues: resolving them first
        # is what creates the cross-device dependency edges.  Wait lists
        # can only reference already-enqueued events, so the global
        # enqueue order is a topological order and this recursion
        # terminates.
        deps_end = 0
        for dep in event.wait_for:
            deps_end = max(deps_end, dep.wait())
        if event.engine is SYNC_ENGINE or event.engine not in self._engine_ready:
            event.queued_ns = deps_end
            event.submit_ns = deps_end
            event.start_ns = deps_end
            event.end_ns = deps_end + event.planned_ns
        else:
            ready = self._engine_ready[event.engine]
            event.queued_ns = ready
            event.submit_ns = max(ready, deps_end)
            event.start_ns = event.submit_ns
            event.end_ns = event.start_ns + event.planned_ns
            self._engine_ready[event.engine] = event.end_ns
        event.status = EventStatus.COMPLETE
        self._horizon = max(self._horizon, event.end_ns)

    # -- commands -------------------------------------------------------------

    def enqueue_nd_range_kernel(
        self,
        kernel: Kernel,
        global_size,
        local_size=None,
        sample_fraction: Optional[float] = None,
        event_wait_list: Optional[Sequence[Event]] = None,
    ) -> Event:
        """Launch ``kernel``; returns the profiling event."""
        ndrange = NDRange.create(global_size, local_size, self.device.max_work_group_size)
        counters = ExecutionCounters()
        # The pointers created here report memory traffic into
        # `counters.memory`, and the executor charges ops to the same
        # object, so sampling scales both consistently.
        args = kernel.marshal_args(counters, self.device)
        result = execute_ndrange(kernel.compiled, ndrange, args, sample_fraction, counters,
                                 backend=self._backend)
        duration = kernel_time_ns(
            self.device.spec,
            result.counters,
            simd_utilization(ndrange.work_group_size),
        )
        event = Event("ndrange_kernel", kernel.name)
        event.info.update(
            ops=result.counters.ops,
            warp_ops=result.counters.warp_ops,
            global_loads=result.counters.memory.global_loads,
            global_stores=result.counters.memory.global_stores,
            global_bytes=result.counters.memory.global_bytes,
            local_loads=result.counters.memory.local_loads,
            local_stores=result.counters.memory.local_stores,
            barriers=result.counters.barriers,
            work_items=ndrange.total_work_items,
            groups_total=result.groups_total,
            groups_executed=result.groups_executed,
        )
        event.accesses = kernel_buffer_accesses(kernel, ndrange, self._metrics)
        # Sampled-execution taint: a sampled launch leaves its outputs
        # partially written, and a kernel consuming tainted data spreads
        # the taint to everything it writes.
        buffers = {arg.uid: arg for arg in kernel._args if isinstance(arg, Buffer)}
        reads_tainted = any(
            buffers[access.buffer_uid].sampled
            for access in event.accesses
            if access.reads and access.buffer_uid in buffers
        )
        if result.sampled or reads_tainted:
            for access in event.accesses:
                if access.writes and access.buffer_uid in buffers:
                    buffers[access.buffer_uid].sampled = True
        self._submit(event, duration, event_wait_list)
        self.total_kernel_ns += duration
        if self._metrics is not None:
            device = self.device.index
            self._metrics.counter("skelcl_kernel_ns_total", device=device).inc(duration)
            self._metrics.counter("skelcl_work_items_total").inc(ndrange.total_work_items)
            self._metrics.counter("skelcl_kernel_ops_total").inc(result.counters.ops)
            self._metrics.histogram("skelcl_kernel_ns", device=device).observe(duration)
        return event

    def enqueue_write_buffer(self, buffer: Buffer, data: np.ndarray, blocking: bool = True,
                             offset_bytes: int = 0,
                             event_wait_list: Optional[Sequence[Event]] = None) -> Event:
        if buffer.device is not self.device:
            raise InvalidValue("buffer belongs to a different device than this queue")
        nbytes = buffer.write_from_host(data, offset_bytes)
        if offset_bytes == 0 and nbytes >= buffer.nbytes:
            buffer.sampled = False  # fully rewritten: contents whole again
        duration = transfer_time_ns(self.device.spec, nbytes)
        event = Event("write_buffer", buffer.name or "buffer", info={"bytes": nbytes})
        event.accesses = [BufferAccess.write(buffer, offset_bytes, nbytes)]
        self._submit(event, duration, event_wait_list)
        self.total_transfer_ns += duration
        self.total_transfer_bytes += nbytes
        self.total_pcie_ns += duration
        self.total_pcie_bytes += nbytes
        self._count_transfer("pcie", "h2d", nbytes, duration)
        return event

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer, nbytes: int,
                            src_offset_bytes: int = 0, dst_offset_bytes: int = 0,
                            event_wait_list: Optional[Sequence[Event]] = None) -> Event:
        """Device-local buffer-to-buffer copy (clEnqueueCopyBuffer).

        Both buffers must live on this queue's device; the copy costs
        global-memory bandwidth (read + write), never the PCIe link —
        it counts into ``total_transfer_*`` but not ``total_pcie_*``.
        """
        if src.device is not self.device or dst.device is not self.device:
            raise InvalidValue("copy_buffer requires both buffers on this queue's device")
        data = src.read_to_host(np.uint8, nbytes, src_offset_bytes)
        dst.write_from_host(data, dst_offset_bytes)
        if src.sampled:
            dst.sampled = True
        elif dst_offset_bytes == 0 and nbytes >= dst.nbytes:
            dst.sampled = False  # fully overwritten with whole data
        duration = int(
            2 * nbytes / self.device.spec.global_bandwidth_gbs + 1000  # +1us overhead
        )
        event = Event("copy_buffer", dst.name or "buffer", info={"bytes": nbytes})
        event.accesses = [
            BufferAccess.read(src, src_offset_bytes, nbytes),
            BufferAccess.write(dst, dst_offset_bytes, nbytes),
        ]
        self._submit(event, duration, event_wait_list)
        self.total_transfer_ns += duration
        self.total_transfer_bytes += nbytes
        self._count_transfer("device", "d2d", nbytes, duration)
        return event

    def enqueue_read_buffer(self, buffer: Buffer, dtype, count: Optional[int] = None,
                            offset_bytes: int = 0, blocking: bool = True,
                            event_wait_list: Optional[Sequence[Event]] = None):
        """Read back data; returns ``(array, event)``."""
        if buffer.device is not self.device:
            raise InvalidValue("buffer belongs to a different device than this queue")
        if buffer.sampled:
            raise SampledBufferRead(
                f"buffer {buffer.name or buffer.uid!r} holds partial results from "
                "sampled kernel execution; sampled runs are timing-only and must "
                "not be read back as data"
            )
        data = buffer.read_to_host(dtype, count, offset_bytes)
        duration = transfer_time_ns(self.device.spec, data.nbytes)
        event = Event("read_buffer", buffer.name or "buffer", info={"bytes": data.nbytes})
        event.accesses = [BufferAccess.read(buffer, offset_bytes, data.nbytes)]
        self._submit(event, duration, event_wait_list)
        self.total_transfer_ns += duration
        self.total_transfer_bytes += data.nbytes
        self.total_pcie_ns += duration
        self.total_pcie_bytes += data.nbytes
        self._count_transfer("pcie", "d2h", data.nbytes, duration)
        return data, event

    # -- synchronization commands -------------------------------------------

    def enqueue_marker(self, event_wait_list: Optional[Sequence[Event]] = None) -> Event:
        """A zero-duration event completing when its wait list does; with
        no wait list, when everything previously enqueued has (cf.
        ``clEnqueueMarkerWithWaitList``).  Markers (and barriers) carry
        an empty buffer access set: to the race detector they are pure
        ordering edges, never racing with anything themselves."""
        event = Event("marker", "marker")
        wait_for = event_wait_list
        if wait_for is None:
            wait_for = [tail for tail in self._engine_tail.values() if tail is not None]
        return self._submit(event, 0, wait_for)

    def enqueue_barrier(self, event_wait_list: Optional[Sequence[Event]] = None) -> Event:
        """Like a marker, but additionally gates every subsequently
        enqueued command of this queue (cf. ``clEnqueueBarrier``)."""
        event = self.enqueue_marker(event_wait_list)
        event.command_type = "barrier"
        event.name = "barrier"
        self._barrier = event
        return event

    # -- profiling accessors --------------------------------------------------

    def kernel_events(self) -> List[Event]:
        return [e for e in self.events if e.command_type == "ndrange_kernel"]

    def engine_events(self, engine: str) -> List[Event]:
        """Profiled events assigned to ``engine`` ('compute'/'transfer')."""
        return [e for e in self.events if e.engine == engine]

    def __repr__(self) -> str:
        pending = len(self._pending)
        return (
            f"<CommandQueue on {self.device.name} horizon={self._horizon}ns "
            f"pending={pending}>"
        )
