"""repro.ocl: a simulated OpenCL runtime.

Faithful in structure to OpenCL 1.x — platforms, devices, contexts,
in-order command queues with profiling events, untyped buffers, programs
built from (OpenCL-C) source, kernels launched over NDRanges — but
executing on simulated devices whose timing comes from an analytic
roofline model over counted operations and memory traffic
(:mod:`repro.ocl.timing`).

Quick example::

    from repro import ocl

    ctx = ocl.Context.create(ocl.TESLA_T10, num_devices=1)
    queue = ctx.queues[0]
    program = ctx.create_program(source).build()
    kernel = program.create_kernel("vec_add")
    kernel.set_args(buf_a, buf_b, buf_out, n)
    event = queue.enqueue_nd_range_kernel(kernel, (n,), (256,))
    print(event.duration_ms)
"""

from ..analysis.races import RaceDetector, RaceError, RaceWarning, SanitizeMode
from .buffer import Buffer
from .context import Context
from .device import Device, Platform
from .errors import (
    BuildError,
    InvalidKernelArgs,
    InvalidValue,
    InvalidWorkGroupSize,
    OclError,
    OutOfResources,
    SampledBufferRead,
)
from .event import Event, EventStatus, wait_for_events
from .executor import BACKENDS, DEFAULT_BACKEND, ExecutionResult, execute_ndrange, resolve_backend
from .kernel import Kernel
from .ndrange import NDRange
from .program import Program, build_cache_size, clear_build_cache
from .queue import CommandQueue
from .spec import (
    CPU_8CORE,
    CPU_16CORE,
    DEVICE_PRESETS,
    DeviceSpec,
    TESLA_FERMI_480,
    TESLA_T10,
    TEST_DEVICE,
    resolve_device_spec,
)
from .timing import kernel_time_ns, peer_transfer_time_ns, transfer_time_ns

__all__ = [
    "BACKENDS",
    "Buffer",
    "BuildError",
    "CPU_16CORE",
    "CPU_8CORE",
    "DEVICE_PRESETS",
    "DEFAULT_BACKEND",
    "CommandQueue",
    "Context",
    "Device",
    "DeviceSpec",
    "Event",
    "EventStatus",
    "ExecutionResult",
    "InvalidKernelArgs",
    "InvalidValue",
    "InvalidWorkGroupSize",
    "Kernel",
    "NDRange",
    "OclError",
    "OutOfResources",
    "Platform",
    "Program",
    "RaceDetector",
    "RaceError",
    "RaceWarning",
    "SampledBufferRead",
    "SanitizeMode",
    "TESLA_FERMI_480",
    "TESLA_T10",
    "TEST_DEVICE",
    "build_cache_size",
    "clear_build_cache",
    "execute_ndrange",
    "kernel_time_ns",
    "peer_transfer_time_ns",
    "resolve_backend",
    "resolve_device_spec",
    "transfer_time_ns",
    "wait_for_events",
]
