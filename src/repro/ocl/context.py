"""Contexts: a set of devices with their queues, buffers and programs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .buffer import Buffer
from .device import Device, Platform
from .errors import InvalidValue
from .program import Program
from .queue import CommandQueue
from .spec import DeviceSpec


class Context:
    def __init__(self, devices: Union[Platform, Sequence[Device]]):
        if isinstance(devices, Platform):
            self.devices: List[Device] = list(devices.devices)
        else:
            self.devices = list(devices)
        if not self.devices:
            raise InvalidValue("a context needs at least one device")
        self.queues: List[CommandQueue] = [CommandQueue(device) for device in self.devices]
        self._buffers: List[Buffer] = []

    @staticmethod
    def create(spec: DeviceSpec, num_devices: int = 1) -> "Context":
        return Context(Platform(spec, num_devices))

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def queue_for(self, device: Device) -> CommandQueue:
        for queue, candidate in zip(self.queues, self.devices):
            if candidate is device:
                return queue
        raise InvalidValue(f"device {device.name} is not part of this context")

    def create_buffer(self, nbytes: int, device: Optional[Device] = None, name: str = "") -> Buffer:
        target = device if device is not None else self.devices[0]
        buffer = Buffer(target, nbytes, name)
        self._buffers.append(buffer)
        return buffer

    def create_program(self, source: str, name: str = "<kernel>",
                       defines: Optional[Dict[str, str]] = None) -> Program:
        return Program(source, name, defines)

    # -- simulated wall-clock ---------------------------------------------

    def elapsed_ns(self) -> int:
        """Simulated wall-clock: resolves all pending commands; devices
        run concurrently, so the elapsed time is the maximum over all
        queue timelines."""
        return max(queue.time_ns for queue in self.queues)

    def reset_timelines(self) -> None:
        for queue in self.queues:
            queue.reset_timeline()

    def finish_all(self) -> int:
        """Resolve the whole command graph (cf. ``clFinish`` on every
        queue) and return the critical-path elapsed time: the latest
        completion timestamp over all devices' engines, with overlapped
        commands counted once."""
        for queue in self.queues:
            queue.flush()
        return max(queue.time_ns for queue in self.queues)

    def release(self) -> None:
        for buffer in self._buffers:
            buffer.release()
        self._buffers.clear()

    def __repr__(self) -> str:
        return f"<Context devices={[d.name for d in self.devices]}>"
