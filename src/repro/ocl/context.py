"""Contexts: a set of devices with their queues, buffers and programs."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..analysis.races import RaceDetector, SanitizeMode, resolve_sanitize_mode
from ..scope.metrics import MetricsRegistry
from .buffer import Buffer
from .device import Device, Platform
from .errors import InvalidValue
from .program import Program
from .queue import CommandQueue
from .spec import DeviceSpec


class Context:
    def __init__(self, devices: Union[Platform, Sequence[Device]],
                 detect_races=None, backend: Optional[str] = None):
        """``detect_races`` arms the SkelSan race detector on every queue
        of this context: ``"report"`` warns on unordered conflicting
        commands, ``"strict"`` raises :class:`repro.analysis.RaceError`
        at the racy enqueue.  ``None`` (the default) defers to the
        ``SKELCL_SANITIZE`` environment variable, so existing code is
        checked transparently when the switch is set.

        ``backend`` selects the NDRange execution backend for every
        queue: ``"vector"`` (lockstep numpy) or ``"interp"`` (per
        work-item).  ``None`` defers to ``SKELCL_BACKEND``, then to the
        default (``"vector"``).  Both backends are bit-exact and
        counter-exact for conforming kernels."""
        from .executor import resolve_backend

        self.backend = resolve_backend(backend)
        if isinstance(devices, Platform):
            self.devices: List[Device] = list(devices.devices)
        else:
            self.devices = list(devices)
        if not self.devices:
            raise InvalidValue("a context needs at least one device")
        self.queues: List[CommandQueue] = [CommandQueue(device) for device in self.devices]
        self._buffers: List[Buffer] = []
        # SkelScope metrics: one registry per context, shared by all
        # queues (commands counted at enqueue; timeline gauges derived
        # at snapshot time, once timestamps are resolved).
        self.metrics = MetricsRegistry()
        for queue in self.queues:
            queue._metrics = self.metrics
            queue._backend = self.backend
        mode = resolve_sanitize_mode(detect_races)
        self.race_detector: Optional[RaceDetector] = None
        if mode is not SanitizeMode.OFF:
            # One detector shared by all queues: the command graph spans
            # devices (cross-queue wait lists), so must the analysis.
            self.race_detector = RaceDetector(mode)
            for queue in self.queues:
                queue._sanitizer = self.race_detector

    @staticmethod
    def create(spec: Union[DeviceSpec, Sequence[DeviceSpec]], num_devices: int = 1,
               detect_races=None, backend: Optional[str] = None) -> "Context":
        """A context over ``num_devices`` copies of ``spec``, or — when
        ``spec`` is a sequence — one device per listed spec (a mixed
        CPU+GPU pool; ``num_devices`` is then ignored)."""
        return Context(Platform(spec, num_devices), detect_races=detect_races,
                       backend=backend)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def queue_for(self, device: Device) -> CommandQueue:
        for queue, candidate in zip(self.queues, self.devices):
            if candidate is device:
                return queue
        raise InvalidValue(f"device {device.name} is not part of this context")

    def create_buffer(self, nbytes: int, device: Optional[Device] = None, name: str = "") -> Buffer:
        target = device if device is not None else self.devices[0]
        buffer = Buffer(target, nbytes, name)
        self._buffers.append(buffer)
        return buffer

    def create_program(self, source: str, name: str = "<kernel>",
                       defines: Optional[Dict[str, str]] = None) -> Program:
        return Program(source, name, defines)

    # -- simulated wall-clock ---------------------------------------------

    def elapsed_ns(self) -> int:
        """Simulated wall-clock: resolves all pending commands; devices
        run concurrently, so the elapsed time is the maximum over all
        queue timelines."""
        return max(queue.time_ns for queue in self.queues)

    def reset_timelines(self) -> None:
        for queue in self.queues:
            queue.reset_timeline()
        # The metrics registry covers the same window as the timelines:
        # stale transfer/PCIe byte totals from a previous iteration
        # would silently accumulate into the next one's report.
        self.metrics.reset()
        if self.race_detector is not None:
            # Stale graph state would let pre-reset accesses race with
            # post-reset commands that legitimately reuse the buffers.
            self.race_detector.reset()

    def check_races(self):
        """The races recorded so far (empty when detection is off)."""
        if self.race_detector is None:
            return []
        return list(self.race_detector.races)

    def finish_all(self) -> int:
        """Resolve the whole command graph (cf. ``clFinish`` on every
        queue) and return the critical-path elapsed time: the latest
        completion timestamp over all devices' engines, with overlapped
        commands counted once."""
        for queue in self.queues:
            queue.flush()
        return max(queue.time_ns for queue in self.queues)

    # -- observability (SkelScope) ----------------------------------------

    def metrics_snapshot(self) -> dict:
        """Resolve the graph, derive the timeline gauges (engine
        busy/idle, occupancy, critical path, per-skeleton kernel time)
        and return the registry's JSON-serializable snapshot."""
        from ..scope.metrics import derive_timeline_metrics

        derive_timeline_metrics(self)
        return self.metrics.snapshot()

    def trace_events(self) -> list:
        """The Chrome trace-event list for the resolved command graph
        (see :mod:`repro.scope.trace`)."""
        from ..scope.trace import trace_events

        return trace_events(self)

    def export_trace(self, path: str) -> str:
        """Write the Perfetto-loadable Chrome trace JSON to ``path``."""
        from ..scope.trace import write_trace

        return write_trace(self, path)

    def render_timeline(self, width: int = 64) -> str:
        """ASCII per-device-engine timeline of the resolved graph."""
        from ..scope.timeline import render_timeline

        return render_timeline(self, width=width)

    def release(self) -> None:
        for buffer in self._buffers:
            buffer.release()
        self._buffers.clear()

    def __repr__(self) -> str:
        return f"<Context devices={[d.name for d in self.devices]}>"
