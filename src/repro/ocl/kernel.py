"""Kernel objects: argument marshaling for NDRange launches."""

from __future__ import annotations

from typing import List

from ..kernelc import ast
from ..kernelc.compiler import CompiledKernel
from ..kernelc.ctypes_ import PointerType, ScalarType, VectorType, convert_scalar
from ..kernelc.execmodel import ExecutionCounters
from ..kernelc.values import VecValue
from .buffer import Buffer
from .errors import InvalidKernelArgs
from .program import Program


class Kernel:
    """A launchable kernel: program + entry point + bound arguments."""

    def __init__(self, program: Program, compiled: CompiledKernel):
        self.program = program
        self.compiled = compiled
        self._args: List = [None] * len(compiled.definition.params)
        self._args_set: List[bool] = [False] * len(compiled.definition.params)

    @property
    def name(self) -> str:
        return self.compiled.name

    @property
    def num_args(self) -> int:
        return len(self._args)

    @property
    def params(self) -> List[ast.Param]:
        return self.compiled.definition.params

    def set_arg(self, index: int, value) -> None:
        if not 0 <= index < len(self._args):
            raise InvalidKernelArgs(
                f"kernel {self.name!r} has {len(self._args)} argument(s), index {index} is invalid"
            )
        self._args[index] = value
        self._args_set[index] = True

    def set_args(self, *values) -> "Kernel":
        if len(values) != len(self._args):
            raise InvalidKernelArgs(
                f"kernel {self.name!r} expects {len(self._args)} argument(s), got {len(values)}"
            )
        for index, value in enumerate(values):
            self.set_arg(index, value)
        return self

    def marshal_args(self, counters: ExecutionCounters, device) -> List:
        """Convert bound arguments to runtime values for execution."""
        if not all(self._args_set):
            missing = [
                param.name for param, is_set in zip(self.params, self._args_set) if not is_set
            ]
            raise InvalidKernelArgs(f"kernel {self.name!r}: unset argument(s) {missing}")
        runtime: List = []
        for param, value in zip(self.params, self._args):
            ctype = param.declared_type
            if isinstance(ctype, PointerType):
                if not isinstance(value, Buffer):
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} of kernel {self.name!r} needs a Buffer, "
                        f"got {type(value).__name__}"
                    )
                if value.device is not device:
                    raise InvalidKernelArgs(
                        f"buffer for argument {param.name!r} lives on {value.device.name}, "
                        f"but the kernel launches on {device.name}"
                    )
                pointer = value.pointer(ctype.pointee, counters.memory)
                pointer.address_space = ctype.address_space if ctype.address_space != "private" else "global"
                runtime.append(pointer)
            elif isinstance(ctype, VectorType):
                if isinstance(value, VecValue):
                    runtime.append(VecValue(ctype.element, value.components))
                elif isinstance(value, (list, tuple)):
                    runtime.append(VecValue(ctype.element, list(value)))
                else:
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} needs a vector value, got {type(value).__name__}"
                    )
            elif isinstance(ctype, ScalarType):
                if isinstance(value, Buffer):
                    raise InvalidKernelArgs(
                        f"argument {param.name!r} of kernel {self.name!r} is scalar, got a Buffer"
                    )
                runtime.append(convert_scalar(value, ctype))
            else:  # pragma: no cover
                raise InvalidKernelArgs(f"unsupported parameter type {ctype}")
        return runtime

    def __call__(self, *args) -> "Kernel":
        """Bind arguments fluently: ``kernel(a, b, n)``."""
        return self.set_args(*args)

    def __repr__(self) -> str:
        return f"<Kernel {self.name!r} of {self.program.name!r}>"
