"""Analytic device timing model.

Kernel time follows a roofline-style model over the statistics counted
during (simulated) execution:

``time = launch_overhead + max(compute_time, global_memory_time) + local_memory_time``

* ``compute_time``  — executed operations over peak throughput
  (``PEs × clock × ipc × efficiency``), corrected for partially filled
  work-groups (a 16-wide group on a 32-wide SIMD wastes half the lanes).
* ``global_memory_time`` — a bandwidth term (bytes over peak bandwidth)
  plus a latency term: each access pays ``latency / latency_hiding``,
  which is what makes many small uncoalesced accesses (the AMD Sobel
  kernel) slower than staging through local memory (NVIDIA/SkelCL).
* ``local_memory_time`` — local traffic over local bandwidth.

Host↔device transfers pay PCIe latency plus bytes over PCIe bandwidth.

All results are in integer nanoseconds so event timestamps are exact and
reproducible.
"""

from __future__ import annotations

from ..kernelc.execmodel import ExecutionCounters
from .spec import DeviceSpec


def compute_time_ns(spec: DeviceSpec, ops: int, simd_utilization: float = 1.0) -> float:
    ops_per_ns = spec.processing_elements * spec.clock_ghz * spec.ipc * spec.efficiency
    utilization = max(min(simd_utilization, 1.0), 1e-3)
    return ops / (ops_per_ns * utilization)


def global_memory_time_ns(spec: DeviceSpec, accesses: int, nbytes: int) -> float:
    bandwidth_bytes_per_ns = spec.global_bandwidth_gbs  # GB/s == bytes/ns
    bandwidth_term = nbytes / bandwidth_bytes_per_ns
    latency_term = accesses * spec.global_latency_ns / spec.latency_hiding
    return bandwidth_term + latency_term


def local_memory_time_ns(spec: DeviceSpec, nbytes: int) -> float:
    return nbytes / spec.local_bandwidth_gbs


def kernel_time_ns(
    spec: DeviceSpec,
    counters: ExecutionCounters,
    simd_utilization: float = 1.0,
) -> int:
    """Simulated duration of one kernel execution.

    When the executor provides divergence-adjusted ``warp_ops`` they are
    used directly (they already include partial-warp and divergence
    effects); otherwise raw ops are corrected by ``simd_utilization``.
    """
    if counters.warp_ops > 0:
        compute = compute_time_ns(spec, counters.warp_ops, 1.0)
    else:
        compute = compute_time_ns(spec, counters.ops, simd_utilization)
    global_mem = global_memory_time_ns(
        spec,
        counters.memory.global_loads + counters.memory.global_stores,
        counters.memory.global_bytes,
    )
    local_mem = local_memory_time_ns(spec, counters.memory.local_bytes)
    overhead = spec.launch_overhead_us * 1000.0
    return int(overhead + max(compute, global_mem) + local_mem)


def transfer_time_ns(spec: DeviceSpec, nbytes: int) -> int:
    """Simulated duration of a host↔device copy of ``nbytes``."""
    if nbytes <= 0:
        return int(spec.pcie_latency_us * 1000.0)
    return int(spec.pcie_latency_us * 1000.0 + nbytes / spec.pcie_bandwidth_gbs)


def peer_transfer_time_ns(spec: DeviceSpec, nbytes: int) -> int:
    """Device→device copy; OpenCL 1.x stages through the host (2 hops)."""
    return 2 * transfer_time_ns(spec, nbytes)


def simd_utilization(local_size: int, simd_width: int = 32) -> float:
    """Fraction of SIMD lanes a work-group of ``local_size`` items fills."""
    if local_size <= 0:
        return 1.0
    full_warps, remainder = divmod(local_size, simd_width)
    lanes = full_warps * simd_width + remainder
    warps = full_warps + (1 if remainder else 0)
    return lanes / (warps * simd_width)
