"""Error types of the simulated OpenCL runtime, mirroring CL error codes."""

from __future__ import annotations


class OclError(Exception):
    """Base class for all simulated-OpenCL errors."""


class BuildError(OclError):
    """Program compilation failed; carries the build log."""

    def __init__(self, log: str):
        self.log = log
        super().__init__(f"program build failed:\n{log}")


class InvalidKernelArgs(OclError):
    pass


class InvalidWorkGroupSize(OclError):
    pass


class OutOfResources(OclError):
    pass


class InvalidValue(OclError):
    pass
