"""Error types of the simulated OpenCL runtime, mirroring CL error codes."""

from __future__ import annotations


class OclError(Exception):
    """Base class for all simulated-OpenCL errors."""


class BuildError(OclError):
    """Program compilation failed; carries the build log."""

    def __init__(self, log: str):
        self.log = log
        super().__init__(f"program build failed:\n{log}")


class InvalidKernelArgs(OclError):
    pass


class InvalidWorkGroupSize(OclError):
    pass


class OutOfResources(OclError):
    pass


class InvalidValue(OclError):
    pass


class SampledBufferRead(OclError):
    """A host read-back of a buffer whose contents came from *sampled*
    kernel execution.  Sampling runs only a subset of work-groups (for
    timing), leaving outputs partially written — such buffers must never
    feed correctness paths, so reading them back is an error until they
    are fully rewritten."""
