"""Simulated device specifications.

A :class:`DeviceSpec` is pure data; the analytic timing model in
:mod:`repro.ocl.timing` turns executed-kernel statistics into simulated
nanoseconds using these parameters.

The two presets model the hardware of the paper's evaluation:

* ``TESLA_T10`` — one GPU of the NVIDIA Tesla S1070 used in §4.1
  (240 streaming processor cores @ 1.44 GHz, 4 GB, 102 GB/s).
* ``TESLA_FERMI_480`` — the "NVIDIA Tesla GPU with 480 processing
  elements and 4 GByte memory" used for the Sobel experiment in §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    name: str
    vendor: str = "Simulated"
    # Compute.
    processing_elements: int = 240
    clock_ghz: float = 1.44
    # ops-per-clock per PE after pipeline effects; the `efficiency` knob
    # models toolchain quality (the paper's CUDA-vs-OpenCL gap, ref [9]).
    ipc: float = 1.0
    efficiency: float = 1.0
    # Global memory.
    global_mem_bytes: int = 4 << 30
    global_bandwidth_gbs: float = 102.0
    global_latency_ns: float = 400.0
    # How many global transactions the device keeps in flight to hide
    # latency (warps × memory pipelines × coalescing).  The effective
    # per-access cost is latency/hiding; ~0.06-0.1 ns/access reproduces
    # measured GPU throughput for mixed access patterns.
    latency_hiding: float = 4000.0
    # Local (shared) memory.
    local_mem_bytes: int = 16 << 10
    local_bandwidth_gbs: float = 1000.0
    # Host link (PCIe).
    pcie_bandwidth_gbs: float = 5.5
    pcie_latency_us: float = 10.0
    # Launch overhead per kernel invocation.
    launch_overhead_us: float = 7.0
    # Limits.
    max_work_group_size: int = 512
    max_work_item_dims: int = 3

    def with_(self, **changes) -> "DeviceSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **changes)


TESLA_T10 = DeviceSpec(
    name="Tesla T10 (simulated)",
    vendor="NVIDIA (simulated)",
    processing_elements=240,
    clock_ghz=1.44,
    global_mem_bytes=4 << 30,
    global_bandwidth_gbs=102.0,
    global_latency_ns=400.0,
    latency_hiding=5000.0,
    local_mem_bytes=16 << 10,
    max_work_group_size=512,
)

TESLA_FERMI_480 = DeviceSpec(
    name="Tesla C2050-class, 480 PEs (simulated)",
    vendor="NVIDIA (simulated)",
    processing_elements=480,
    clock_ghz=1.40,
    global_mem_bytes=4 << 30,
    global_bandwidth_gbs=144.0,
    global_latency_ns=350.0,
    latency_hiding=5600.0,
    local_mem_bytes=48 << 10,
    max_work_group_size=1024,
)

# A deliberately small spec for fast unit tests.
TEST_DEVICE = DeviceSpec(
    name="Test device",
    processing_elements=32,
    clock_ghz=1.0,
    global_mem_bytes=64 << 20,
    global_bandwidth_gbs=16.0,
    latency_hiding=1000.0,
    local_mem_bytes=16 << 10,
    max_work_group_size=256,
)
