"""Simulated device specifications.

A :class:`DeviceSpec` is pure data; the analytic timing model in
:mod:`repro.ocl.timing` turns executed-kernel statistics into simulated
nanoseconds using these parameters.

The GPU presets model the hardware of the paper's evaluation:

* ``TESLA_T10`` — one GPU of the NVIDIA Tesla S1070 used in §4.1
  (240 streaming processor cores @ 1.44 GHz, 4 GB, 102 GB/s).
* ``TESLA_FERMI_480`` — the "NVIDIA Tesla GPU with 480 processing
  elements and 4 GByte memory" used for the Sobel experiment in §4.2.

The CPU presets (``CPU_8CORE``, ``CPU_16CORE``) model an OpenCL CPU
driver on a host processor, so heterogeneous CPU+GPU pools are
expressible — few wide cores, low launch overhead, host-memory-class
bandwidth, and far less latency hiding than a GPU.  ``DEVICE_PRESETS``
names every preset so runtimes and CLIs can accept spec mixes like
``["tesla", "cpu-8core"]`` (see :func:`resolve_device_spec`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Union


@dataclass(frozen=True)
class DeviceSpec:
    name: str
    vendor: str = "Simulated"
    # Compute.
    processing_elements: int = 240
    clock_ghz: float = 1.44
    # ops-per-clock per PE after pipeline effects; the `efficiency` knob
    # models toolchain quality (the paper's CUDA-vs-OpenCL gap, ref [9]).
    ipc: float = 1.0
    efficiency: float = 1.0
    # Global memory.
    global_mem_bytes: int = 4 << 30
    global_bandwidth_gbs: float = 102.0
    global_latency_ns: float = 400.0
    # How many global transactions the device keeps in flight to hide
    # latency (warps × memory pipelines × coalescing).  The effective
    # per-access cost is latency/hiding; ~0.06-0.1 ns/access reproduces
    # measured GPU throughput for mixed access patterns.
    latency_hiding: float = 4000.0
    # Local (shared) memory.
    local_mem_bytes: int = 16 << 10
    local_bandwidth_gbs: float = 1000.0
    # Host link (PCIe).
    pcie_bandwidth_gbs: float = 5.5
    pcie_latency_us: float = 10.0
    # Launch overhead per kernel invocation.
    launch_overhead_us: float = 7.0
    # Limits.
    max_work_group_size: int = 512
    max_work_item_dims: int = 3

    def with_(self, **changes) -> "DeviceSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **changes)


TESLA_T10 = DeviceSpec(
    name="Tesla T10 (simulated)",
    vendor="NVIDIA (simulated)",
    processing_elements=240,
    clock_ghz=1.44,
    global_mem_bytes=4 << 30,
    global_bandwidth_gbs=102.0,
    global_latency_ns=400.0,
    latency_hiding=5000.0,
    local_mem_bytes=16 << 10,
    max_work_group_size=512,
)

TESLA_FERMI_480 = DeviceSpec(
    name="Tesla C2050-class, 480 PEs (simulated)",
    vendor="NVIDIA (simulated)",
    processing_elements=480,
    clock_ghz=1.40,
    global_mem_bytes=4 << 30,
    global_bandwidth_gbs=144.0,
    global_latency_ns=350.0,
    latency_hiding=5600.0,
    local_mem_bytes=48 << 10,
    max_work_group_size=1024,
)

# An OpenCL CPU device: 8 wide out-of-order cores with 128-bit SIMD FMA
# pipes (ipc=4 ops/clock/core), host DDR bandwidth, and a thread-pool
# "launch" instead of a PCIe round trip.  Peak compute 8 × 2.7 × 4 =
# 86.4 ops/ns — exactly 4x below TESLA_T10's 345.6, the skew the
# heterogeneous-partitioning evaluation targets.
CPU_8CORE = DeviceSpec(
    name="8-core CPU (simulated)",
    vendor="Generic x86 (simulated)",
    processing_elements=8,
    clock_ghz=2.7,
    ipc=4.0,
    global_mem_bytes=32 << 30,
    global_bandwidth_gbs=25.0,
    global_latency_ns=90.0,
    latency_hiding=512.0,
    local_mem_bytes=256 << 10,
    local_bandwidth_gbs=400.0,
    pcie_bandwidth_gbs=12.0,
    pcie_latency_us=1.0,
    launch_overhead_us=2.0,
    max_work_group_size=1024,
)

CPU_16CORE = CPU_8CORE.with_(
    name="16-core CPU (simulated)",
    processing_elements=16,
    clock_ghz=3.0,
    global_mem_bytes=64 << 30,
    global_bandwidth_gbs=50.0,
    local_mem_bytes=512 << 10,
)

# A deliberately small spec for fast unit tests.
TEST_DEVICE = DeviceSpec(
    name="Test device",
    processing_elements=32,
    clock_ghz=1.0,
    global_mem_bytes=64 << 20,
    global_bandwidth_gbs=16.0,
    latency_hiding=1000.0,
    local_mem_bytes=16 << 10,
    max_work_group_size=256,
)

#: Named presets accepted wherever a device spec is expected
#: (``skelcl.init(devices=["tesla", "cpu-8core"])``, the
#: ``python -m repro.scope --devices`` flag, ...).
DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    "tesla": TESLA_T10,
    "tesla-t10": TESLA_T10,
    "fermi": TESLA_FERMI_480,
    "tesla-fermi": TESLA_FERMI_480,
    "cpu-8core": CPU_8CORE,
    "cpu-16core": CPU_16CORE,
    "test": TEST_DEVICE,
}


def resolve_device_spec(spec: Union[str, DeviceSpec]) -> DeviceSpec:
    """A :class:`DeviceSpec` from a preset name (case-insensitive) or a
    spec instance (passed through unchanged)."""
    if isinstance(spec, DeviceSpec):
        return spec
    if isinstance(spec, str):
        preset = DEVICE_PRESETS.get(spec.strip().lower())
        if preset is not None:
            return preset
        raise ValueError(
            f"unknown device preset {spec!r}; known presets: "
            + ", ".join(sorted(DEVICE_PRESETS))
        )
    raise TypeError(f"expected a DeviceSpec or preset name, got {type(spec).__name__}")
