"""Text renderers for the experiment tables and figures.

The benchmark harness prints the same rows/series the paper reports:
:func:`render_table` for aligned tables and :func:`render_bars` for
ASCII bar charts standing in for Fig. 4 / Fig. 5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.ljust(width) for part, width in zip(parts, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    for row in cells:
        out.append(line(row))
    return "\n".join(out)


def render_bars(values: Dict[str, float], unit: str = "", title: str = "",
                width: int = 50, reference: Optional[Dict[str, float]] = None) -> str:
    """Render a horizontal ASCII bar chart (one bar per labelled value).

    ``reference`` optionally annotates each bar with the paper's value.
    """
    out: List[str] = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out + ["(no data)"])
    peak = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    for label, value in values.items():
        bar = "#" * max(1, round(width * value / peak))
        suffix = f" {value:.3g} {unit}".rstrip()
        if reference and label in reference:
            suffix += f"   (paper: {reference[label]:.3g} {unit})".rstrip()
        out.append(f"{label.ljust(label_width)} |{bar}{suffix}")
    return "\n".join(out)


def format_speedups(times_ns: Dict[int, float]) -> str:
    """Render a device-count → time mapping as a speedup table."""
    if not times_ns:
        return "(no data)"
    base = times_ns.get(1, next(iter(times_ns.values())))
    rows = [
        (devices, f"{time / 1e6:.3f} ms", f"{base / time:.2f}x")
        for devices, time in sorted(times_ns.items())
    ]
    return render_table(["GPUs", "time", "speedup"], rows)
