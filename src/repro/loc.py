"""Lines-of-code accounting for the programming-effort comparison.

The paper's Fig. 4 and the §3.3/§4.2 discussions compare *lines of code*
between CUDA, OpenCL and SkelCL versions of the same program.  This
module implements the counting rule (non-blank lines, comments ignored —
both full-line and trailing block/line comments are stripped first) and
loads the reference sources shipped in
``repro/baselines/reference_sources/``.

Each reference source marks its kernel portion with
``// LOC: kernel begin`` / ``// LOC: kernel end`` guards so the
kernel/host split of Fig. 4 can be reported; guard lines themselves are
never counted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict

REFERENCE_DIR = Path(__file__).parent / "baselines" / "reference_sources"

_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT = re.compile(r"//[^\n]*")
_KERNEL_BEGIN = "LOC: kernel begin"
_KERNEL_END = "LOC: kernel end"


@dataclass(frozen=True)
class LocCount:
    total: int
    kernel: int
    host: int

    def __str__(self) -> str:
        return f"{self.total} LoC (kernel: {self.kernel}, host: {self.host})"


def strip_comments(source: str) -> str:
    """Remove block and line comments, preserving line structure."""
    def blank_block(match: re.Match) -> str:
        return "\n" * match.group(0).count("\n")

    without_blocks = _BLOCK_COMMENT.sub(blank_block, source)
    return _LINE_COMMENT.sub("", without_blocks)


def count_loc(source: str) -> LocCount:
    """Count non-blank, non-comment lines; split at the kernel guards."""
    kernel_lines = 0
    host_lines = 0
    in_kernel = False
    # Find guard line numbers BEFORE stripping comments (the guards are
    # comments themselves).
    guard_state = []
    state = False
    for line in source.split("\n"):
        if _KERNEL_BEGIN in line:
            state = True
            guard_state.append(None)  # guard line: not counted
            continue
        if _KERNEL_END in line:
            state = False
            guard_state.append(None)
            continue
        guard_state.append(state)

    stripped = strip_comments(source).split("\n")
    for flag, line in zip(guard_state, stripped):
        if flag is None or not line.strip():
            continue
        if flag:
            kernel_lines += 1
        else:
            host_lines += 1
    return LocCount(kernel_lines + host_lines, kernel_lines, host_lines)


def count_file(path: Path) -> LocCount:
    return count_loc(Path(path).read_text())


def count_reference(name: str) -> LocCount:
    """Count a source from the reference_sources directory."""
    path = REFERENCE_DIR / name
    if not path.exists():
        raise FileNotFoundError(f"no reference source named {name!r} in {REFERENCE_DIR}")
    return count_file(path)


def reference_sources() -> Dict[str, Path]:
    return {p.name: p for p in sorted(REFERENCE_DIR.iterdir()) if p.is_file()}


def combined(*counts: LocCount) -> LocCount:
    return LocCount(
        sum(c.total for c in counts),
        sum(c.kernel for c in counts),
        sum(c.host for c in counts),
    )
