"""Unified SkelCL configuration: one precedence chain for every switch.

Historically each subsystem read its own ``SKELCL_*`` environment
variable at its own call site; nine switches accumulated across five
packages.  This module consolidates them behind a frozen
:class:`Settings` dataclass and a single precedence chain, evaluated
lazily at every resolution point::

    explicit kwarg  >  skelcl.configure(...)  >  SKELCL_* env  >  default

``skelcl.configure(...)`` records process-wide overrides (the second
link of the chain); the environment variables keep working unchanged
for code and CI that already sets them.  ``Session.settings`` exposes
the values a session actually resolved, with its constructor kwargs
applied as the first link.

The nine settings and their environment spellings:

========== ===================== ==============================================
field      environment variable  meaning
========== ===================== ==============================================
backend    ``SKELCL_BACKEND``    NDRange execution backend (``vector``/``interp``)
cache      ``SKELCL_CACHE``      persistent compiled-program cache on/off
cache_dir  ``SKELCL_CACHE_DIR``  program-cache location (default ``<dir>/programs``)
dir        ``SKELCL_DIR``        base directory for on-disk SkelCL artifacts
lazy       ``SKELCL_LAZY``       lazy skeleton planner (fusion) on/off
metrics    ``SKELCL_METRICS``    metrics-snapshot path written at session exit
partition  ``SKELCL_PARTITION``  Block/Overlap split policy over the device pool
sanitize   ``SKELCL_SANITIZE``   SkelSan race detection (``off``/``report``/``strict``)
trace      ``SKELCL_TRACE``      Chrome-trace path written at session exit
========== ===================== ==============================================

This module is deliberately dependency-free (it imports nothing from
``repro``), so every layer — ``ocl``, ``kernelc``, ``analysis``,
``skelcl``, ``scope`` — can resolve through it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Dict, Optional

_TRUE_VALUES = ("1", "on", "true", "yes")
_FALSE_VALUES = ("off", "0", "no", "false", "disabled")

#: Canonical sanitize modes and the accepted aliases (mirrors
#: ``repro.analysis.races`` so the chain normalizes identically).
_SANITIZE_ALIASES = {
    "": "off", "0": "off", "off": "off", "none": "off", "false": "off",
    "report": "report", "warn": "report",
    "1": "strict", "on": "strict", "error": "strict", "true": "strict",
    "strict": "strict",
}

_BACKENDS = ("vector", "interp")

#: Partition policy names accepted as strings (objects — ``Partition``,
#: ``AdaptivePartitioner`` — pass through the chain untouched).
PARTITION_POLICIES = ("even", "throughput", "proportional", "adaptive")


@dataclass(frozen=True)
class Settings:
    """The resolved SkelCL configuration (one value per switch)."""

    backend: str = "vector"
    cache: bool = True
    cache_dir: Optional[str] = None
    dir: str = os.path.join("~", ".cache", "skelcl")
    lazy: bool = False
    metrics: Optional[str] = None
    partition: object = None
    sanitize: str = "off"
    trace: Optional[str] = None

    @property
    def env(self) -> Dict[str, str]:
        """The equivalent ``SKELCL_*`` environment mapping (unset
        switches omitted) — handy for spawning worker processes."""
        mapping = {}
        for name, var in _ENV_VARS.items():
            value = getattr(self, name)
            default = _DEFAULTS[name]
            if value == default or not isinstance(value, (str, bool, int)):
                continue
            mapping[var] = "1" if value is True else str(value)
        return mapping


_ENV_VARS = {
    "backend": "SKELCL_BACKEND",
    "cache": "SKELCL_CACHE",
    "cache_dir": "SKELCL_CACHE_DIR",
    "dir": "SKELCL_DIR",
    "lazy": "SKELCL_LAZY",
    "metrics": "SKELCL_METRICS",
    "partition": "SKELCL_PARTITION",
    "sanitize": "SKELCL_SANITIZE",
    "trace": "SKELCL_TRACE",
}

_DEFAULTS = {f.name: f.default for f in fields(Settings)}

#: Process-wide overrides installed by :func:`configure`.
_configured: Dict[str, object] = {}


def _parse_bool(name: str, value) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in _TRUE_VALUES:
        return True
    if text in _FALSE_VALUES or text == "":
        return False
    raise ValueError(
        f"{name}={value!r} is not a boolean switch (use on/off, 1/0, true/false)"
    )


def _normalize(name: str, value, *, from_env: bool = False):
    """Validate and canonicalize one setting value."""
    if name == "backend":
        backend = str(value).strip().lower()
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown execution backend {value!r} "
                f"(choose from {', '.join(_BACKENDS)})"
            )
        return backend
    if name in ("cache", "lazy"):
        if from_env and not str(value).strip():
            return _DEFAULTS[name]
        return _parse_bool(name, value)
    if name == "sanitize":
        if isinstance(value, bool):
            return "strict" if value else "off"
        text = str(getattr(value, "value", value)).strip().lower()
        mode = _SANITIZE_ALIASES.get(text)
        if mode is None:
            raise ValueError(
                f"sanitize={value!r} is not a sanitize mode (off/report/strict)"
            )
        return mode
    if name == "partition":
        if isinstance(value, str):
            policy = value.strip().lower()
            if from_env and not policy:
                return None
            if policy not in PARTITION_POLICIES:
                raise ValueError(
                    f"unknown partition policy {value!r} "
                    f"(choose from {', '.join(PARTITION_POLICIES)}, or pass a "
                    "Partition / AdaptivePartitioner)"
                )
            return policy
        return value  # Partition / AdaptivePartitioner objects pass through
    if name in ("cache_dir", "dir", "metrics", "trace"):
        text = str(value)
        if from_env and not text:
            return None if name in ("cache_dir", "metrics", "trace") else _DEFAULTS[name]
        return text
    raise AssertionError(f"unknown setting {name!r}")


def get(name: str, explicit=None):
    """Resolve one setting through the precedence chain.

    ``explicit`` is the caller's kwarg (``None`` means "not given" —
    every switch treats ``None`` as deferral, matching the historic
    per-subsystem behaviour)."""
    if name not in _DEFAULTS:
        raise KeyError(f"unknown SkelCL setting {name!r}")
    if explicit is not None:
        return _normalize(name, explicit)
    if name in _configured:
        return _configured[name]
    raw = os.environ.get(_ENV_VARS[name])
    if raw is not None:
        return _normalize(name, raw, from_env=True)
    return _DEFAULTS[name]


def current() -> Settings:
    """The process-wide resolved :class:`Settings` (no explicit kwargs)."""
    return Settings(**{name: get(name) for name in _DEFAULTS})


def resolve(**explicit) -> Settings:
    """A :class:`Settings` with ``explicit`` kwargs applied as the first
    link of the chain (``None`` values defer down-chain)."""
    unknown = set(explicit) - set(_DEFAULTS)
    if unknown:
        raise TypeError(
            f"unknown setting(s) {', '.join(sorted(unknown))}; valid settings: "
            + ", ".join(sorted(_DEFAULTS))
        )
    return Settings(
        **{name: get(name, explicit.get(name)) for name in _DEFAULTS}
    )


def configure(reset: bool = False, **overrides) -> Settings:
    """Install process-wide configuration overrides.

    Keyword arguments name :class:`Settings` fields; each value is
    validated and canonicalized immediately.  ``configure()`` with no
    arguments just returns the currently resolved :class:`Settings`;
    ``configure(reset=True)`` drops all previous overrides first (then
    applies any accompanying kwargs).  Environment variables below the
    overrides in the chain keep working; an explicit kwarg at a call
    site (``skelcl.init(backend=...)``) still beats both.
    """
    if reset:
        _configured.clear()
    unknown = set(overrides) - set(_DEFAULTS)
    if unknown:
        raise TypeError(
            f"configure() got unknown setting(s) {', '.join(sorted(unknown))}; "
            "valid settings: " + ", ".join(sorted(_DEFAULTS))
        )
    for name, value in overrides.items():
        if value is None:
            _configured.pop(name, None)  # None clears one override
        else:
            _configured[name] = _normalize(name, value)
    return current()


#: Public alias: ``skelcl.current_settings()`` reads more naturally than
#: ``settings.current()`` at the package surface.
current_settings = current


def cache_directory() -> str:
    """The resolved program-cache directory: ``cache_dir`` when set,
    else ``<dir>/programs`` (the historic ``~/.cache/skelcl/programs``
    when ``dir`` is at its default)."""
    settings = current()
    if settings.cache_dir:
        return os.path.expanduser(settings.cache_dir)
    return os.path.join(os.path.expanduser(settings.dir), "programs")
