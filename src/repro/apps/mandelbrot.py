"""Mandelbrot set computation with SkelCL (§4.1).

The paper passes "a Vector of complex numbers, each of which represents
a pixel of the Mandelbrot fractal" to the Map skeleton.  We map over an
:class:`IndexVector` (one entry per pixel, occupying no memory — the
way the real SkelCL implements this) and derive the complex coordinate
inside the customizing function from the view parameters, which are
passed as SkelCL *additional arguments*.  ``use_index_vector=False``
falls back to a materialized index vector (costing one extra upload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..skelcl import IndexVector, Map, Vector

# The customizing function: one pixel of the escape-time fractal.
MANDELBROT_FUNC = """
uchar func(int idx, int width, float x_min, float y_min,
           float dx, float dy, int max_iter) {
    int px = idx % width;
    int py = idx / width;
    float c_re = x_min + px * dx;
    float c_im = y_min + py * dy;
    float z_re = 0.0f;
    float z_im = 0.0f;
    int iter = 0;
    while (z_re * z_re + z_im * z_im <= 4.0f && iter < max_iter) {
        float t = z_re * z_re - z_im * z_im + c_re;
        z_im = 2.0f * z_re * z_im + c_im;
        z_re = t;
        ++iter;
    }
    return (uchar)(iter % 256);
}
"""


@dataclass(frozen=True)
class MandelbrotView:
    """The region of the complex plane to render."""

    x_min: float = -2.5
    x_max: float = 1.0
    y_min: float = -1.25
    y_max: float = 1.25


class Mandelbrot:
    """SkelCL Mandelbrot renderer (a customized Map skeleton)."""

    def __init__(self, max_iterations: int = 100, work_group_size: int = 256,
                 use_index_vector: bool = True):
        # SkelCL's default work-group size of 256 (the paper, §4.1).
        self.max_iterations = max_iterations
        self.use_index_vector = use_index_vector
        self.map = Map(MANDELBROT_FUNC, work_group_size=work_group_size)

    def render(
        self,
        width: int,
        height: int,
        view: MandelbrotView = MandelbrotView(),
        sample_fraction: Optional[float] = None,
    ) -> Vector:
        """Render ``width``×``height`` pixels; returns the uchar Vector.

        ``sample_fraction`` enables sampled execution for timing runs.
        The result vector's device buffers are then tainted as partial:
        reading them back to the host (``to_numpy()``) raises
        :class:`repro.ocl.SampledBufferRead`, so a sampled render can
        only be used for its timing events, never its pixels.
        """
        if self.use_index_vector:
            indices = IndexVector(width * height)
        else:
            indices = Vector(data=np.arange(width * height, dtype=np.int32))
        dx = (view.x_max - view.x_min) / width
        dy = (view.y_max - view.y_min) / height
        return self.map(
            indices,
            width,
            view.x_min,
            view.y_min,
            dx,
            dy,
            self.max_iterations,
            sample_fraction=sample_fraction,
        )

    def render_image(self, width: int, height: int, view: MandelbrotView = MandelbrotView()) -> np.ndarray:
        """Render and return a (height, width) uint8 numpy image."""
        return self.render(width, height, view).to_numpy().reshape(height, width)

    @property
    def last_events(self):
        return self.map.last_events

    @property
    def last_kernel_time_ns(self) -> int:
        return self.map.last_kernel_time_ns


def mandelbrot_reference(width: int, height: int, max_iterations: int,
                         view: MandelbrotView = MandelbrotView()) -> np.ndarray:
    """Vectorized numpy oracle (float32, matching the kernel) for tests."""
    xs = np.float32(view.x_min) + np.arange(width, dtype=np.float32) * np.float32(
        (view.x_max - view.x_min) / width
    )
    ys = np.float32(view.y_min) + np.arange(height, dtype=np.float32) * np.float32(
        (view.y_max - view.y_min) / height
    )
    c = xs[None, :] + 1j * ys[:, None]
    z = np.zeros_like(c)
    counts = np.zeros(c.shape, dtype=np.int32)
    active = np.ones(c.shape, dtype=bool)
    for _ in range(max_iterations):
        # One kernel loop iteration: the escape test runs on the current
        # z, then z updates and the count increments.
        z[active] = z[active] * z[active] + c[active]
        counts[active] += 1
        active &= np.abs(z) <= 2.0
    return (counts % 256).astype(np.uint8)
