"""repro.apps: the applications of the paper's evaluation (§4) plus the
motivating workloads of §3.5, implemented on the SkelCL public API."""
