"""Jacobi heat diffusion — an *iterative* stencil on MapOverlap.

The paper motivates MapOverlap with "many numerical ... applications
dealing with two-dimensional data" (§3.4); the canonical one is the
Jacobi iteration for the heat equation.  Each sweep is one MapOverlap
(4-neighbour average with NEAREST boundaries = insulated edges), and
the convergence check composes Zip (difference) with Reduce (max):
everything stays on the GPUs between iterations, with the container
coherence machinery moving halos implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..skelcl import BoundaryMode, MapOverlap, Matrix, Reduce, Zip

# One Jacobi sweep: u' = u + alpha * (laplacian average - u).  ALPHA is
# substituted into the source (MapOverlap's customizing function takes
# exactly one pointer parameter in the paper's API).
_JACOBI_TEMPLATE = """
float func(const float* u) {
    float neighbours = get(u, -1, 0) + get(u, 1, 0)
                     + get(u, 0, -1) + get(u, 0, 1);
    return get(u, 0, 0) + ALPHA * (0.25f * neighbours - get(u, 0, 0));
}
"""

_ABS_DIFF = "float func(float a, float b) { return fabs(a - b); }"
_MAX = "float func(float a, float b) { return a > b ? a : b; }"


@dataclass
class HeatResult:
    grid: np.ndarray
    iterations: int
    residual: float


class HeatDiffusion:
    """Jacobi iteration with insulated (NEAREST) boundaries."""

    def __init__(self, alpha: float = 1.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        source = _JACOBI_TEMPLATE.replace("ALPHA", repr(float(alpha)) + "f")
        self.sweep = MapOverlap(source, 1, BoundaryMode.NEAREST)
        self.difference = Zip(_ABS_DIFF)
        self.peak = Reduce(_MAX, identity="0.0f")

    def step(self, grid: Matrix) -> Matrix:
        """One Jacobi sweep (device-resident in, device-resident out)."""
        return self.sweep(grid)

    def residual(self, before: Matrix, after: Matrix) -> float:
        """max |after - before| via Zip + Reduce."""
        return self.peak(self.difference(after, before)).get_value()

    def run(self, initial: np.ndarray, max_iterations: int = 100,
            tolerance: float = 1e-4, check_every: int = 5) -> HeatResult:
        grid = Matrix(data=initial.astype(np.float32))
        residual = float("inf")
        iterations = 0
        while iterations < max_iterations:
            new_grid = self.step(grid)
            iterations += 1
            if iterations % check_every == 0 or iterations == max_iterations:
                residual = self.residual(grid, new_grid)
                grid = new_grid
                if residual < tolerance:
                    break
            else:
                grid = new_grid
        return HeatResult(grid.to_numpy(), iterations, residual)


def jacobi_reference(grid: np.ndarray, steps: int, alpha: float = 1.0) -> np.ndarray:
    """numpy oracle: the same sweep with edge-replicated boundaries."""
    u = grid.astype(np.float32).copy()
    for _ in range(steps):
        padded = np.pad(u, 1, mode="edge")
        neighbours = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
        )
        u = (u + np.float32(alpha) * (np.float32(0.25) * neighbours - u)).astype(np.float32)
    return u


def hot_spot_grid(size: int, temperature: float = 100.0) -> np.ndarray:
    """A cold plate with a hot square in the middle."""
    grid = np.zeros((size, size), dtype=np.float32)
    quarter = size // 4
    grid[quarter : 3 * quarter, quarter : 3 * quarter] = temperature
    return grid
