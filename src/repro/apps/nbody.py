"""Gravitational N-body simulation — the physics workload the paper
cites as motivation for the AllPairs skeleton (§3.5, its ref [3]:
"N-Body simulations used in physics").

The all-pairs structure is expressed with the skeletons themselves:

1. ``S = allpairs(kernel)(P, P)`` — the n×n interaction matrix with
   entries ``S[i,j] = m_j / (r_ij² + ε²)^{3/2}`` (softened gravity),
   computed by a raw AllPairs over the position rows;
2. accelerations reduce to matrix-vector products with S, which are
   themselves all-pairs computations:
   ``a_x = S·x − x ∘ (S·1)`` (and likewise for y, z), using the
   identity Σ_j S_ij (x_j − x_i) = (S·x)_i − x_i (S·1)_i;
3. the leapfrog integration step is a chain of Zip skeletons.

Positions are stored as an n×3 matrix (one row per body, matching the
paper's "an entity is usually described by a d-dimensional vector").
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..skelcl import AllPairs, Matrix, Vector, Zip

# S[i,j] = mass_j / (|p_i - p_j|^2 + eps^2)^(3/2); the row layout is
# [x, y, z, mass], so d == 4 and the mass rides along with the position.
_INTERACTION_FUNC = """
float func(const float* a, const float* b, int d) {
    float dx = b[0] - a[0];
    float dy = b[1] - a[1];
    float dz = b[2] - a[2];
    float dist_sq = dx * dx + dy * dy + dz * dz + {eps_sq}f;
    float inv = rsqrt(dist_sq);
    return b[3] * inv * inv * inv;
}
"""

# Matrix-vector product as an all-pairs row operation: the "vector" is a
# 1-row matrix, and each (row of S, the vector) pair folds to a dot
# product.
_DOT_FUNC = """
float func(const float* row, const float* vec, int d) {
    float sum = 0.0f;
    for (int k = 0; k < d; ++k) {
        sum += row[k] * vec[k];
    }
    return sum;
}
"""

_AXPY_FUNC = "float func(float x, float y, float a) { return x + a * y; }"


@dataclass
class NBodyState:
    positions: np.ndarray  # (n, 3) float32
    velocities: np.ndarray  # (n, 3) float32
    masses: np.ndarray  # (n,) float32


class NBodySimulation:
    """Softened gravitational N-body, integrated with leapfrog."""

    def __init__(self, state: NBodyState, softening: float = 0.05, g_constant: float = 1.0):
        self.state = NBodyState(
            state.positions.astype(np.float32).copy(),
            state.velocities.astype(np.float32).copy(),
            state.masses.astype(np.float32).copy(),
        )
        self.softening = float(softening)
        self.g_constant = float(g_constant)
        eps_sq = repr(self.softening * self.softening)
        self.interaction = AllPairs(source=_INTERACTION_FUNC.replace("{eps_sq}", eps_sq))
        self.matvec = AllPairs(source=_DOT_FUNC)
        self.axpy = Zip(_AXPY_FUNC)

    @property
    def num_bodies(self) -> int:
        return len(self.state.masses)

    # -- force evaluation ---------------------------------------------------

    def _interaction_matrix(self) -> Matrix:
        rows = np.concatenate(
            [self.state.positions, self.state.masses[:, None]], axis=1
        ).astype(np.float32)
        entities = Matrix(data=rows)
        return self.interaction(entities, entities)

    def accelerations(self) -> np.ndarray:
        """a_i = G * Σ_j m_j (p_j − p_i) / (r² + ε²)^{3/2} via skeletons."""
        s_matrix = self._interaction_matrix()
        ones = Matrix(data=np.ones((1, self.num_bodies), np.float32))
        row_sums = self.matvec(s_matrix, ones).to_numpy()[:, 0]

        acc = np.empty((self.num_bodies, 3), np.float32)
        for axis in range(3):
            component = np.ascontiguousarray(self.state.positions[:, axis]).astype(np.float32)
            weighted = self.matvec(s_matrix, Matrix(data=component[None, :])).to_numpy()[:, 0]
            acc[:, axis] = self.g_constant * (weighted - component * row_sums)
        return acc

    # -- integration ------------------------------------------------------------

    def step(self, dt: float) -> None:
        """One leapfrog (kick-drift-kick) step, advanced with Zip skeletons."""
        acc = self.accelerations()
        half = dt / 2.0
        for axis in range(3):
            vel = Vector(data=np.ascontiguousarray(self.state.velocities[:, axis]))
            kick = self.axpy(vel, Vector(data=np.ascontiguousarray(acc[:, axis])), half)
            self.state.velocities[:, axis] = kick.to_numpy()
        for axis in range(3):
            pos = Vector(data=np.ascontiguousarray(self.state.positions[:, axis]))
            drift = self.axpy(pos, Vector(data=np.ascontiguousarray(self.state.velocities[:, axis])), dt)
            self.state.positions[:, axis] = drift.to_numpy()
        acc = self.accelerations()
        for axis in range(3):
            vel = Vector(data=np.ascontiguousarray(self.state.velocities[:, axis]))
            kick = self.axpy(vel, Vector(data=np.ascontiguousarray(acc[:, axis])), half)
            self.state.velocities[:, axis] = kick.to_numpy()

    def run(self, steps: int, dt: float = 0.01) -> NBodyState:
        for _ in range(steps):
            self.step(dt)
        return self.state

    # -- diagnostics ----------------------------------------------------------------

    def total_energy(self) -> float:
        """Kinetic + (softened) potential energy, for drift checks."""
        velocities = self.state.velocities.astype(np.float64)
        masses = self.state.masses.astype(np.float64)
        kinetic = 0.5 * float(np.sum(masses * np.sum(velocities**2, axis=1)))
        positions = self.state.positions.astype(np.float64)
        delta = positions[:, None, :] - positions[None, :, :]
        dist = np.sqrt(np.sum(delta**2, axis=2) + self.softening**2)
        pair = masses[:, None] * masses[None, :] / dist
        np.fill_diagonal(pair, 0.0)
        potential = -0.5 * self.g_constant * float(pair.sum())
        return kinetic + potential


def accelerations_reference(state: NBodyState, softening: float, g_constant: float = 1.0) -> np.ndarray:
    """Vectorized numpy oracle for the skeleton-computed accelerations."""
    positions = state.positions.astype(np.float64)
    masses = state.masses.astype(np.float64)
    delta = positions[None, :, :] - positions[:, None, :]  # [i, j, axis]
    dist_sq = np.sum(delta**2, axis=2) + softening**2
    inv_cube = dist_sq ** (-1.5)
    weights = masses[None, :] * inv_cube
    return (g_constant * np.sum(weights[:, :, None] * delta, axis=1)).astype(np.float32)


def plummer_sphere(n: int, seed: int = 7) -> NBodyState:
    """A simple random cluster (deterministic) for tests and the example."""
    rng = np.random.RandomState(seed)
    positions = rng.normal(0.0, 1.0, (n, 3)).astype(np.float32)
    velocities = rng.normal(0.0, 0.1, (n, 3)).astype(np.float32)
    masses = (rng.rand(n).astype(np.float32) * 0.9 + 0.1) / n
    return NBodyState(positions, velocities, masses)
