"""Synthetic test images.

The paper uses the 512×512 "Lena" photograph for the Sobel experiment;
we cannot redistribute it, so :func:`synthetic_image` generates a
deterministic synthetic image of the same size and dtype with comparable
structure (smooth gradients, sharp edges from geometric shapes, and mild
noise) — Sobel's cost depends only on geometry/dtype, and its output is
visually checkable on the shapes' edges.
"""

from __future__ import annotations

import numpy as np


def synthetic_image(height: int = 512, width: int = 512, seed: int = 2013) -> np.ndarray:
    """A deterministic uchar image: gradient + shapes + light noise."""
    rng = np.random.RandomState(seed)
    ys, xs = np.mgrid[0:height, 0:width]

    # Smooth background gradient.
    image = 60.0 + 80.0 * (xs / max(width - 1, 1)) + 40.0 * (ys / max(height - 1, 1))

    # A bright rectangle and a dark disk provide strong edges.
    image[height // 8 : height // 3, width // 6 : width // 2] = 220.0
    cy, cx, radius = int(height * 0.65), int(width * 0.6), min(height, width) // 5
    disk = (ys - cy) ** 2 + (xs - cx) ** 2 <= radius**2
    image[disk] = 25.0

    # A diagonal stripe.
    stripe = np.abs((xs - ys) % max(width // 4, 1)) < max(width // 64, 1)
    image[stripe] = np.clip(image[stripe] + 60.0, 0, 255)

    image += rng.normal(0.0, 2.0, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8)


def checkerboard(height: int, width: int, tile: int = 8) -> np.ndarray:
    """A checkerboard pattern (useful for edge-detector tests)."""
    ys, xs = np.mgrid[0:height, 0:width]
    return (((ys // tile) + (xs // tile)) % 2 * 255).astype(np.uint8)


def sobel_reference(image: np.ndarray) -> np.ndarray:
    """Reference Sobel magnitude with zero (neutral) boundary handling,
    computed with numpy, matching the paper's kernels (uchar saturation
    is NOT applied; values wrap as the C char arithmetic does — use
    :func:`sobel_reference_uchar` for the stored result)."""
    img = image.astype(np.float64)
    padded = np.pad(img, 1)

    def shifted(di, dj):
        return padded[1 + di : 1 + di + img.shape[0], 1 + dj : 1 + dj + img.shape[1]]

    gx = (
        -1 * shifted(-1, -1) + 1 * shifted(-1, 1)
        - 2 * shifted(0, -1) + 2 * shifted(0, 1)
        - 1 * shifted(1, -1) + 1 * shifted(1, 1)
    )
    gy = (
        -1 * shifted(-1, -1) - 2 * shifted(-1, 0) - 1 * shifted(-1, 1)
        + 1 * shifted(1, -1) + 2 * shifted(1, 0) + 1 * shifted(1, 1)
    )
    return np.sqrt(gx * gx + gy * gy)


def sobel_reference_uchar(image: np.ndarray) -> np.ndarray:
    """The magnitude as stored through a uchar pointer (mod-256 wrap,
    truncation toward zero), matching the kernels in this repo."""
    magnitude = sobel_reference(image)
    return (magnitude.astype(np.int64) % 256).astype(np.uint8)
