"""Pairwise Manhattan distance via AllPairs — the bioinformatics
workload motivating §3.5 (ref [12] of the paper)."""

from __future__ import annotations

import numpy as np

from ..skelcl import AllPairs, Matrix

MANHATTAN_FUNC = """
float func(const float* a, const float* b, int d) {
    float sum = 0.0f;
    for (int k = 0; k < d; ++k) {
        sum += fabs(a[k] - b[k]);
    }
    return sum;
}
"""


class ManhattanDistance:
    """All pairwise L1 distances between the rows of two matrices."""

    def __init__(self):
        self.allpairs = AllPairs(source=MANHATTAN_FUNC)

    def __call__(self, a: Matrix, b: Matrix) -> Matrix:
        return self.allpairs(a, b)

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        result = self.allpairs(
            Matrix(data=a.astype(np.float32)), Matrix(data=b.astype(np.float32))
        )
        return result.to_numpy()


def manhattan_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ManhattanDistance().compute(a, b)
