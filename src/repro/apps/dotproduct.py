"""Dot product with SkelCL (Listing 1.1): ``C = sum( mult( A, B ) )``."""

from __future__ import annotations

import numpy as np

from ..skelcl import Reduce, Scalar, Vector, Zip


class DotProduct:
    """The paper's Listing 1.1, as a reusable object."""

    def __init__(self):
        self.sum = Reduce("float sum(float x, float y) { return x + y; }")
        self.mult = Zip("float mult(float x, float y) { return x * y; }")

    def __call__(self, a: Vector, b: Vector) -> Scalar:
        return self.sum(self.mult(a, b))

    def compute(self, a: np.ndarray, b: np.ndarray) -> float:
        result = self(Vector(data=a.astype(np.float32)), Vector(data=b.astype(np.float32)))
        return result.get_value()


def dot_product(a: np.ndarray, b: np.ndarray) -> float:
    """One-shot helper mirroring Listing 1.1's main()."""
    return DotProduct().compute(a, b)
