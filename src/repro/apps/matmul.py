"""Matrix multiplication via the AllPairs skeleton (§3.5, Example 1):

    A × B = allpairs(dotProduct)(A, Bᵀ)
"""

from __future__ import annotations

import numpy as np

from ..skelcl import AllPairs, Matrix, Reduce, Zip


class MatrixMultiplication:
    """``C = A × B`` expressed as allpairs(zip·reduce)(A, Bᵀ)."""

    def __init__(self):
        self.allpairs = AllPairs(
            Reduce("float add(float x, float y) { return x + y; }"),
            Zip("float mul(float x, float y) { return x * y; }"),
        )

    def __call__(self, a: Matrix, b_transposed: Matrix) -> Matrix:
        return self.allpairs(a, b_transposed)

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """numpy in/out; transposes ``b`` as the skeleton requires."""
        result = self.allpairs(
            Matrix(data=a.astype(np.float32)),
            Matrix(data=np.ascontiguousarray(b.T.astype(np.float32))),
        )
        return result.to_numpy()

    @property
    def last_events(self):
        return self.allpairs.last_events


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return MatrixMultiplication().compute(a, b)
