"""Gaussian blur via MapOverlap — a second stencil application of the
kind §3.4 motivates ("numerical and image processing applications")."""

from __future__ import annotations

import numpy as np

from ..skelcl import BoundaryMode, MapOverlap, Matrix

# 3x3 binomial kernel (1 2 1; 2 4 2; 1 2 1) / 16, NEAREST boundaries.
GAUSSIAN_FUNC = """
uchar func(const uchar* img) {
    int sum = 1 * get(img, -1, -1) + 2 * get(img, 0, -1) + 1 * get(img, +1, -1)
            + 2 * get(img, -1,  0) + 4 * get(img, 0,  0) + 2 * get(img, +1,  0)
            + 1 * get(img, -1, +1) + 2 * get(img, 0, +1) + 1 * get(img, +1, +1);
    return (uchar)(sum / 16);
}
"""


class GaussianBlur:
    def __init__(self):
        self.map_overlap = MapOverlap(GAUSSIAN_FUNC, 1, BoundaryMode.NEAREST)

    def __call__(self, image: Matrix) -> Matrix:
        return self.map_overlap(image)

    def blur(self, image: np.ndarray) -> np.ndarray:
        return self.map_overlap(Matrix(data=image.astype(np.uint8))).to_numpy()


def gaussian_reference(image: np.ndarray) -> np.ndarray:
    """numpy oracle with edge-replicated boundaries."""
    padded = np.pad(image.astype(np.int64), 1, mode="edge")
    weights = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]])
    h, w = image.shape
    out = np.zeros((h, w), dtype=np.int64)
    for di in range(3):
        for dj in range(3):
            out += weights[di, dj] * padded[di : di + h, dj : dj + w]
    return (out // 16).astype(np.uint8)
