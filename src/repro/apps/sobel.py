"""Sobel edge detection with SkelCL (§4.2, Listing 1.5).

The customizing function is the paper's listing verbatim (with the
omitted vertical gradient filled in): relative `get` accesses, no index
calculations, no manual boundary checks.
"""

from __future__ import annotations

import numpy as np

from ..skelcl import BoundaryMode, MapOverlap, Matrix

# Listing 1.5, completed: the paper elides the computation of `v`.
SOBEL_FUNC = """
uchar func(const uchar* img) {
    short h = -1*get(img,-1,-1) +1*get(img,+1,-1)
              -2*get(img,-1, 0) +2*get(img,+1, 0)
              -1*get(img,-1,+1) +1*get(img,+1,+1);
    short v = -1*get(img,-1,-1) -2*get(img, 0,-1) -1*get(img,+1,-1)
              +1*get(img,-1,+1) +2*get(img, 0,+1) +1*get(img,+1,+1);
    return (uchar)sqrt((float)(h*h + v*v));
}
"""


class SobelEdgeDetection:
    """The paper's Sobel application: a MapOverlap(d=1, NEUTRAL 0)."""

    def __init__(self):
        self.map_overlap = MapOverlap(SOBEL_FUNC, 1, BoundaryMode.NEUTRAL, 0)

    def __call__(self, image: Matrix) -> Matrix:
        return self.map_overlap(image)

    def detect(self, image: np.ndarray) -> np.ndarray:
        """Convenience: numpy uint8 image in, numpy uint8 edges out."""
        result = self.map_overlap(Matrix(data=image.astype(np.uint8)))
        return result.to_numpy()

    @property
    def last_events(self):
        return self.map_overlap.last_events

    @property
    def last_kernel_time_ns(self) -> int:
        return self.map_overlap.last_kernel_time_ns


def sobel_skelcl(image: np.ndarray) -> np.ndarray:
    """One-shot helper: run the SkelCL Sobel on a numpy image."""
    return SobelEdgeDetection().detect(image)
