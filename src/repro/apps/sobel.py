"""Sobel edge detection with SkelCL (§4.2, Listing 1.5).

The customizing function is the paper's listing verbatim (with the
omitted vertical gradient filled in): relative `get` accesses, no index
calculations, no manual boundary checks.
"""

from __future__ import annotations

import math

import numpy as np

from ..skelcl import READ, BoundaryMode, MapOverlap, Matrix, get, jit

# Listing 1.5, completed: the paper elides the computation of `v`.
SOBEL_FUNC = """
uchar func(const uchar* img) {
    short h = -1*get(img,-1,-1) +1*get(img,+1,-1)
              -2*get(img,-1, 0) +2*get(img,+1, 0)
              -1*get(img,-1,+1) +1*get(img,+1,+1);
    short v = -1*get(img,-1,-1) -2*get(img, 0,-1) -1*get(img,+1,-1)
              +1*get(img,-1,+1) +2*get(img, 0,+1) +1*get(img,+1,+1);
    return (uchar)sqrt((float)(h*h + v*v));
}
"""


# Listing 1.5 again, as a plain Python function: @skelcl.jit lowers it
# to the same relative-get stencil.  int() keeps the gradient
# arithmetic exact (Python ints), mirroring the C kernel's promotion
# of uchar operands to int; both stay far below any wrap, so the two
# spellings produce bit-identical edges.
@jit
def sobel_py(img: READ[np.uint8]) -> np.uint8:
    h = (-1 * int(get(img, -1, -1)) + 1 * int(get(img, 1, -1))
         - 2 * int(get(img, -1, 0)) + 2 * int(get(img, 1, 0))
         - 1 * int(get(img, -1, 1)) + 1 * int(get(img, 1, 1)))
    v = (-1 * int(get(img, -1, -1)) - 2 * int(get(img, 0, -1))
         - 1 * int(get(img, 1, -1)) + 1 * int(get(img, -1, 1))
         + 2 * int(get(img, 0, 1)) + 1 * int(get(img, 1, 1)))
    return math.sqrt(float(h * h + v * v))


class SobelEdgeDetection:
    """The paper's Sobel application: a MapOverlap(d=1, NEUTRAL 0).

    ``func`` picks the customizing function: the paper's OpenCL-C
    string (default) or the jitted :func:`sobel_py`.
    """

    def __init__(self, func=SOBEL_FUNC):
        self.map_overlap = MapOverlap(func, 1, BoundaryMode.NEUTRAL, 0)

    def __call__(self, image: Matrix) -> Matrix:
        return self.map_overlap(image)

    def detect(self, image: np.ndarray) -> np.ndarray:
        """Convenience: numpy uint8 image in, numpy uint8 edges out."""
        result = self.map_overlap(Matrix(data=image.astype(np.uint8)))
        return result.to_numpy()

    @property
    def last_events(self):
        return self.map_overlap.last_events

    @property
    def last_kernel_time_ns(self) -> int:
        return self.map_overlap.last_kernel_time_ns


def sobel_skelcl(image: np.ndarray) -> np.ndarray:
    """One-shot helper: run the SkelCL Sobel on a numpy image."""
    return SobelEdgeDetection().detect(image)
