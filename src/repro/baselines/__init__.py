"""repro.baselines: the CUDA- and OpenCL-level comparison implementations
used by the paper's evaluation (§4), plus the reference sources the
programming-effort (lines of code) comparison counts."""
