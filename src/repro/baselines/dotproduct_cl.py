"""NVIDIA-SDK-style OpenCL dot product (the §3.3 comparison point:
"an OpenCL-based implementation of the dot product computation provided
by NVIDIA requires approximately 68 lines of code").

Two-stage: an elementwise-multiply-and-tree-reduce kernel producing one
partial per work-group, then a host-side final sum — the structure of
the SDK's oclDotProduct sample.
"""

from __future__ import annotations

import numpy as np

from .. import ocl

DOT_PRODUCT_KERNEL = """
#define WG 256

__kernel void dot_product(__global const float* a,
                          __global const float* b,
                          __global float* partial,
                          const int n) {
    __local float scratch[WG];
    int gid = get_global_id(0);
    int lid = get_local_id(0);

    float acc = 0.0f;
    for (int i = gid; i < n; i += get_global_size(0)) {
        acc += a[i] * b[i];
    }
    scratch[lid] = acc;
    barrier(CLK_LOCAL_MEM_FENCE);

    for (int s = WG / 2; s > 0; s >>= 1) {
        if (lid < s) {
            scratch[lid] += scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = scratch[0];
    }
}
"""

_WG = 256


class DotProductOpenCL:
    """Verbose OpenCL host program for the dot product."""

    def __init__(self, context: ocl.Context, max_groups: int = 64):
        self.context = context
        self.queue = context.queues[0]
        self.max_groups = max_groups
        self.program = ocl.Program(DOT_PRODUCT_KERNEL, "dot_product_cl").build()

    def run(self, a: np.ndarray, b: np.ndarray):
        """Compute the dot product; returns ``(value, kernel_event)``."""
        if a.shape != b.shape:
            raise ValueError("input size mismatch")
        n = a.size
        a32 = a.astype(np.float32)
        b32 = b.astype(np.float32)
        groups = min(self.max_groups, (n + _WG - 1) // _WG)

        buf_a = self.context.create_buffer(a32.nbytes, name="dot_a")
        buf_b = self.context.create_buffer(b32.nbytes, name="dot_b")
        buf_partial = self.context.create_buffer(groups * 4, name="dot_partial")
        self.queue.enqueue_write_buffer(buf_a, a32)
        self.queue.enqueue_write_buffer(buf_b, b32)

        kernel = self.program.create_kernel("dot_product")
        kernel.set_args(buf_a, buf_b, buf_partial, n)
        event = self.queue.enqueue_nd_range_kernel(kernel, (groups * _WG,), (_WG,))
        partials, _ = self.queue.enqueue_read_buffer(buf_partial, np.float32, groups)

        for buffer in (buf_a, buf_b, buf_partial):
            buffer.release()
        return float(partials.sum()), event
