"""CUDA Mandelbrot baseline (the paper's §4.1 CUDA version), written in
the CUDA dialect and executed through the :mod:`repro.baselines.cuda`
translator on a device with the CUDA efficiency factor applied."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .cuda import CudaRuntime

MANDELBROT_CUDA_KERNEL = """
__global__ void mandelbrot(uchar* out, int width, int height,
                           float x_min, float y_min,
                           float dx, float dy, int max_iter) {
    int px = blockIdx.x * blockDim.x + threadIdx.x;
    int py = blockIdx.y * blockDim.y + threadIdx.y;
    if (px >= width || py >= height) {
        return;
    }
    float c_re = x_min + px * dx;
    float c_im = y_min + py * dy;
    float z_re = 0.0f;
    float z_im = 0.0f;
    int iter = 0;
    while (z_re * z_re + z_im * z_im <= 4.0f && iter < max_iter) {
        float t = z_re * z_re - z_im * z_im + c_re;
        z_im = 2.0f * z_re * z_im + c_im;
        z_re = t;
        ++iter;
    }
    out[py * width + px] = (uchar)(iter % 256);
}
"""


class MandelbrotCuda:
    """CUDA host program: kernel launched with 16×16 blocks."""

    def __init__(self, runtime: CudaRuntime, block=(16, 16)):
        self.runtime = runtime
        self.block = block

    def run(
        self,
        width: int,
        height: int,
        max_iter: int,
        bounds=(-2.5, 1.0, -1.25, 1.25),
        sample_fraction: Optional[float] = None,
    ):
        """Render; returns ``(image, kernel_event)``."""
        x_min, x_max, y_min, y_max = bounds
        out = self.runtime.malloc(width * height, name="mandelbrot_out")
        bx, by = self.block
        grid = ((width + bx - 1) // bx, (height + by - 1) // by)
        event = self.runtime.launch(
            MANDELBROT_CUDA_KERNEL,
            "mandelbrot",
            grid,
            self.block,
            out,
            width,
            height,
            x_min,
            y_min,
            (x_max - x_min) / width,
            (y_max - y_min) / height,
            max_iter,
            sample_fraction=sample_fraction,
        )
        image = None
        if event.info["groups_executed"] == event.info["groups_total"]:
            # Sampled (timing-only) runs leave the output partial; the
            # runtime forbids reading it back, so skip the transfer.
            data, _ = self.runtime.memcpy_device_to_host(out, np.uint8, width * height)
            image = data.reshape(height, width)
        out.free()
        return image, event
