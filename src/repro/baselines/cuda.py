"""A thin CUDA-like runtime over the simulated devices.

The paper compares SkelCL against CUDA implementations; CUDA was
measured ~31% faster than OpenCL on the same hardware (its ref [9]
attributes this to toolchain maturity).  We model that as a device
``efficiency`` factor (:data:`CUDA_EFFICIENCY`) and provide:

* :func:`cuda_to_opencl` — a source-level translator for the CUDA C
  subset the baselines use (``__global__``, ``threadIdx``/``blockIdx``/
  ``blockDim``/``gridDim``, ``__shared__``, ``__syncthreads``), so CUDA
  kernels run through the same kernelc pipeline;
* :class:`CudaRuntime` — a ``cudaMalloc``/``cudaMemcpy``/launch-style
  API in the spirit of the CUDA driver host code the paper's LoC
  comparison measures.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

import numpy as np

from .. import ocl

# The CUDA-toolchain advantage over OpenCL measured by the paper's
# reference [9] (Kong et al., GPGPU '10): ~1.3x.
CUDA_EFFICIENCY = 1.3

_DIM_MEMBERS = {"x": 0, "y": 1, "z": 2}

_ID_TRANSLATIONS = [
    (re.compile(r"\bthreadIdx\.([xyz])\b"), lambda m: f"get_local_id({_DIM_MEMBERS[m.group(1)]})"),
    (re.compile(r"\bblockIdx\.([xyz])\b"), lambda m: f"get_group_id({_DIM_MEMBERS[m.group(1)]})"),
    (re.compile(r"\bblockDim\.([xyz])\b"), lambda m: f"get_local_size({_DIM_MEMBERS[m.group(1)]})"),
    (re.compile(r"\bgridDim\.([xyz])\b"), lambda m: f"get_num_groups({_DIM_MEMBERS[m.group(1)]})"),
]

_ADDRESS_SPACE_WORDS = ("__global", "global", "__local", "local", "__constant", "constant")


def _globalize_kernel_params(params: str) -> str:
    """Add ``__global`` to pointer parameters lacking an address space
    (CUDA kernel pointers are device-global by definition)."""
    out = []
    for param in params.split(","):
        stripped = param.strip()
        if "*" in stripped and not any(stripped.startswith(w + " ") or f" {w} " in f" {stripped} "
                                       for w in _ADDRESS_SPACE_WORDS):
            param = param.replace(stripped, "__global " + stripped, 1)
        out.append(param)
    return ",".join(out)


def cuda_to_opencl(source: str) -> str:
    """Translate the supported CUDA C subset to OpenCL C."""
    text = source
    for pattern, replacement in _ID_TRANSLATIONS:
        text = pattern.sub(replacement, text)
    text = re.sub(r"\b__syncthreads\s*\(\s*\)", "barrier(CLK_LOCAL_MEM_FENCE)", text)
    text = re.sub(r"\b__shared__\b", "__local", text)
    text = re.sub(r"\b__device__\b\s*", "", text)
    text = re.sub(r"\b__restrict__\b\s*", "", text)
    text = re.sub(r"\b__forceinline__\b\s*", "", text)

    # __global__ void name(params) -> __kernel void name(globalized params)
    def kernelize(match: re.Match) -> str:
        name, params = match.group(1), match.group(2)
        return f"__kernel void {name}({_globalize_kernel_params(params)})"

    text = re.sub(r"__global__\s+void\s+(\w+)\s*\(([^)]*)\)", kernelize, text)
    return text


class DeviceBuffer:
    """The result of ``cudaMalloc``: an opaque device allocation."""

    def __init__(self, buffer: ocl.Buffer, nbytes: int):
        self._buffer = buffer
        self.nbytes = nbytes

    def free(self) -> None:
        self._buffer.release()


class CudaRuntime:
    """A minimal CUDA-style host API on one simulated device.

    The device runs with :data:`CUDA_EFFICIENCY` applied, modeling the
    measured CUDA-vs-OpenCL toolchain gap.
    """

    def __init__(self, spec: Optional[ocl.DeviceSpec] = None):
        base = spec if spec is not None else ocl.TESLA_T10
        self.spec = base.with_(efficiency=base.efficiency * CUDA_EFFICIENCY)
        self.context = ocl.Context.create(self.spec, 1)
        self.queue = self.context.queues[0]
        self._modules: Dict[str, ocl.Program] = {}

    # -- memory ------------------------------------------------------------

    def malloc(self, nbytes: int, name: str = "") -> DeviceBuffer:
        return DeviceBuffer(self.context.create_buffer(nbytes, name=name), nbytes)

    def memcpy_host_to_device(self, dst: DeviceBuffer, src: np.ndarray) -> ocl.Event:
        return self.queue.enqueue_write_buffer(dst._buffer, src)

    def memcpy_device_to_host(self, src: DeviceBuffer, dtype, count: int) -> Tuple[np.ndarray, ocl.Event]:
        return self.queue.enqueue_read_buffer(src._buffer, dtype, count)

    # -- kernels --------------------------------------------------------------

    def load_module(self, cuda_source: str, name: str = "<cuda module>") -> ocl.Program:
        program = self._modules.get(cuda_source)
        if program is None:
            program = ocl.Program(cuda_to_opencl(cuda_source), name).build()
            self._modules[cuda_source] = program
        return program

    def launch(
        self,
        cuda_source: str,
        kernel_name: str,
        grid: Tuple[int, ...],
        block: Tuple[int, ...],
        *args,
        sample_fraction: Optional[float] = None,
    ) -> ocl.Event:
        """``kernel<<<grid, block>>>(args)``: grid is in *blocks*."""
        program = self.load_module(cuda_source)
        kernel = program.create_kernel(kernel_name)
        marshaled = [a._buffer if isinstance(a, DeviceBuffer) else a for a in args]
        kernel.set_args(*marshaled)
        global_size = tuple(g * b for g, b in zip(grid, block))
        return self.queue.enqueue_nd_range_kernel(kernel, global_size, block, sample_fraction)

    def synchronize(self) -> int:
        return self.queue.finish()

    def elapsed_ns(self) -> int:
        return self.queue.time_ns

    def release(self) -> None:
        self.context.release()
