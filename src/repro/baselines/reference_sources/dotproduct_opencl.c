/*
 * Dot product, OpenCL version in the style of the NVIDIA SDK's
 * oclDotProduct sample (reference source for the §3.3 comparison;
 * paper: ~68 LoC = 9 kernel + 59 host).
 */
#include <CL/cl.h>
#include <stdio.h>
#include <stdlib.h>

#define CHECK(err, what)                                                      \
    if ((err) != CL_SUCCESS) {                                                \
        fprintf(stderr, "OpenCL error %d at %s\n", (err), what); exit(1); }

// LOC: kernel begin
static const char* kernel_source =
    "__kernel void dot_product(__global const float* a,              \n"
    "                          __global const float* b,              \n"
    "                          __global float* c, const int n) {     \n"
    "    int gid = get_global_id(0);                                 \n"
    "    if (gid < n) {                                              \n"
    "        c[gid] = a[gid] * b[gid];                               \n"
    "    }                                                           \n"
    "}                                                               \n";
// LOC: kernel end

int main(int argc, char** argv)
{
    const int n = 1048576;
    const size_t bytes = n * sizeof(float);
    cl_int err;

    float* h_a = malloc(bytes);
    float* h_b = malloc(bytes);
    float* h_c = malloc(bytes);
    for (int i = 0; i < n; ++i) { h_a[i] = (float)i; h_b[i] = 2.0f; }

    cl_platform_id platform;
    err = clGetPlatformIDs(1, &platform, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_device_id device;
    err = clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");
    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
    CHECK(err, "clCreateCommandQueue");

    cl_program program =
        clCreateProgramWithSource(context, 1, &kernel_source, NULL, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, NULL, NULL, NULL);
    CHECK(err, "clBuildProgram");
    cl_kernel kernel = clCreateKernel(program, "dot_product", &err);
    CHECK(err, "clCreateKernel");

    cl_mem d_a = clCreateBuffer(context, CL_MEM_READ_ONLY, bytes, NULL, &err);
    cl_mem d_b = clCreateBuffer(context, CL_MEM_READ_ONLY, bytes, NULL, &err);
    cl_mem d_c = clCreateBuffer(context, CL_MEM_WRITE_ONLY, bytes, NULL, &err);
    CHECK(err, "clCreateBuffer");
    err = clEnqueueWriteBuffer(queue, d_a, CL_TRUE, 0, bytes, h_a, 0, NULL, NULL);
    err |= clEnqueueWriteBuffer(queue, d_b, CL_TRUE, 0, bytes, h_b, 0, NULL, NULL);
    CHECK(err, "clEnqueueWriteBuffer");

    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &d_a);
    err |= clSetKernelArg(kernel, 1, sizeof(cl_mem), &d_b);
    err |= clSetKernelArg(kernel, 2, sizeof(cl_mem), &d_c);
    err |= clSetKernelArg(kernel, 3, sizeof(int), &n);
    CHECK(err, "clSetKernelArg");

    size_t local_size = 256, global_size = ((n + 255) / 256) * 256;
    err = clEnqueueNDRangeKernel(queue, kernel, 1, NULL,
                                 &global_size, &local_size, 0, NULL, NULL);
    CHECK(err, "clEnqueueNDRangeKernel");

    err = clEnqueueReadBuffer(queue, d_c, CL_TRUE, 0, bytes, h_c, 0, NULL, NULL);
    CHECK(err, "clEnqueueReadBuffer");
    double result = 0.0;
    for (int i = 0; i < n; ++i) result += h_c[i];
    printf("dot product: %f\n", result);

    clReleaseMemObject(d_a); clReleaseMemObject(d_b); clReleaseMemObject(d_c);
    clReleaseKernel(kernel); clReleaseProgram(program);
    clReleaseCommandQueue(queue); clReleaseContext(context);
    free(h_a); free(h_b); free(h_c);
    return 0;
}
