/*
 * Sobel edge detection, AMD APP SDK style (reference kernel for the
 * §4.2 programming-effort comparison; paper: 37 LoC).
 *
 * Straightforward: one work-item per pixel, nine global-memory loads
 * with manual index arithmetic and explicit boundary checks; no local
 * memory — which is why Fig. 5 shows it clearly slower.
 */
// LOC: kernel begin
uchar compute_sobel(int ul, int um, int ur,
                    int ml,         int mr,
                    int ll, int lm, int lr)
{
    int horizontal = 0;
    horizontal += -1 * ul + 1 * ur;
    horizontal += -2 * ml + 2 * mr;
    horizontal += -1 * ll + 1 * lr;
    int vertical = 0;
    vertical += -1 * ul - 2 * um - 1 * ur;
    vertical += +1 * ll + 2 * lm + 1 * lr;
    int magnitude = horizontal * horizontal + vertical * vertical;
    float root = sqrt((float)magnitude);
    return (uchar)root;
}

__kernel void sobel_kernel(__global const uchar* img,
                           __global uchar* out_img)
{
    uint i = get_global_id(0);
    uint j = get_global_id(1);
    uint w = get_global_size(0);
    uint h = get_global_size(1);

    uint index = j * w + i;

    /* perform boundary checks */
    if (i >= 1 && i < (w - 1) && j >= 1 && j < (h - 1)) {
        uchar ul = img[((j - 1) * w) + (i - 1)];
        uchar um = img[((j - 1) * w) + (i + 0)];
        uchar ur = img[((j - 1) * w) + (i + 1)];
        uchar ml = img[((j + 0) * w) + (i - 1)];
        uchar mr = img[((j + 0) * w) + (i + 1)];
        uchar ll = img[((j + 1) * w) + (i - 1)];
        uchar lm = img[((j + 1) * w) + (i + 0)];
        uchar lr = img[((j + 1) * w) + (i + 1)];
        out_img[index] = compute_sobel(ul, um, ur, ml, mr, ll, lm, lr);
    } else if (i < w && j < h) {
        out_img[index] = 0;
    }
}
// LOC: kernel end
