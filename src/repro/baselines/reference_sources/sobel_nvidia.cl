/*
 * Sobel edge detection, NVIDIA OpenCL SDK style (reference kernel for
 * the §4.2 programming-effort comparison; paper: 208 LoC).
 *
 * Faithful to the SDK's SobelFilter sample structure: RGBA uchar4
 * pixels, each work-item produces FOUR horizontally adjacent output
 * pixels from a work-group-sized local-memory tile with halo, with
 * explicitly unrolled halo loading for every edge and corner case and
 * the per-pixel, per-channel gradient computation written out.  The
 * length of this kernel versus Listing 1.5 *is* the paper's point.
 */
// LOC: kernel begin
#define TILE_W 16
#define TILE_H 16
#define PIXELS_PER_ITEM 4
#define SPAN_W (TILE_W * PIXELS_PER_ITEM)
#define SHARED_W (SPAN_W + 2)
#define SHARED_H (TILE_H + 2)
#define CLAMP_TO_EDGE 1

float4 unpack_pixel(uchar4 pixel)
{
    float4 result;
    result.x = (float)pixel.x;
    result.y = (float)pixel.y;
    result.z = (float)pixel.z;
    result.w = (float)pixel.w;
    return result;
}

uchar4 pack_pixel(float4 value)
{
    uchar4 result;
    result.x = (uchar)clamp(value.x, 0.0f, 255.0f);
    result.y = (uchar)clamp(value.y, 0.0f, 255.0f);
    result.z = (uchar)clamp(value.z, 0.0f, 255.0f);
    result.w = (uchar)clamp(value.w, 0.0f, 255.0f);
    return result;
}

int clamp_coord(int value, int limit)
{
    if (value < 0) {
        return 0;
    }
    if (value >= limit) {
        return limit - 1;
    }
    return value;
}

uchar4 fetch_pixel(__global const uchar4* img,
                   int x, int y, int width, int height)
{
    int cx = clamp_coord(x, width);
    int cy = clamp_coord(y, height);
    return img[cy * width + cx];
}

float sobel_channel(float ul, float um, float ur,
                    float ml,           float mr,
                    float ll, float lm, float lr,
                    float scale)
{
    float horizontal = 0.0f;
    horizontal += -1.0f * ul + 1.0f * ur;
    horizontal += -2.0f * ml + 2.0f * mr;
    horizontal += -1.0f * ll + 1.0f * lr;
    float vertical = 0.0f;
    vertical += -1.0f * ul - 2.0f * um - 1.0f * ur;
    vertical += +1.0f * ll + 2.0f * lm + 1.0f * lr;
    float magnitude = sqrt(horizontal * horizontal
                           + vertical * vertical);
    return magnitude * scale;
}

float4 sobel_pixel(float4 pix_ul, float4 pix_um, float4 pix_ur,
                   float4 pix_ml,                float4 pix_mr,
                   float4 pix_ll, float4 pix_lm, float4 pix_lr,
                   float scale)
{
    float4 magnitude;
    magnitude.x = sobel_channel(pix_ul.x, pix_um.x, pix_ur.x,
                                pix_ml.x, pix_mr.x,
                                pix_ll.x, pix_lm.x, pix_lr.x,
                                scale);
    magnitude.y = sobel_channel(pix_ul.y, pix_um.y, pix_ur.y,
                                pix_ml.y, pix_mr.y,
                                pix_ll.y, pix_lm.y, pix_lr.y,
                                scale);
    magnitude.z = sobel_channel(pix_ul.z, pix_um.z, pix_ur.z,
                                pix_ml.z, pix_mr.z,
                                pix_ll.z, pix_lm.z, pix_lr.z,
                                scale);
    magnitude.w = sobel_channel(pix_ul.w, pix_um.w, pix_ur.w,
                                pix_ml.w, pix_mr.w,
                                pix_ll.w, pix_lm.w, pix_lr.w,
                                scale);
    return magnitude;
}

__kernel void sobel_filter(__global const uchar4* img,
                           __global uchar4* out_img,
                           const int width,
                           const int height,
                           const float scale)
{
    __local uchar4 tile[SHARED_H][SHARED_W];

    const int lx = get_local_id(0);
    const int ly = get_local_id(1);
    const int gy = get_global_id(1);
    const int group_x = get_group_id(0) * SPAN_W;
    const int group_y = get_group_id(1) * TILE_H;
    const int base_x = group_x + lx * PIXELS_PER_ITEM;

    /* ------------------------------------------------------------ */
    /* Stage the tile in local memory.  Each work-item loads its own */
    /* four pixels; border work-items additionally load the halo.    */
    /* ------------------------------------------------------------ */
    tile[ly + 1][lx * PIXELS_PER_ITEM + 1] =
        fetch_pixel(img, base_x + 0, gy, width, height);
    tile[ly + 1][lx * PIXELS_PER_ITEM + 2] =
        fetch_pixel(img, base_x + 1, gy, width, height);
    tile[ly + 1][lx * PIXELS_PER_ITEM + 3] =
        fetch_pixel(img, base_x + 2, gy, width, height);
    tile[ly + 1][lx * PIXELS_PER_ITEM + 4] =
        fetch_pixel(img, base_x + 3, gy, width, height);

    /* left halo column */
    if (lx == 0) {
        tile[ly + 1][0] =
            fetch_pixel(img, group_x - 1, gy, width, height);
    }
    /* right halo column */
    if (lx == TILE_W - 1) {
        tile[ly + 1][SHARED_W - 1] =
            fetch_pixel(img, group_x + SPAN_W, gy, width, height);
    }
    /* top halo row: four pixels per item */
    if (ly == 0) {
        tile[0][lx * PIXELS_PER_ITEM + 1] =
            fetch_pixel(img, base_x + 0, group_y - 1, width, height);
        tile[0][lx * PIXELS_PER_ITEM + 2] =
            fetch_pixel(img, base_x + 1, group_y - 1, width, height);
        tile[0][lx * PIXELS_PER_ITEM + 3] =
            fetch_pixel(img, base_x + 2, group_y - 1, width, height);
        tile[0][lx * PIXELS_PER_ITEM + 4] =
            fetch_pixel(img, base_x + 3, group_y - 1, width, height);
    }
    /* bottom halo row: four pixels per item */
    if (ly == TILE_H - 1) {
        tile[SHARED_H - 1][lx * PIXELS_PER_ITEM + 1] =
            fetch_pixel(img, base_x + 0, group_y + TILE_H, width, height);
        tile[SHARED_H - 1][lx * PIXELS_PER_ITEM + 2] =
            fetch_pixel(img, base_x + 1, group_y + TILE_H, width, height);
        tile[SHARED_H - 1][lx * PIXELS_PER_ITEM + 3] =
            fetch_pixel(img, base_x + 2, group_y + TILE_H, width, height);
        tile[SHARED_H - 1][lx * PIXELS_PER_ITEM + 4] =
            fetch_pixel(img, base_x + 3, group_y + TILE_H, width, height);
    }
    /* top-left corner */
    if (lx == 0 && ly == 0) {
        tile[0][0] =
            fetch_pixel(img, group_x - 1, group_y - 1, width, height);
    }
    /* top-right corner */
    if (lx == TILE_W - 1 && ly == 0) {
        tile[0][SHARED_W - 1] =
            fetch_pixel(img, group_x + SPAN_W, group_y - 1, width, height);
    }
    /* bottom-left corner */
    if (lx == 0 && ly == TILE_H - 1) {
        tile[SHARED_H - 1][0] =
            fetch_pixel(img, group_x - 1, group_y + TILE_H, width, height);
    }
    /* bottom-right corner */
    if (lx == TILE_W - 1 && ly == TILE_H - 1) {
        tile[SHARED_H - 1][SHARED_W - 1] =
            fetch_pixel(img, group_x + SPAN_W, group_y + TILE_H,
                        width, height);
    }

    barrier(CLK_LOCAL_MEM_FENCE);

    if (gy >= height) {
        return;
    }

    /* ------------------------------------------------------------ */
    /* Compute the four output pixels, each from its 3x3 tile        */
    /* neighbourhood, fully unrolled.                                */
    /* ------------------------------------------------------------ */
    const int ty = ly + 1;
    const int tx0 = lx * PIXELS_PER_ITEM + 1;
    const int out_row = gy * width;

    /* pixel 0 */
    if (base_x + 0 < width) {
        float4 result0 = sobel_pixel(
            unpack_pixel(tile[ty - 1][tx0 - 1]),
            unpack_pixel(tile[ty - 1][tx0]),
            unpack_pixel(tile[ty - 1][tx0 + 1]),
            unpack_pixel(tile[ty][tx0 - 1]),
            unpack_pixel(tile[ty][tx0 + 1]),
            unpack_pixel(tile[ty + 1][tx0 - 1]),
            unpack_pixel(tile[ty + 1][tx0]),
            unpack_pixel(tile[ty + 1][tx0 + 1]),
            scale);
        out_img[out_row + base_x + 0] = pack_pixel(result0);
    }
    /* pixel 1 */
    if (base_x + 1 < width) {
        float4 result1 = sobel_pixel(
            unpack_pixel(tile[ty - 1][tx0]),
            unpack_pixel(tile[ty - 1][tx0 + 1]),
            unpack_pixel(tile[ty - 1][tx0 + 2]),
            unpack_pixel(tile[ty][tx0]),
            unpack_pixel(tile[ty][tx0 + 2]),
            unpack_pixel(tile[ty + 1][tx0]),
            unpack_pixel(tile[ty + 1][tx0 + 1]),
            unpack_pixel(tile[ty + 1][tx0 + 2]),
            scale);
        out_img[out_row + base_x + 1] = pack_pixel(result1);
    }
    /* pixel 2 */
    if (base_x + 2 < width) {
        float4 result2 = sobel_pixel(
            unpack_pixel(tile[ty - 1][tx0 + 1]),
            unpack_pixel(tile[ty - 1][tx0 + 2]),
            unpack_pixel(tile[ty - 1][tx0 + 3]),
            unpack_pixel(tile[ty][tx0 + 1]),
            unpack_pixel(tile[ty][tx0 + 3]),
            unpack_pixel(tile[ty + 1][tx0 + 1]),
            unpack_pixel(tile[ty + 1][tx0 + 2]),
            unpack_pixel(tile[ty + 1][tx0 + 3]),
            scale);
        out_img[out_row + base_x + 2] = pack_pixel(result2);
    }
    /* pixel 3 */
    if (base_x + 3 < width) {
        float4 result3 = sobel_pixel(
            unpack_pixel(tile[ty - 1][tx0 + 2]),
            unpack_pixel(tile[ty - 1][tx0 + 3]),
            unpack_pixel(tile[ty - 1][tx0 + 4]),
            unpack_pixel(tile[ty][tx0 + 2]),
            unpack_pixel(tile[ty][tx0 + 4]),
            unpack_pixel(tile[ty + 1][tx0 + 2]),
            unpack_pixel(tile[ty + 1][tx0 + 3]),
            unpack_pixel(tile[ty + 1][tx0 + 4]),
            scale);
        out_img[out_row + base_x + 3] = pack_pixel(result3);
    }
}
// LOC: kernel end
