/*
 * Dot product, SkelCL version — the paper's Listing 1.1, verbatim
 * (reference source for the §3.3 programming-effort comparison).
 */
#include <SkelCL/SkelCL.h>
#include <SkelCL/Zip.h>
#include <SkelCL/Reduce.h>
#include <SkelCL/Vector.h>

// LOC: kernel begin
// (the customizing functions are the one-line strings below)
// LOC: kernel end

int main(int argc, char const* argv[])
{
    skelcl::init(); /* initialize SkelCL */
    /* create skeletons */
    skelcl::Reduce<float> sum("float sum(float x, float y) { return x + y; }");
    skelcl::Zip<float> mult("float mult(float x, float y) { return x * y; }");
    /* create input vectors */
    skelcl::Vector<float> A(SIZE);
    skelcl::Vector<float> B(SIZE);
    /* fill vectors with data */
    fillVector(A.begin(), A.end());
    fillVector(B.begin(), B.end());
    /* execute skeleton */
    skelcl::Scalar<float> C = sum(mult(A, B));
    /* fetch result */
    float c = C.getValue();
    return c == c ? 0 : 1;
}
