/*
 * Mandelbrot set, SkelCL version (reference source for the Fig. 4
 * programming-effort comparison; paper: 57 LoC = 26 kernel + 31 host).
 *
 * The "kernel" portion is the customizing function passed to the Map
 * skeleton; the host portion is everything else — note the single-line
 * initialization and the absence of buffer management.
 */
#include <SkelCL/SkelCL.h>
#include <SkelCL/Map.h>
#include <SkelCL/Vector.h>
#include <cstdio>
#include <cstdlib>

// LOC: kernel begin
static const char* mandelbrot_func =
    "uchar func(int idx, int width,                                 \n"
    "           float x_min, float y_min,                           \n"
    "           float dx, float dy, int max_iter)                   \n"
    "{                                                              \n"
    "    int px = idx % width;                                      \n"
    "    int py = idx / width;                                      \n"
    "    float c_re = x_min + px * dx;                              \n"
    "    float c_im = y_min + py * dy;                              \n"
    "    float z_re = 0.0f;                                         \n"
    "    float z_im = 0.0f;                                         \n"
    "    float mag = 0.0f;                                          \n"
    "    int iter = 0;                                              \n"
    "    while (mag <= 4.0f && iter < max_iter) {                   \n"
    "        float tmp = z_re * z_re - z_im * z_im + c_re;          \n"
    "        z_im = 2.0f * z_re * z_im + c_im;                      \n"
    "        z_re = tmp;                                            \n"
    "        mag = z_re * z_re + z_im * z_im;                       \n"
    "        ++iter;                                                \n"
    "    }                                                          \n"
    "    uchar gray = (uchar)(iter % 256);                          \n"
    "    if (iter >= max_iter) {                                    \n"
    "        gray = 0;                                              \n"
    "    }                                                          \n"
    "    return gray;                                               \n"
    "}                                                              \n";
// LOC: kernel end

int main(int argc, char** argv)
{
    const int width = 4096, height = 3072, max_iter = 256;
    const float x_min = -2.5f, y_min = -1.25f;
    const float dx = 3.5f / width;
    const float dy = 2.5f / height;

    skelcl::init();

    skelcl::Map<unsigned char(int)> mandelbrot(mandelbrot_func);

    skelcl::Vector<int> indices(width * height);
    for (int i = 0; i < width * height; ++i) {
        indices[i] = i;
    }

    skelcl::Vector<unsigned char> image =
        mandelbrot(indices, width, x_min, y_min, dx, dy, max_iter);

    FILE* out = fopen("mandelbrot.pgm", "wb");
    if (out == NULL) {
        return EXIT_FAILURE;
    }
    fprintf(out, "P5\n%d %d\n255\n", width, height);
    for (int i = 0; i < width * height; ++i) {
        putc(image[i], out);
    }
    fclose(out);

    skelcl::terminate();
    return 0;
}
