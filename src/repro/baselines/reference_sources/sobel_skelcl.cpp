/*
 * Sobel edge detection, SkelCL version — the paper's Listing 1.5 with
 * the elided vertical gradient filled in (reference source for the
 * §4.2 programming-effort comparison).
 */
#include <SkelCL/SkelCL.h>
#include <SkelCL/MapOverlap.h>
#include <SkelCL/Matrix.h>

// LOC: kernel begin
static const char* sobel_func =
    "uchar func(const uchar* img) {                               \n"
    "    short h = -1*get(img,-1,-1) +1*get(img,+1,-1)            \n"
    "              -2*get(img,-1, 0) +2*get(img,+1, 0)            \n"
    "              -1*get(img,-1,+1) +1*get(img,+1,+1);           \n"
    "    short v = -1*get(img,-1,-1) -2*get(img, 0,-1)            \n"
    "              -1*get(img,+1,-1) +1*get(img,-1,+1)            \n"
    "              +2*get(img, 0,+1) +1*get(img,+1,+1);           \n"
    "    return (uchar)sqrt((float)(h*h + v*v)); }                \n";
// LOC: kernel end

int main(int argc, char** argv)
{
    skelcl::init();
    skelcl::Matrix<unsigned char> img = loadImage(argv[1]);
    /* skeleton customized with Sobel edge detection algorithm */
    skelcl::MapOverlap<unsigned char(unsigned char)> m(
        sobel_func, 1, skelcl::Padding::NEUTRAL, 0);
    skelcl::Matrix<unsigned char> out_img = m(img);
    saveImage(argv[2], out_img);
    skelcl::terminate();
    return 0;
}
