/*
 * Mandelbrot set, CUDA version (reference source for the Fig. 4
 * programming-effort comparison; paper: 49 LoC = 28 kernel + 21 host).
 *
 * Counted by repro.loc: non-blank, non-comment lines; the kernel
 * portion sits between the "LOC: kernel begin/end" guards.
 */
#include <cstdio>
#include <cstdlib>

#define X_MIN (-2.5f)
#define Y_MIN (-1.25f)

// LOC: kernel begin
typedef unsigned char uchar;

__global__ void mandelbrot_kernel(uchar* image, int width, int height,
                                  float x_min, float y_min,
                                  float dx, float dy, int max_iter)
{
    int px = blockIdx.x * blockDim.x + threadIdx.x;
    int py = blockIdx.y * blockDim.y + threadIdx.y;
    if (px >= width || py >= height) {
        return;
    }
    float c_re = x_min + px * dx;
    float c_im = y_min + py * dy;
    float z_re = 0.0f, z_im = 0.0f;
    int iter = 0;
    while (z_re * z_re + z_im * z_im <= 4.0f && iter < max_iter) {
        float tmp = z_re * z_re - z_im * z_im + c_re;
        z_im = 2.0f * z_re * z_im + c_im;
        z_re = tmp;
        ++iter;
    }
    uchar gray;
    gray = (iter >= max_iter) ? 0 : (uchar)(iter % 256);
    image[py * width + px] = gray;
}
// LOC: kernel end

int main(int argc, char** argv)
{
    const int width = 4096, height = 3072;
    const int max_iter = 256;
    const float dx = 3.5f / width;
    const float dy = 2.5f / height;
    uchar* d_image;
    cudaMalloc((void**)&d_image, width * height);
    dim3 block(16, 16);
    dim3 grid((width + block.x - 1) / block.x,
              (height + block.y - 1) / block.y);
    mandelbrot_kernel<<<grid, block>>>(d_image, width, height,
                                       X_MIN, Y_MIN, dx, dy, max_iter);
    cudaDeviceSynchronize();
    uchar* h_image = (uchar*)malloc(width * height);
    cudaMemcpy(h_image, d_image, width * height, cudaMemcpyDeviceToHost);
    fwrite(h_image, 1, width * height, stdout);
    cudaFree(d_image);
    free(h_image);
    return 0;
}
