/*
 * Mandelbrot set, OpenCL version (reference source for the Fig. 4
 * programming-effort comparison; paper: 118 LoC = 28 kernel + 90 host).
 *
 * The kernel is embedded as a string, as typical for OpenCL samples;
 * the host program carries the full platform/context/program/buffer
 * boilerplate the paper calls "lengthy".
 */
#include <CL/cl.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#define X_MIN (-2.5f)
#define Y_MIN (-1.25f)

#define CHECK(err, what)                                                      \
    if ((err) != CL_SUCCESS) {                                                \
        fprintf(stderr, "OpenCL error %d at %s\n", (err), what); exit(1); }

// LOC: kernel begin
static const char* kernel_source =
    "__kernel void mandelbrot_kernel(__global uchar* image,          \n"
    "                                const int width,                \n"
    "                                const int height,               \n"
    "                                const float x_min,              \n"
    "                                const float y_min,              \n"
    "                                const float dx,                 \n"
    "                                const float dy,                 \n"
    "                                const int max_iter)             \n"
    "{                                                               \n"
    "    int px = get_global_id(0);                                  \n"
    "    int py = get_global_id(1);                                  \n"
    "    if (px >= width || py >= height) {                          \n"
    "        return;                                                 \n"
    "    }                                                           \n"
    "    float c_re = x_min + px * dx;                               \n"
    "    float c_im = y_min + py * dy;                               \n"
    "    float z_re = 0.0f, z_im = 0.0f;                             \n"
    "    int iter = 0;                                                \n"
    "    while (z_re * z_re + z_im * z_im <= 4.0f && iter < max_iter) {\n"
    "        float tmp = z_re * z_re - z_im * z_im + c_re;            \n"
    "        z_im = 2.0f * z_re * z_im + c_im;                        \n"
    "        z_re = tmp;                                              \n"
    "        ++iter;                                                  \n"
    "    }                                                            \n"
    "    uchar gray = (iter >= max_iter) ? 0 : (uchar)(iter % 256);   \n"
    "    image[py * width + px] = gray;                               \n"
    "}                                                                \n";
// LOC: kernel end

int main(int argc, char** argv)
{
    const int width = 4096, height = 3072;
    const int max_iter = 256;
    const float dx = 3.5f / width;
    const float dy = 2.5f / height;
    const size_t image_bytes = (size_t)width * height;
    cl_int err;

    /* 1. Discover a platform. */
    cl_uint num_platforms = 0;
    err = clGetPlatformIDs(0, NULL, &num_platforms);
    CHECK(err, "clGetPlatformIDs (count)");
    if (num_platforms == 0) return EXIT_FAILURE;
    cl_platform_id* platforms = malloc(num_platforms * sizeof(cl_platform_id));
    err = clGetPlatformIDs(num_platforms, platforms, NULL);
    CHECK(err, "clGetPlatformIDs");
    cl_platform_id platform = platforms[0];
    free(platforms);

    /* 2. Discover a GPU device on it. */
    cl_uint num_devices = 0;
    err = clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 0, NULL, &num_devices);
    CHECK(err, "clGetDeviceIDs (count)");
    if (num_devices == 0) {
        fprintf(stderr, "no GPU device found\n");
        return EXIT_FAILURE;
    }
    cl_device_id device;
    err = clGetDeviceIDs(platform, CL_DEVICE_TYPE_GPU, 1, &device, NULL);
    CHECK(err, "clGetDeviceIDs");

    /* 3. Create context and command queue. */
    cl_context context = clCreateContext(NULL, 1, &device, NULL, NULL, &err);
    CHECK(err, "clCreateContext");
    cl_command_queue queue = clCreateCommandQueue(context, device, 0, &err);
    CHECK(err, "clCreateCommandQueue");

    /* 4. Build the program and create the kernel. */
    size_t source_length = strlen(kernel_source);
    cl_program program = clCreateProgramWithSource(context, 1, &kernel_source,
                                                   &source_length, &err);
    CHECK(err, "clCreateProgramWithSource");
    err = clBuildProgram(program, 1, &device, NULL, NULL, NULL);
    if (err != CL_SUCCESS) {
        char log[8192];
        clGetProgramBuildInfo(program, device, CL_PROGRAM_BUILD_LOG,
                              sizeof(log), log, NULL);
        fprintf(stderr, "build failed:\n%s\n", log);
        return EXIT_FAILURE;
    }
    cl_kernel kernel = clCreateKernel(program, "mandelbrot_kernel", &err);
    CHECK(err, "clCreateKernel");

    /* 5. Allocate the output buffer. */
    cl_mem image_buffer = clCreateBuffer(context, CL_MEM_WRITE_ONLY,
                                         image_bytes, NULL, &err);
    CHECK(err, "clCreateBuffer");

    /* 6. Set the kernel arguments, one call per argument. */
    err = clSetKernelArg(kernel, 0, sizeof(cl_mem), &image_buffer);
    err |= clSetKernelArg(kernel, 1, sizeof(int), &width);
    err |= clSetKernelArg(kernel, 2, sizeof(int), &height);
    float x_min = X_MIN, y_min = Y_MIN;
    err |= clSetKernelArg(kernel, 3, sizeof(float), &x_min);
    err |= clSetKernelArg(kernel, 4, sizeof(float), &y_min);
    err |= clSetKernelArg(kernel, 5, sizeof(float), &dx);
    err |= clSetKernelArg(kernel, 6, sizeof(float), &dy);
    err |= clSetKernelArg(kernel, 7, sizeof(int), &max_iter);
    CHECK(err, "clSetKernelArg");

    /* 7. Launch with explicit 16x16 work-groups. */
    size_t local_size[2] = { 16, 16 };
    size_t global_size[2] = {
        ((width + 15) / 16) * 16,
        ((height + 15) / 16) * 16
    };
    err = clEnqueueNDRangeKernel(queue, kernel, 2, NULL,
                                 global_size, local_size, 0, NULL, NULL);
    CHECK(err, "clEnqueueNDRangeKernel");
    err = clFinish(queue);
    CHECK(err, "clFinish");

    /* 8. Read the result back. */
    unsigned char* h_image = malloc(image_bytes);
    err = clEnqueueReadBuffer(queue, image_buffer, CL_TRUE, 0,
                              image_bytes, h_image, 0, NULL, NULL);
    CHECK(err, "clEnqueueReadBuffer");
    fwrite(h_image, 1, image_bytes, stdout);

    /* 9. Release everything. */
    clReleaseMemObject(image_buffer);
    clReleaseKernel(kernel);
    clReleaseProgram(program);
    clReleaseCommandQueue(queue);
    clReleaseContext(context);
    free(h_image);
    return 0;
}
