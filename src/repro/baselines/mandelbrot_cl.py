"""Hand-written OpenCL Mandelbrot baseline (the paper's §4.1 OpenCL
version): explicit buffers, explicit kernel, 16×16 work-groups."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import ocl

MANDELBROT_CL_KERNEL = """
__kernel void mandelbrot(__global uchar* out,
                         const int width,
                         const int height,
                         const float x_min,
                         const float y_min,
                         const float dx,
                         const float dy,
                         const int max_iter) {
    int px = get_global_id(0);
    int py = get_global_id(1);
    if (px >= width || py >= height) {
        return;
    }
    float c_re = x_min + px * dx;
    float c_im = y_min + py * dy;
    float z_re = 0.0f;
    float z_im = 0.0f;
    int iter = 0;
    while (z_re * z_re + z_im * z_im <= 4.0f && iter < max_iter) {
        float t = z_re * z_re - z_im * z_im + c_re;
        z_im = 2.0f * z_re * z_im + c_im;
        z_re = t;
        ++iter;
    }
    out[py * width + px] = (uchar)(iter % 256);
}
"""


class MandelbrotOpenCL:
    """OpenCL host program: 16×16 work-groups as in the paper."""

    def __init__(self, context: ocl.Context, work_group: Tuple[int, int] = (16, 16)):
        self.context = context
        self.queue = context.queues[0]
        self.work_group = work_group
        self.program = ocl.Program(MANDELBROT_CL_KERNEL, "mandelbrot_cl").build()

    def run(
        self,
        width: int,
        height: int,
        max_iter: int,
        bounds=(-2.5, 1.0, -1.25, 1.25),
        sample_fraction: Optional[float] = None,
    ):
        """Render; returns ``(image, kernel_event)``."""
        x_min, x_max, y_min, y_max = bounds
        out_buf = self.context.create_buffer(width * height, name="mandelbrot_out")
        kernel = self.program.create_kernel("mandelbrot")
        kernel.set_args(
            out_buf, width, height, x_min, y_min,
            (x_max - x_min) / width, (y_max - y_min) / height, max_iter,
        )
        wg_x, wg_y = self.work_group
        global_size = (
            (width + wg_x - 1) // wg_x * wg_x,
            (height + wg_y - 1) // wg_y * wg_y,
        )
        event = self.queue.enqueue_nd_range_kernel(kernel, global_size, self.work_group, sample_fraction)
        image = None
        if event.info["groups_executed"] == event.info["groups_total"]:
            # Sampled (timing-only) runs leave the output partial; the
            # runtime forbids reading it back, so skip the transfer.
            data, _ = self.queue.enqueue_read_buffer(out_buf, np.uint8, width * height)
            image = data.reshape(height, width)
        out_buf.release()
        return image, event
