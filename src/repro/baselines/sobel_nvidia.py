"""NVIDIA-SDK-style Sobel baseline: local-memory tiling.

Characteristic of the NVIDIA OpenCL SDK's SobelFilter sample: each
work-group stages an 18×18 tile (16×16 plus halo) of the image in
*local* memory, synchronizes, then computes the operator from the tile —
each pixel is fetched from global memory ~1.3 times instead of 9.
Fig. 5 shows this on par with SkelCL's MapOverlap (which uses the same
technique internally).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import ocl

# Work-group geometry is baked into the source (as the SDK sample does).
TILE = 16

SOBEL_NVIDIA_KERNEL = """
#define TILE 16

/* The SDK sample unpacks pixels to float and filters in floating
   point; kept here for fidelity (it costs real operations). */
uchar compute_sobel(uchar ul_u, uchar um_u, uchar ur_u,
                    uchar ml_u,             uchar mr_u,
                    uchar ll_u, uchar lm_u, uchar lr_u) {
    float ul = (float)ul_u;
    float um = (float)um_u;
    float ur = (float)ur_u;
    float ml = (float)ml_u;
    float mr = (float)mr_u;
    float ll = (float)ll_u;
    float lm = (float)lm_u;
    float lr = (float)lr_u;
    float h = -ul + ur - 2.0f * ml + 2.0f * mr - ll + lr;
    float v = -ul - 2.0f * um - ur + ll + 2.0f * lm + lr;
    float magnitude = sqrt(h * h + v * v);
    return (uchar)magnitude;
}

__kernel void sobel_tiled(__global const uchar* img,
                          __global uchar* out_img,
                          const int width,
                          const int height) {
    __local uchar tile[TILE + 2][TILE + 2];

    const int lx = get_local_id(0);
    const int ly = get_local_id(1);
    const int gx = get_global_id(0);
    const int gy = get_global_id(1);
    const int x0 = get_group_id(0) * TILE - 1;
    const int y0 = get_group_id(1) * TILE - 1;

    /* Cooperative load of the (TILE+2)^2 tile, halo included. */
    for (int idx = ly * TILE + lx; idx < (TILE + 2) * (TILE + 2); idx += TILE * TILE) {
        int ty = idx / (TILE + 2);
        int tx = idx % (TILE + 2);
        int sx = x0 + tx;
        int sy = y0 + ty;
        uchar value = 0;
        if (sx >= 0 && sx < width && sy >= 0 && sy < height) {
            value = img[sy * width + sx];
        }
        tile[ty][tx] = value;
    }
    barrier(CLK_LOCAL_MEM_FENCE);

    if (gx < width && gy < height) {
        int tx = lx + 1;
        int ty = ly + 1;
        uchar ul = tile[ty - 1][tx - 1];
        uchar um = tile[ty - 1][tx];
        uchar ur = tile[ty - 1][tx + 1];
        uchar ml = tile[ty][tx - 1];
        uchar mr = tile[ty][tx + 1];
        uchar ll = tile[ty + 1][tx - 1];
        uchar lm = tile[ty + 1][tx];
        uchar lr = tile[ty + 1][tx + 1];
        out_img[gy * width + gx] = compute_sobel(ul, um, ur, ml, mr, ll, lm, lr);
    }
}
"""


class SobelNvidia:
    """Host-side driver for the tiled kernel on one device."""

    def __init__(self, context: ocl.Context):
        self.context = context
        self.queue = context.queues[0]
        self.work_group: Tuple[int, int] = (TILE, TILE)
        self.program = ocl.Program(SOBEL_NVIDIA_KERNEL, "sobel_nvidia").build()

    def run(self, image: np.ndarray, sample_fraction: Optional[float] = None):
        """Run Sobel; returns ``(edges, kernel_event)``."""
        height, width = image.shape
        in_buf = self.context.create_buffer(image.nbytes, name="sobel_in")
        out_buf = self.context.create_buffer(image.nbytes, name="sobel_out")
        self.queue.enqueue_write_buffer(in_buf, image.astype(np.uint8))
        kernel = self.program.create_kernel("sobel_tiled")
        kernel.set_args(in_buf, out_buf, width, height)
        global_size = (
            (width + TILE - 1) // TILE * TILE,
            (height + TILE - 1) // TILE * TILE,
        )
        event = self.queue.enqueue_nd_range_kernel(
            kernel, global_size, self.work_group, sample_fraction
        )
        edges = None
        if event.info["groups_executed"] == event.info["groups_total"]:
            # Sampled (timing-only) runs leave the output partial; the
            # runtime forbids reading it back, so skip the transfer.
            data, _ = self.queue.enqueue_read_buffer(out_buf, np.uint8, image.size)
            edges = data.reshape(height, width)
        in_buf.release()
        out_buf.release()
        return edges, event
