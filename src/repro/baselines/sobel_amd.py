"""AMD-SDK-style Sobel baseline (the paper's Listing 1.6).

Characteristic of the AMD APP SDK sample: every work-item performs nine
*global* memory loads with manual index arithmetic and boundary checks —
no local memory.  This is exactly why Fig. 5 shows it clearly slower
than the NVIDIA and SkelCL versions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import ocl

SOBEL_AMD_KERNEL = """
uchar compute_sobel(int ul, int um, int ur,
                    int ml,         int mr,
                    int ll, int lm, int lr) {
    int h = -ul + ur - 2 * ml + 2 * mr - ll + lr;
    int v = -ul - 2 * um - ur + ll + 2 * lm + lr;
    return (uchar)sqrt((float)(h * h + v * v));
}

__kernel void sobel_kernel(__global const uchar* img,
                           __global uchar* out_img) {
    uint i = get_global_id(0);
    uint j = get_global_id(1);
    uint w = get_global_size(0);
    uint h = get_global_size(1);

    /* perform boundary checks */
    if (i >= 1 && i < (w - 1) && j >= 1 && j < (h - 1)) {
        uchar ul = img[((j - 1) * w) + (i - 1)];
        uchar um = img[((j - 1) * w) + (i + 0)];
        uchar ur = img[((j - 1) * w) + (i + 1)];
        uchar ml = img[((j + 0) * w) + (i - 1)];
        uchar mr = img[((j + 0) * w) + (i + 1)];
        uchar ll = img[((j + 1) * w) + (i - 1)];
        uchar lm = img[((j + 1) * w) + (i + 0)];
        uchar lr = img[((j + 1) * w) + (i + 1)];
        out_img[j * w + i] = compute_sobel(ul, um, ur, ml, mr, ll, lm, lr);
    } else if (i < w && j < h) {
        out_img[j * w + i] = 0;
    }
}
"""


class SobelAmd:
    """Host-side driver for the AMD-style kernel on one device."""

    def __init__(self, context: ocl.Context, work_group: Tuple[int, int] = (16, 16)):
        self.context = context
        self.queue = context.queues[0]
        self.work_group = work_group
        self.program = ocl.Program(SOBEL_AMD_KERNEL, "sobel_amd").build()

    def run(self, image: np.ndarray, sample_fraction: Optional[float] = None):
        """Run Sobel; returns ``(edges, kernel_event)``."""
        height, width = image.shape
        in_buf = self.context.create_buffer(image.nbytes, name="sobel_in")
        out_buf = self.context.create_buffer(image.nbytes, name="sobel_out")
        self.queue.enqueue_write_buffer(in_buf, image.astype(np.uint8))
        kernel = self.program.create_kernel("sobel_kernel")
        kernel.set_args(in_buf, out_buf)
        event = self.queue.enqueue_nd_range_kernel(
            kernel, (width, height), self.work_group, sample_fraction
        )
        edges = None
        if event.info["groups_executed"] == event.info["groups_total"]:
            # Sampled (timing-only) runs leave the output partial; the
            # runtime forbids reading it back, so skip the transfer.
            data, _ = self.queue.enqueue_read_buffer(out_buf, np.uint8, image.size)
            edges = data.reshape(height, width)
        in_buf.release()
        out_buf.release()
        return edges, event
