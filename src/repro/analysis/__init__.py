"""repro.analysis: correctness tooling for the simulated runtime ("SkelSan").

Two fronts:

* **Dynamic-graph race detection** (:mod:`repro.analysis.races`): every
  command enqueued on a :class:`repro.ocl.CommandQueue` records the set
  of buffer byte ranges it reads and writes
  (:mod:`repro.analysis.access`) plus its wait-list edges; the
  :class:`RaceDetector` runs a happens-before analysis over the
  recorded command graph and reports every pair of commands that
  conflict (at least one write, overlapping byte ranges) without an
  ordering path — with full provenance (device, command, enqueue site).

* **Affine access footprints** (:mod:`repro.analysis.affine`,
  "SkelAccess"): an abstract interpretation over the checked kernel AST
  that summarizes every ``__global``/``__constant`` pointer access as
  guarded affine forms over work-item ids and scalar parameters.
  Evaluated at enqueue time against the concrete NDRange, the summaries
  give the race detector exact (strided) byte ranges; statically they
  power the ``symbolic-oob`` and coalescing lint rules and the
  planner's fusion legality check.

* **Kernel-source linting** lives in :mod:`repro.kernelc.lint` (it is a
  pure AST analysis); :func:`lint_program` is re-exported here for
  convenience.

Enable the sanitizer per context (``Context(devices,
detect_races="strict")``) or process-wide via the ``SKELCL_SANITIZE``
environment variable (``off`` / ``report`` / ``strict``).
"""

from .access import BufferAccess, kernel_buffer_accesses, pointer_param_modes
from .affine import (
    AffineForm,
    Footprint,
    KernelSummary,
    UExpr,
    make_eval_env,
    resolve_footprint,
    summarize_kernel,
)
from .races import (
    Race,
    RaceDetector,
    RaceError,
    RaceWarning,
    SanitizeMode,
    resolve_sanitize_mode,
)

__all__ = [
    "AffineForm",
    "BufferAccess",
    "Footprint",
    "KernelSummary",
    "UExpr",
    "make_eval_env",
    "resolve_footprint",
    "summarize_kernel",
    "Race",
    "RaceDetector",
    "RaceError",
    "RaceWarning",
    "SanitizeMode",
    "kernel_buffer_accesses",
    "lint_program",
    "pointer_param_modes",
    "resolve_sanitize_mode",
]


def lint_program(program, sink=None):
    """Re-export of :func:`repro.kernelc.lint.lint_program` (lazy import
    so that ``repro.analysis`` stays importable on its own)."""
    from ..kernelc.lint import lint_program as _lint

    return _lint(program, sink)
