"""Happens-before race detection over the recorded command graph.

The asynchronous engine (PR 2) orders commands *only* through wait-list
edges: ``event_wait_list=None`` adds an implicit edge on the previously
enqueued command, an explicit list adds exactly those edges (plus any
active queue barrier).  Everything else — engine serialization, the
accident that two commands happened not to overlap in one simulated
schedule — is a scheduling artifact, not a guarantee.  Two commands
**race** when

* their access sets conflict (same buffer, overlapping byte ranges, at
  least one write), and
* neither is an ancestor of the other in the wait-list DAG.

Wait lists may only reference already-enqueued events, so global enqueue
order is a topological order of the DAG.  That makes *incremental*
checking at submit time both sound and complete: when command *e* is
enqueued, every command it could race with is already recorded, and no
later event can ever create an ordering path between two earlier events.
Each command therefore only needs its ancestor set (kept as a bitset
over enqueue indices) and a per-buffer index of prior accesses.

Modes: ``report`` warns (:class:`RaceWarning`) at the racy enqueue and
keeps going; ``strict`` raises :class:`RaceError` right there, so the
traceback points at the enqueue site that missed the edge.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .access import BufferAccess


class SanitizeMode(enum.Enum):
    OFF = "off"
    REPORT = "report"
    STRICT = "strict"


_ENV_VALUES = {
    "": SanitizeMode.OFF,
    "0": SanitizeMode.OFF,
    "off": SanitizeMode.OFF,
    "none": SanitizeMode.OFF,
    "report": SanitizeMode.REPORT,
    "warn": SanitizeMode.REPORT,
    "1": SanitizeMode.STRICT,
    "on": SanitizeMode.STRICT,
    "error": SanitizeMode.STRICT,
    "strict": SanitizeMode.STRICT,
}


def resolve_sanitize_mode(explicit=None) -> SanitizeMode:
    """Turn a ``Context(detect_races=...)`` argument into a mode.

    ``None`` defers to the configuration chain
    (``skelcl.configure(sanitize=...)``, then the ``SKELCL_SANITIZE``
    environment variable, default off); otherwise accepts a
    :class:`SanitizeMode`, a mode string, or a bool (``True`` →
    strict)."""
    if explicit is None:
        from .. import settings

        return SanitizeMode(settings.get("sanitize"))
    if isinstance(explicit, SanitizeMode):
        return explicit
    if isinstance(explicit, bool):
        return SanitizeMode.STRICT if explicit else SanitizeMode.OFF
    mode = _ENV_VALUES.get(str(explicit).strip().lower())
    if mode is None:
        raise ValueError(f"{explicit!r} is not a sanitize mode (off/report/strict)")
    return mode


class RaceWarning(UserWarning):
    """Emitted (``report`` mode) when an unordered conflicting pair is found."""


class RaceError(RuntimeError):
    """Raised (``strict`` mode) at the enqueue that completed a race."""


def _describe_event(event) -> str:
    parts = [f"{event.command_type} {event.name!r} (device {event.device_index}"]
    site = getattr(event, "enqueue_site", None)
    if site:
        parts.append(f", enqueued at {site}")
    parts.append(")")
    return "".join(parts)


@dataclass
class Race:
    """An unordered conflicting command pair, in enqueue order."""

    earlier: object  # Event
    later: object  # Event
    earlier_access: BufferAccess
    later_access: BufferAccess

    def __str__(self) -> str:
        return (
            f"data race on {self.later_access.buffer_name}"
            f"#{self.later_access.buffer_uid}: "
            f"{_describe_event(self.earlier)} {self.earlier_access.describe()} "
            f"while {_describe_event(self.later)} {self.later_access.describe()}, "
            f"and no wait-list path orders them"
        )


class RaceDetector:
    """Observes every submitted command and reports unordered conflicts.

    Attach one per :class:`~repro.ocl.Context`; the context installs it
    on each queue as ``queue._sanitizer`` and ``CommandQueue._submit``
    calls :meth:`observe` with the event after its wait list is final.
    """

    def __init__(self, mode: SanitizeMode = SanitizeMode.REPORT):
        self.mode = mode
        self.races: List[Race] = []
        self._index: Dict[int, int] = {}  # id(event) -> enqueue index
        self._events: List[object] = []
        self._ancestors: List[int] = []  # bitset of ancestor enqueue indices
        self._by_buffer: Dict[int, List[Tuple[int, BufferAccess]]] = {}

    @property
    def enabled(self) -> bool:
        return self.mode is not SanitizeMode.OFF

    def reset(self) -> None:
        """Forget the recorded graph (e.g. between benchmark runs)."""
        self.races.clear()
        self._index.clear()
        self._events.clear()
        self._ancestors.clear()
        self._by_buffer.clear()

    def observe(self, event) -> None:
        """Record ``event`` and check it against all prior commands."""
        if not self.enabled:
            return
        ancestors = 0
        for dep in event.wait_for:
            dep_idx = self._index.get(id(dep))
            if dep_idx is not None:  # deps from before a reset() are unknown
                ancestors |= self._ancestors[dep_idx] | (1 << dep_idx)
        accesses: Sequence[BufferAccess] = getattr(event, "accesses", ())
        found: List[Race] = []
        reported: set = set()  # one race per (earlier, later) pair
        for access in accesses:
            for prior_idx, prior_access in self._by_buffer.get(access.buffer_uid, ()):
                if prior_idx in reported:
                    continue
                if not access.conflicts_with(prior_access):
                    continue
                if (ancestors >> prior_idx) & 1:
                    continue
                reported.add(prior_idx)
                found.append(Race(self._events[prior_idx], event,
                                  prior_access, access))
        index = len(self._events)
        self._events.append(event)
        self._ancestors.append(ancestors)
        self._index[id(event)] = index
        for access in accesses:
            self._by_buffer.setdefault(access.buffer_uid, []).append((index, access))
        for race in found:
            self.races.append(race)
            if self.mode is SanitizeMode.STRICT:
                raise RaceError(str(race))
            warnings.warn(RaceWarning(str(race)), stacklevel=4)

    def __repr__(self) -> str:
        return (
            f"<RaceDetector mode={self.mode.value} "
            f"commands={len(self._events)} races={len(self.races)}>"
        )
