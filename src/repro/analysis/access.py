"""Buffer access sets: which byte ranges a command reads and writes.

Transfers declare their ranges directly (offset + length).  Kernel
launches derive theirs from static analysis of the kernel AST, at two
levels of precision:

* the *mode* level (:func:`pointer_param_modes`): for every
  ``__global``/``__constant`` pointer parameter, may the kernel read
  and/or write through it?  ``const``-qualified pointers are read-only
  by declaration; the analysis walks every store target and propagates
  through user-function calls.
* the *footprint* level (:mod:`repro.analysis.affine`): the affine
  access summary, evaluated against the concrete NDRange and scalar
  arguments, yields per-access-site byte ranges with a stride — so two
  kernels writing ``out[2*i]`` and ``out[2*i+1]`` produce provably
  disjoint access sets.

Anything either analysis cannot prove falls back to the whole-chunk
read+write range — both over-approximate, so the race detector never
misses a conflict because of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..kernelc import ast
from ..kernelc.ctypes_ import PointerType

READ = "r"
WRITE = "w"
READ_WRITE = "rw"

#: Above this many resolved ranges per parameter the per-site set is
#: collapsed to its dense hull, keeping race checks O(small).
_MAX_RANGES_PER_PARAM = 8


@dataclass(frozen=True)
class BufferAccess:
    """One command's access to a byte range of one buffer.

    ``stride == 0`` means the range is dense: every byte in
    ``[start, stop)`` may be touched.  ``stride > 0`` means only the
    arithmetic progression ``start + k*stride .. +width`` is touched —
    the footprint of a strided kernel access like ``out[2*gid]``.
    ``provenance`` names the originating kernel argument and index
    expression for race reports."""

    buffer_uid: int
    buffer_name: str
    start: int
    stop: int  # half-open [start, stop)
    mode: str  # READ, WRITE or READ_WRITE
    stride: int = 0
    width: int = 0
    provenance: str = ""

    @staticmethod
    def read(buffer, offset: int, nbytes: int) -> "BufferAccess":
        return BufferAccess(buffer.uid, buffer.name or "buffer",
                            int(offset), int(offset) + int(nbytes), READ)

    @staticmethod
    def write(buffer, offset: int, nbytes: int) -> "BufferAccess":
        return BufferAccess(buffer.uid, buffer.name or "buffer",
                            int(offset), int(offset) + int(nbytes), WRITE)

    @property
    def reads(self) -> bool:
        return READ in self.mode

    @property
    def writes(self) -> bool:
        return WRITE in self.mode

    def conflicts_with(self, other: "BufferAccess") -> bool:
        """True when the two accesses touch the same buffer, their byte
        ranges overlap, and at least one of them writes.  Strided
        accesses additionally compare residue classes: interleaved
        progressions that never share a byte do not conflict."""
        if self.buffer_uid != other.buffer_uid:
            return False
        if not (self.writes or other.writes):
            return False
        if not (self.start < other.stop and other.start < self.stop):
            return False
        return not _residue_disjoint(self, other)

    def describe(self) -> str:
        verb = {READ: "reads", WRITE: "writes", READ_WRITE: "reads+writes"}[self.mode]
        shape = f"[{self.start}:{self.stop}]"
        if self.stride:
            shape = f"[{self.start}:{self.stop}:{self.stride}]"
        text = f"{verb} {self.buffer_name}#{self.buffer_uid}{shape}"
        if self.provenance:
            text += f" ({self.provenance})"
        return text


def _residue_disjoint(a: BufferAccess, b: BufferAccess) -> bool:
    """True when two *overlapping* ranges provably share no byte
    because their strided progressions live in different residue
    classes (e.g. ``out[2*i]`` vs ``out[2*i+1]``)."""
    if not a.stride or not b.stride:
        return False  # a dense range meets everything in its span
    g = math.gcd(a.stride, b.stride)
    if g <= 1:
        return False
    # a touches [a.start + i*a.stride, +a.width); b likewise.  Modulo g
    # both progressions are fixed windows; they share a byte iff
    # a.start+u ≡ b.start+v (mod g) for some u in [0, a.width) and
    # v in [0, b.width), i.e. some delta ≡ (a.start - b.start) (mod g)
    # equals v-u and so lies in (-a.width, b.width).
    d0 = (a.start - b.start) % g
    lo = -a.width + 1
    delta = lo + ((d0 - lo) % g)
    return delta >= b.width


# -- kernel pointer-parameter access modes ----------------------------------


def _is_pointer_expr(expr: ast.Expr) -> bool:
    ctype = getattr(expr, "ctype", None)
    return isinstance(ctype, PointerType)


def _root_names(expr: ast.Expr) -> Set[str]:
    """Identifier names a store through ``expr`` as an lvalue may hit.

    Peels ``Index``/``Member``/``Cast``/unary-deref wrappers; for
    pointer arithmetic (``*(p + i)``) it keeps the side that is a
    pointer when types are known and both sides otherwise."""
    if isinstance(expr, ast.Identifier):
        return {expr.name}
    if isinstance(expr, ast.Index):
        return _root_names(expr.base)
    if isinstance(expr, ast.Member):
        return _root_names(expr.base)
    if isinstance(expr, ast.Cast):
        return _root_names(expr.operand)
    if isinstance(expr, ast.UnaryOp) and expr.op in ("*", "+", "-"):
        return _root_names(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        left, right = expr.left, expr.right
        if _is_pointer_expr(left) and not _is_pointer_expr(right):
            return _root_names(left)
        if _is_pointer_expr(right) and not _is_pointer_expr(left):
            return _root_names(right)
        return _root_names(left) | _root_names(right)
    if isinstance(expr, ast.Conditional):
        return _root_names(expr.then_expr) | _root_names(expr.else_expr)
    return set()


def _identifiers(expr: Optional[ast.Expr]) -> Set[str]:
    if expr is None:
        return set()
    return {n.name for n in ast.walk(expr) if isinstance(n, ast.Identifier)}


class _ModeAnalysis:
    """Interprocedural read/write analysis over pointer parameters."""

    def __init__(self, program: ast.Program):
        self.functions: Dict[str, ast.FunctionDef] = {
            fn.name: fn for fn in program.functions
        }
        # Declared access intents (jit ``/*@intent:func.param=rw*/``
        # markers) override the derived modes verbatim — the analysis
        # must not second-guess a declaration, so a declared ``rw`` on
        # a read-only body still reports ``rw``.
        source = getattr(program, "source", None)
        self._declared: Dict[Tuple[str, str], str] = (
            getattr(source, "declared_intents", None) or {}
        )
        self._cache: Dict[str, Dict[str, Set[str]]] = {}
        self._in_progress: Set[str] = set()

    def modes(self, fn: ast.FunctionDef) -> Dict[str, Set[str]]:
        """``param name -> subset of {'r', 'w'}`` for pointer params."""
        cached = self._cache.get(fn.name)
        if cached is not None:
            return cached
        pointer_params = {
            p.name: p.declared_type
            for p in fn.params
            if isinstance(p.declared_type, PointerType)
        }
        result: Dict[str, Set[str]] = {name: set() for name in pointer_params}
        if fn.name in self._in_progress:
            # Recursion: give up on precision for this cycle.
            return {name: {"r", "w"} for name in pointer_params}
        self._in_progress.add(fn.name)
        try:
            if fn.body is not None:
                self._scan_stmt(fn.body, result)
            for name, ctype in pointer_params.items():
                if ctype.is_const:
                    result[name] = {"r"} if result[name] else {"r"}
            for name in pointer_params:
                intent = self._declared.get((fn.name, name))
                if intent is not None:
                    result[name] = set(intent)
        finally:
            self._in_progress.discard(fn.name)
        self._cache[fn.name] = result
        return result

    # -- walking ---------------------------------------------------------

    def _mark(self, result: Dict[str, Set[str]], names: Set[str], flag: str) -> None:
        for name in names:
            if name in result:
                result[name].add(flag)

    def _scan_stmt(self, stmt: ast.Stmt, result: Dict[str, Set[str]]) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Expr):
                self._scan_expr_node(node, result)
            elif isinstance(node, ast.VarDecl) and node.init is not None:
                # A pointer parameter flowing into a local pointer
                # variable aliases it: assume the worst through the copy.
                if isinstance(node.declared_type, PointerType):
                    self._mark(result, _identifiers(node.init), "r")
                    self._mark(result, _identifiers(node.init), "w")

    def _scan_expr_node(self, node: ast.Expr, result: Dict[str, Set[str]]) -> None:
        if isinstance(node, ast.Assignment):
            roots = _root_names(node.target)
            if not isinstance(node.target, ast.Identifier):
                # Store through a deref/index: the pointee is written;
                # compound assignments (+= etc.) also read it.
                self._mark(result, roots, "w")
                if node.op != "=":
                    self._mark(result, roots, "r")
            elif _is_pointer_expr(node.value) or _identifiers(node.value) & set(result):
                # Re-seating a pointer variable from a parameter: alias.
                self._mark(result, _identifiers(node.value) & set(result), "r")
                self._mark(result, _identifiers(node.value) & set(result), "w")
        elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and node.op in ("++", "--"):
            if not isinstance(node.operand, ast.Identifier):
                roots = _root_names(node.operand)
                self._mark(result, roots, "r")
                self._mark(result, roots, "w")
        elif isinstance(node, ast.Index):
            # Reads through an index are marked here; stores were already
            # handled above, and the spurious extra "r" they pick up is a
            # harmless over-approximation only when the same pointer is
            # genuinely read elsewhere.
            if not self._is_store_target(node):
                self._mark(result, _root_names(node.base), "r")
        elif isinstance(node, ast.UnaryOp) and node.op == "*":
            if not self._is_store_target(node):
                self._mark(result, _root_names(node.operand), "r")
        elif isinstance(node, ast.Call):
            self._scan_call(node, result)

    def _is_store_target(self, node: ast.Expr) -> bool:
        # Pre-order walk visits the Assignment before its target, so the
        # flag is set by the time the Index/deref node is reached.
        return getattr(node, "_skelsan_store_target", False)

    def _scan_call(self, node: ast.Call, result: Dict[str, Set[str]]) -> None:
        callee = self.functions.get(node.callee)
        if callee is not None:
            callee_modes = self.modes(callee)
            for arg, param in zip(node.args, callee.params):
                names = _identifiers(arg) & set(result)
                if not names:
                    continue
                flags = callee_modes.get(param.name)
                if flags is None:
                    # Pointer passed as a non-pointer argument: ignore.
                    if isinstance(param.declared_type, PointerType):
                        self._mark(result, names, "r")
                        self._mark(result, names, "w")
                    continue
                for flag in flags or {"r"}:
                    self._mark(result, names, flag)
        else:
            # Builtin or unknown callee: passing a pointer to an unknown
            # function could do anything — stay conservative.
            for arg in node.args:
                if _is_pointer_expr(arg) or _identifiers(arg) & set(result):
                    names = _identifiers(arg) & set(result)
                    self._mark(result, names, "r")
                    self._mark(result, names, "w")


def _tag_store_targets(body: ast.Stmt) -> None:
    """Mark the outermost Index/deref node of every plain-assignment
    target so the read scan can skip it."""
    for node in ast.walk(body):
        if isinstance(node, ast.Assignment) and node.op == "=":
            target = node.target
            if isinstance(target, (ast.Index, ast.UnaryOp)):
                target._skelsan_store_target = True


def pointer_param_modes(program: ast.Program, fn: ast.FunctionDef) -> Dict[str, str]:
    """Access mode (``'r'``, ``'w'`` or ``'rw'``) per pointer parameter
    of ``fn``, derived from the (checked) AST.  Parameters the analysis
    never sees used default to ``'r'`` (a harmless under-claim: an
    unused pointer touches nothing)."""
    if fn.body is not None:
        _tag_store_targets(fn.body)
    modes = _ModeAnalysis(program).modes(fn)
    result: Dict[str, str] = {}
    for name, flags in modes.items():
        if "w" in flags and "r" in flags:
            result[name] = READ_WRITE
        elif "w" in flags:
            result[name] = WRITE
        else:
            result[name] = READ
    return result


def _param_modes(kernel) -> Dict[str, str]:
    compiled = kernel.compiled
    modes = getattr(compiled, "_skelsan_param_modes", None)
    if modes is None:
        program_ast = kernel.program.compiled.program
        modes = pointer_param_modes(program_ast, compiled.definition)
        compiled._skelsan_param_modes = modes
    return modes


def _kernel_summary(kernel):
    """The (cached) affine access summary of the bound kernel, or None
    when summarization itself failed."""
    from . import affine

    compiled = kernel.compiled
    marker = "_skelaccess_summary_result"
    cached = getattr(compiled, marker, False)
    if cached is not False:
        return cached
    try:
        program_ast = kernel.program.compiled.program
        summary = affine.summarize_kernel(program_ast, compiled.definition)
    except Exception:
        summary = None
    setattr(compiled, marker, summary)
    return summary


def _scalar_args(kernel) -> Dict[str, int]:
    """Integer scalar arguments by parameter name (the uniforms the
    affine evaluation substitutes)."""
    scalars: Dict[str, int] = {}
    for param, value in zip(kernel.compiled.definition.params, kernel._args):
        if getattr(value, "uid", None) is not None:
            continue
        if isinstance(value, bool):
            scalars[param.name] = int(value)
        elif isinstance(value, int):
            scalars[param.name] = value
        else:
            try:
                import numpy as np

                if isinstance(value, np.integer):
                    scalars[param.name] = int(value)
            except ImportError:  # pragma: no cover
                pass
    return scalars


def _count_summary(metrics, kind: str) -> None:
    if metrics is not None:
        metrics.counter("skelcl_access_summary_total", kind=kind).inc()


def _resolve_param(summary, param_name, value, env) -> Optional[List[BufferAccess]]:
    """Footprint-derived accesses for one Buffer argument, or None to
    fall back to the whole-chunk range."""
    from . import affine

    psum = summary.params.get(param_name)
    if psum is None or not psum.affine:
        return None
    resolved: List[BufferAccess] = []
    name = value.name or param_name
    for fp in psum.footprints:
        try:
            access = affine.resolve_footprint(fp, env, psum.elem_size,
                                              value.nbytes)
        except (affine.Unresolvable, KeyError, OverflowError):
            return None
        if access is None:
            continue  # guards infeasible for this launch
        provenance = f"arg {param_name}, index {fp.index.format()}"
        resolved.append(BufferAccess(
            value.uid, name, access.start, access.stop, fp.mode,
            access.stride, access.width, provenance))
    if len(resolved) > _MAX_RANGES_PER_PARAM:
        start = min(a.start for a in resolved)
        stop = max(a.stop for a in resolved)
        mode = psum.mode
        resolved = [BufferAccess(value.uid, name, start, stop, mode,
                                 provenance=f"arg {param_name}, {len(psum.footprints)} sites")]
    return _merge_ranges(resolved)


def _merge_ranges(accesses: List[BufferAccess]) -> List[BufferAccess]:
    """Coalesce identical-shape duplicates (one site reached through
    several paths) while keeping distinct strides/modes apart."""
    seen: Dict[tuple, BufferAccess] = {}
    for access in accesses:
        key = (access.start, access.stop, access.stride, access.width,
               access.mode)
        if key not in seen:
            seen[key] = access
    return list(seen.values())


def kernel_buffer_accesses(kernel, ndrange=None, metrics=None) -> List[BufferAccess]:
    """The buffer access set of a bound :class:`repro.ocl.Kernel`.

    With an ``ndrange``, every Buffer argument whose parameter has an
    affine summary yields exact per-site byte ranges (with stride and
    provenance), evaluated against the launch geometry and the integer
    scalar arguments; parameters the summary could not model — and
    every parameter when ``ndrange`` is None — keep the historic
    whole-buffer range with the mode from :func:`pointer_param_modes`.
    ``metrics`` (a SkelScope registry) counts each pointer argument
    under ``skelcl_access_summary_total{kind=affine|fallback}``.
    """
    from . import affine

    compiled = kernel.compiled
    modes = _param_modes(kernel)
    summary = _kernel_summary(kernel) if ndrange is not None else None
    env = None
    if summary is not None:
        env = affine.make_eval_env(ndrange.global_size, ndrange.local_size,
                                   _scalar_args(kernel))
    accesses: List[BufferAccess] = []
    for param, value in zip(compiled.definition.params, kernel._args):
        uid = getattr(value, "uid", None)
        if uid is None:  # not a Buffer (scalar/vector argument)
            continue
        resolved = None
        if env is not None:
            resolved = _resolve_param(summary, param.name, value, env)
        if resolved is not None:
            _count_summary(metrics, "affine")
            accesses.extend(resolved)
            continue
        if ndrange is not None:
            _count_summary(metrics, "fallback")
        mode = modes.get(param.name, READ_WRITE)
        accesses.append(BufferAccess(uid, value.name or param.name,
                                     0, value.nbytes, mode,
                                     provenance=f"arg {param.name}"))
    return accesses
