"""Buffer access sets: which byte ranges a command reads and writes.

Transfers declare their ranges directly (offset + length).  Kernel
launches derive theirs from a static analysis of the kernel AST: for
every ``__global``/``__constant`` pointer parameter the analysis decides
whether the kernel may *read* and/or *write* through it
(:func:`pointer_param_modes`).  ``const``-qualified pointers are
read-only by declaration; for the rest the analysis walks every store
target and propagates through user-function calls.  Anything it cannot
prove (pointer aliasing into locals, recursion) falls back to
read+write — the analysis over-approximates, so the race detector never
misses a conflict because of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..kernelc import ast
from ..kernelc.ctypes_ import PointerType

READ = "r"
WRITE = "w"
READ_WRITE = "rw"


@dataclass(frozen=True)
class BufferAccess:
    """One command's access to a byte range of one buffer."""

    buffer_uid: int
    buffer_name: str
    start: int
    stop: int  # half-open [start, stop)
    mode: str  # READ, WRITE or READ_WRITE

    @staticmethod
    def read(buffer, offset: int, nbytes: int) -> "BufferAccess":
        return BufferAccess(buffer.uid, buffer.name or "buffer",
                            int(offset), int(offset) + int(nbytes), READ)

    @staticmethod
    def write(buffer, offset: int, nbytes: int) -> "BufferAccess":
        return BufferAccess(buffer.uid, buffer.name or "buffer",
                            int(offset), int(offset) + int(nbytes), WRITE)

    @property
    def reads(self) -> bool:
        return READ in self.mode

    @property
    def writes(self) -> bool:
        return WRITE in self.mode

    def conflicts_with(self, other: "BufferAccess") -> bool:
        """True when the two accesses touch the same buffer, their byte
        ranges overlap, and at least one of them writes."""
        if self.buffer_uid != other.buffer_uid:
            return False
        if not (self.writes or other.writes):
            return False
        return self.start < other.stop and other.start < self.stop

    def describe(self) -> str:
        verb = {READ: "reads", WRITE: "writes", READ_WRITE: "reads+writes"}[self.mode]
        return f"{verb} {self.buffer_name}#{self.buffer_uid}[{self.start}:{self.stop}]"


# -- kernel pointer-parameter access modes ----------------------------------


def _is_pointer_expr(expr: ast.Expr) -> bool:
    ctype = getattr(expr, "ctype", None)
    return isinstance(ctype, PointerType)


def _root_names(expr: ast.Expr) -> Set[str]:
    """Identifier names a store through ``expr`` as an lvalue may hit.

    Peels ``Index``/``Member``/``Cast``/unary-deref wrappers; for
    pointer arithmetic (``*(p + i)``) it keeps the side that is a
    pointer when types are known and both sides otherwise."""
    if isinstance(expr, ast.Identifier):
        return {expr.name}
    if isinstance(expr, ast.Index):
        return _root_names(expr.base)
    if isinstance(expr, ast.Member):
        return _root_names(expr.base)
    if isinstance(expr, ast.Cast):
        return _root_names(expr.operand)
    if isinstance(expr, ast.UnaryOp) and expr.op in ("*", "+", "-"):
        return _root_names(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        left, right = expr.left, expr.right
        if _is_pointer_expr(left) and not _is_pointer_expr(right):
            return _root_names(left)
        if _is_pointer_expr(right) and not _is_pointer_expr(left):
            return _root_names(right)
        return _root_names(left) | _root_names(right)
    if isinstance(expr, ast.Conditional):
        return _root_names(expr.then_expr) | _root_names(expr.else_expr)
    return set()


def _identifiers(expr: Optional[ast.Expr]) -> Set[str]:
    if expr is None:
        return set()
    return {n.name for n in ast.walk(expr) if isinstance(n, ast.Identifier)}


class _ModeAnalysis:
    """Interprocedural read/write analysis over pointer parameters."""

    def __init__(self, program: ast.Program):
        self.functions: Dict[str, ast.FunctionDef] = {
            fn.name: fn for fn in program.functions
        }
        self._cache: Dict[str, Dict[str, Set[str]]] = {}
        self._in_progress: Set[str] = set()

    def modes(self, fn: ast.FunctionDef) -> Dict[str, Set[str]]:
        """``param name -> subset of {'r', 'w'}`` for pointer params."""
        cached = self._cache.get(fn.name)
        if cached is not None:
            return cached
        pointer_params = {
            p.name: p.declared_type
            for p in fn.params
            if isinstance(p.declared_type, PointerType)
        }
        result: Dict[str, Set[str]] = {name: set() for name in pointer_params}
        if fn.name in self._in_progress:
            # Recursion: give up on precision for this cycle.
            return {name: {"r", "w"} for name in pointer_params}
        self._in_progress.add(fn.name)
        try:
            if fn.body is not None:
                self._scan_stmt(fn.body, result)
            for name, ctype in pointer_params.items():
                if ctype.is_const:
                    result[name] = {"r"} if result[name] else {"r"}
        finally:
            self._in_progress.discard(fn.name)
        self._cache[fn.name] = result
        return result

    # -- walking ---------------------------------------------------------

    def _mark(self, result: Dict[str, Set[str]], names: Set[str], flag: str) -> None:
        for name in names:
            if name in result:
                result[name].add(flag)

    def _scan_stmt(self, stmt: ast.Stmt, result: Dict[str, Set[str]]) -> None:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Expr):
                self._scan_expr_node(node, result)
            elif isinstance(node, ast.VarDecl) and node.init is not None:
                # A pointer parameter flowing into a local pointer
                # variable aliases it: assume the worst through the copy.
                if isinstance(node.declared_type, PointerType):
                    self._mark(result, _identifiers(node.init), "r")
                    self._mark(result, _identifiers(node.init), "w")

    def _scan_expr_node(self, node: ast.Expr, result: Dict[str, Set[str]]) -> None:
        if isinstance(node, ast.Assignment):
            roots = _root_names(node.target)
            if not isinstance(node.target, ast.Identifier):
                # Store through a deref/index: the pointee is written;
                # compound assignments (+= etc.) also read it.
                self._mark(result, roots, "w")
                if node.op != "=":
                    self._mark(result, roots, "r")
            elif _is_pointer_expr(node.value) or _identifiers(node.value) & set(result):
                # Re-seating a pointer variable from a parameter: alias.
                self._mark(result, _identifiers(node.value) & set(result), "r")
                self._mark(result, _identifiers(node.value) & set(result), "w")
        elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and node.op in ("++", "--"):
            if not isinstance(node.operand, ast.Identifier):
                roots = _root_names(node.operand)
                self._mark(result, roots, "r")
                self._mark(result, roots, "w")
        elif isinstance(node, ast.Index):
            # Reads through an index are marked here; stores were already
            # handled above, and the spurious extra "r" they pick up is a
            # harmless over-approximation only when the same pointer is
            # genuinely read elsewhere.
            if not self._is_store_target(node):
                self._mark(result, _root_names(node.base), "r")
        elif isinstance(node, ast.UnaryOp) and node.op == "*":
            if not self._is_store_target(node):
                self._mark(result, _root_names(node.operand), "r")
        elif isinstance(node, ast.Call):
            self._scan_call(node, result)

    def _is_store_target(self, node: ast.Expr) -> bool:
        # Pre-order walk visits the Assignment before its target, so the
        # flag is set by the time the Index/deref node is reached.
        return getattr(node, "_skelsan_store_target", False)

    def _scan_call(self, node: ast.Call, result: Dict[str, Set[str]]) -> None:
        callee = self.functions.get(node.callee)
        if callee is not None:
            callee_modes = self.modes(callee)
            for arg, param in zip(node.args, callee.params):
                names = _identifiers(arg) & set(result)
                if not names:
                    continue
                flags = callee_modes.get(param.name)
                if flags is None:
                    # Pointer passed as a non-pointer argument: ignore.
                    if isinstance(param.declared_type, PointerType):
                        self._mark(result, names, "r")
                        self._mark(result, names, "w")
                    continue
                for flag in flags or {"r"}:
                    self._mark(result, names, flag)
        else:
            # Builtin or unknown callee: passing a pointer to an unknown
            # function could do anything — stay conservative.
            for arg in node.args:
                if _is_pointer_expr(arg) or _identifiers(arg) & set(result):
                    names = _identifiers(arg) & set(result)
                    self._mark(result, names, "r")
                    self._mark(result, names, "w")


def _tag_store_targets(body: ast.Stmt) -> None:
    """Mark the outermost Index/deref node of every plain-assignment
    target so the read scan can skip it."""
    for node in ast.walk(body):
        if isinstance(node, ast.Assignment) and node.op == "=":
            target = node.target
            if isinstance(target, (ast.Index, ast.UnaryOp)):
                target._skelsan_store_target = True


def pointer_param_modes(program: ast.Program, fn: ast.FunctionDef) -> Dict[str, str]:
    """Access mode (``'r'``, ``'w'`` or ``'rw'``) per pointer parameter
    of ``fn``, derived from the (checked) AST.  Parameters the analysis
    never sees used default to ``'r'`` (a harmless under-claim: an
    unused pointer touches nothing)."""
    if fn.body is not None:
        _tag_store_targets(fn.body)
    modes = _ModeAnalysis(program).modes(fn)
    result: Dict[str, str] = {}
    for name, flags in modes.items():
        if "w" in flags and "r" in flags:
            result[name] = READ_WRITE
        elif "w" in flags:
            result[name] = WRITE
        else:
            result[name] = READ
    return result


def kernel_buffer_accesses(kernel) -> List[BufferAccess]:
    """The buffer access set of a bound :class:`repro.ocl.Kernel`: one
    record per Buffer argument, spanning the whole buffer, with the mode
    from :func:`pointer_param_modes` (cached per compiled kernel)."""
    compiled = kernel.compiled
    modes = getattr(compiled, "_skelsan_param_modes", None)
    if modes is None:
        program_ast = kernel.program.compiled.program
        modes = pointer_param_modes(program_ast, compiled.definition)
        compiled._skelsan_param_modes = modes
    accesses: List[BufferAccess] = []
    for param, value in zip(compiled.definition.params, kernel._args):
        uid = getattr(value, "uid", None)
        if uid is None:  # not a Buffer (scalar/vector argument)
            continue
        mode = modes.get(param.name, READ_WRITE)
        accesses.append(BufferAccess(uid, value.name or param.name,
                                     0, value.nbytes, mode))
    return accesses
