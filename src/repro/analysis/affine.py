"""SkelAccess: affine access-footprint analysis over checked kernel ASTs.

Summarizes every access a kernel makes through a ``__global`` /
``__constant`` pointer parameter as a set of *affine footprints*::

    index = base + stride_g * get_global_id(d) + stride_l * get_local_id(d)
                 + sum(c_i * uniform_i)       (elements, not bytes)

where the uniform symbols are integer scalar parameters, NDRange sizes
(``get_global_size`` etc.) and fresh loop-induction symbols.  Each
footprint carries the *guards* (affine inequalities ``f <= 0``) under
which the access executes — the ``if (SCL_ID < SCL_N)`` wrapper every
skeleton emits, loop conditions, clamp chains.

The analysis is a path-sensitive abstract interpretation:

* scalar integer variables are tracked as small sets of guarded
  alternatives ``(form, guards)`` (capped at :data:`MAX_ALTS`), so
  boundary-handling chains like NEAREST clamping stay affine;
* pointer values are tracked to their *root* — a kernel pointer
  parameter or a fixed-size (``__local``/private) array — through
  pointer arithmetic, ``&a[i]`` and user-function calls;
* ``for`` loops with an affine start and uniform step bind the
  induction variable to ``start + step * t`` for a fresh symbol ``t``
  and guard the body with the loop condition (covers the grid-stride
  reduce loop); other loops havoc what they assign;
* anything non-affine (division, unknown builtins, aliasing the
  analysis cannot root) demotes the affected parameter to the historic
  whole-chunk *fallback* mode, so consumers never under-approximate.

At enqueue time :func:`make_eval_env` / :func:`resolve_footprint`
substitute the concrete NDRange and scalar arguments, narrow the
work-item symbol ranges through the guards, and produce exact byte
ranges with a gcd-derived stride (``out[2*gid]`` and ``out[2*gid+1]``
resolve to interleaved, *disjoint* strided ranges).

Unsigned wrap-around is deliberately ignored: an index that wraps past
2^64 faults in the interpreter long before the footprint matters, and
modelling it would cost every summary its precision.

Consumers: :mod:`repro.analysis.access` (SkelSan byte-range races),
:mod:`repro.kernelc.lint` (``symbolic-oob``, ``uncoalesced-access``,
``strided-global-read``), :mod:`repro.plan.compose` (fusion legality)
and :mod:`repro.skelcl.mapoverlap` (footprint-shrunk halo transfers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..kernelc import ast
from ..kernelc.ctypes_ import ArrayType, CType, PointerType, VectorType

# Symbols are tuples.  Uniform (same value for every work-item):
#   ("param", name) ("gsize", d) ("lsize", d) ("ngroups", d)
# Variant (distinguish work-items / loop iterations):
#   ("gid", d) ("lid", d) ("grp", d) ("iv", n)
Sym = Tuple

#: Alternatives tracked per scalar variable / expression before the
#: analysis gives up on path sensitivity.
MAX_ALTS = 8

#: Loop-induction symbols are unbounded above; evaluation clips them.
IV_LIMIT = 1 << 40


def is_variant(sym: Sym) -> bool:
    return sym[0] in ("gid", "lid", "grp", "iv")


def _format_sym(sym: Sym) -> str:
    kind = sym[0]
    if kind == "param":
        return str(sym[1])
    if kind == "iv":
        return f"t{sym[1]}"
    name = {"gid": "get_global_id", "lid": "get_local_id",
            "grp": "get_group_id", "gsize": "get_global_size",
            "lsize": "get_local_size", "ngroups": "get_num_groups"}[kind]
    return f"{name}({sym[1]})"


class UExpr:
    """An integer polynomial over *uniform* symbols.

    ``terms`` maps a sorted monomial (tuple of symbols) to its integer
    coefficient; the empty monomial is the constant term.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[Tuple[Sym, ...], int]] = None):
        self.terms: Dict[Tuple[Sym, ...], int] = {
            m: c for m, c in (terms or {}).items() if c != 0
        }

    @staticmethod
    def const(value: int) -> "UExpr":
        return UExpr({(): int(value)})

    @staticmethod
    def sym(symbol: Sym) -> "UExpr":
        return UExpr({(symbol,): 1})

    @property
    def is_const(self) -> bool:
        return all(m == () for m in self.terms)

    @property
    def const_value(self) -> int:
        return self.terms.get((), 0)

    def __add__(self, other: "UExpr") -> "UExpr":
        terms = dict(self.terms)
        for m, c in other.terms.items():
            terms[m] = terms.get(m, 0) + c
        return UExpr(terms)

    def __sub__(self, other: "UExpr") -> "UExpr":
        return self + (-other)

    def __neg__(self) -> "UExpr":
        return UExpr({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "UExpr") -> "UExpr":
        terms: Dict[Tuple[Sym, ...], int] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = tuple(sorted(m1 + m2))
                terms[m] = terms.get(m, 0) + c1 * c2
        return UExpr(terms)

    def evaluate(self, uniforms: Dict[Sym, int]) -> int:
        total = 0
        for m, c in self.terms.items():
            value = c
            for symbol in m:
                value *= uniforms[symbol]  # KeyError -> unresolvable
            total += value
        return total

    def key(self):
        return tuple(sorted(self.terms.items()))

    def __eq__(self, other) -> bool:
        return isinstance(other, UExpr) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"UExpr({self.format()})"

    def format(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for m, c in sorted(self.terms.items()):
            names = "*".join(_format_sym(s) for s in m)
            if not names:
                parts.append(str(c))
            elif c == 1:
                parts.append(names)
            elif c == -1:
                parts.append(f"-{names}")
            else:
                parts.append(f"{c}*{names}")
        text = parts[0]
        for part in parts[1:]:
            text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return text


class AffineForm:
    """``base + sum(coeff[s] * s)`` over variant symbols ``s``, with
    :class:`UExpr` (uniform) coefficients."""

    __slots__ = ("base", "terms")

    def __init__(self, base: UExpr, terms: Optional[Dict[Sym, UExpr]] = None):
        self.base = base
        self.terms: Dict[Sym, UExpr] = {
            s: c for s, c in (terms or {}).items() if c.terms
        }

    @staticmethod
    def const(value: int) -> "AffineForm":
        return AffineForm(UExpr.const(value))

    @staticmethod
    def sym(symbol: Sym) -> "AffineForm":
        if is_variant(symbol):
            return AffineForm(UExpr.const(0), {symbol: UExpr.const(1)})
        return AffineForm(UExpr.sym(symbol))

    @property
    def is_uniform(self) -> bool:
        return not self.terms

    @property
    def is_const(self) -> bool:
        return not self.terms and self.base.is_const

    @property
    def const_value(self) -> int:
        return self.base.const_value

    def __add__(self, other: "AffineForm") -> "AffineForm":
        terms = dict(self.terms)
        for s, c in other.terms.items():
            terms[s] = terms.get(s, UExpr()) + c
        return AffineForm(self.base + other.base, terms)

    def __sub__(self, other: "AffineForm") -> "AffineForm":
        return self + (-other)

    def __neg__(self) -> "AffineForm":
        return AffineForm(-self.base, {s: -c for s, c in self.terms.items()})

    def scale(self, factor: UExpr) -> "AffineForm":
        return AffineForm(self.base * factor,
                          {s: c * factor for s, c in self.terms.items()})

    def mul(self, other: "AffineForm") -> Optional["AffineForm"]:
        """Product when at least one side is uniform; None otherwise."""
        if other.is_uniform:
            return self.scale(other.base)
        if self.is_uniform:
            return other.scale(self.base)
        return None

    def key(self):
        return (self.base.key(),
                tuple(sorted((s, c.key()) for s, c in self.terms.items())))

    def __eq__(self, other) -> bool:
        return (isinstance(other, AffineForm) and self.base == other.base
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return f"AffineForm({self.format()})"

    def format(self) -> str:
        parts = []
        for s, c in sorted(self.terms.items()):
            if c.is_const and c.const_value == 1:
                parts.append(_format_sym(s))
            elif c.is_const:
                parts.append(f"{c.const_value}*{_format_sym(s)}")
            else:
                parts.append(f"({c.format()})*{_format_sym(s)}")
        base = self.base.format()
        if base != "0" or not parts:
            parts.append(base)
        text = parts[0]
        for part in parts[1:]:
            text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return text


# A guard is an AffineForm ``f`` asserting ``f <= 0``.
Guard = AffineForm
Guards = Tuple[Guard, ...]
# One guarded alternative value of a scalar expression; ``None`` form
# means "unknown" (non-affine).
Alt = Tuple[Optional[AffineForm], Guards]
Alts = Tuple[Alt, ...]

_UNKNOWN: Alts = ((None, ()),)


def _single_form(alts: Alts) -> Optional[AffineForm]:
    """The unique unguarded form of ``alts``, or None."""
    if len(alts) == 1 and alts[0][0] is not None and not alts[0][1]:
        return alts[0][0]
    return None


# -- summary data model ------------------------------------------------------


@dataclass(frozen=True)
class Footprint:
    """One static access site through a pointer parameter."""

    param: str
    mode: str  # 'r' or 'w'
    index: AffineForm  # element index
    guards: Guards
    expr: str  # source text of the access, for provenance
    span: object = None

    def warp_stride(self) -> Optional[int]:
        """Element stride between lane-adjacent work-items (dimension
        0), or None when it is symbolic (uniform but not constant)."""
        stride = UExpr()
        for sym in (("gid", 0), ("lid", 0)):
            stride = stride + self.index.terms.get(sym, UExpr())
        if stride.is_const:
            return stride.const_value
        return None


@dataclass(frozen=True)
class ArraySite:
    """An access into a fixed-size array (``__local`` tiles etc.)."""

    name: str
    length: int
    mode: str
    index: Optional[AffineForm]
    guards: Guards
    expr: str
    span: object = None


@dataclass
class ParamSummary:
    name: str
    space: str  # address space of the pointee
    elem_size: int
    footprints: List[Footprint] = field(default_factory=list)
    fallback_reason: Optional[str] = None  # None = fully affine

    @property
    def affine(self) -> bool:
        return self.fallback_reason is None

    @property
    def mode(self) -> str:
        reads = any(f.mode == "r" for f in self.footprints)
        writes = any(f.mode == "w" for f in self.footprints)
        if reads and writes:
            return "rw"
        if writes:
            return "w"
        return "r"


@dataclass
class KernelSummary:
    kernel: str
    params: Dict[str, ParamSummary]
    array_sites: List[ArraySite]
    #: reqd_work_group_size attribute values, or None.
    reqd_wg: Optional[Tuple[int, int, int]] = None

    @property
    def affine_sites(self) -> int:
        return sum(len(p.footprints) for p in self.params.values() if p.affine)

    @property
    def fallback_params(self) -> List[str]:
        return [n for n, p in self.params.items() if not p.affine]


class _Ptr:
    """A pointer value rooted at a parameter or fixed array."""

    __slots__ = ("kind", "name", "length", "elem_size", "space", "offset")

    def __init__(self, kind: str, name: str, offset: AffineForm,
                 length: int = 0, elem_size: int = 1, space: str = "private"):
        self.kind = kind  # "param" or "array"
        self.name = name
        self.offset = offset
        self.length = length  # elements ("array" roots only)
        self.elem_size = elem_size
        self.space = space

    def shifted(self, delta: AffineForm) -> "_Ptr":
        return _Ptr(self.kind, self.name, self.offset + delta,
                    self.length, self.elem_size, self.space)


class _GiveUp(Exception):
    """Internal: abandon the current evaluation (value becomes unknown)."""


def _source_text(program: ast.Program, span) -> str:
    source = getattr(program, "source", None)
    if source is None or span is None:
        return ""
    try:
        text = source.text[span.start.offset:span.end.offset]
    except Exception:
        return ""
    return " ".join(text.split())


def _parse_reqd_wg(fn: ast.FunctionDef) -> Optional[Tuple[int, int, int]]:
    import re

    for attr in getattr(fn, "attributes", ()):
        m = re.match(r"reqd_work_group_size\((\d+)(?:,(\d+))?(?:,(\d+))?\)",
                     attr.replace(" ", ""))
        if m:
            return (int(m.group(1)), int(m.group(2) or 1), int(m.group(3) or 1))
    return None


# -- the scanner -------------------------------------------------------------

_DIM_SYMS = {"get_global_id": "gid", "get_local_id": "lid",
             "get_group_id": "grp", "get_global_size": "gsize",
             "get_local_size": "lsize", "get_num_groups": "ngroups"}

_MAX_CALL_DEPTH = 8


class _Scanner:
    def __init__(self, program: ast.Program, fn: ast.FunctionDef):
        self.program = program
        self.fn = fn
        self.functions = {f.name: f for f in program.functions}
        self.footprints: List[Footprint] = []
        self.array_sites: List[ArraySite] = []
        self.fallbacks: Dict[str, str] = {}  # param -> reason
        self.guards: List[Guard] = []
        self._iv_counter = 0
        self._call_stack: List[str] = []
        self.pointer_params: Dict[str, PointerType] = {
            p.name: p.declared_type for p in fn.params
            if isinstance(p.declared_type, PointerType)
        }

    # -- entry ---------------------------------------------------------------

    def run(self) -> None:
        env: Dict[str, Alts] = {}
        ptrs: Dict[str, Optional[_Ptr]] = {}
        for param in self.fn.params:
            ctype = param.declared_type
            if isinstance(ctype, PointerType):
                try:
                    elem = ctype.pointee.sizeof()
                except TypeError:
                    elem = 1
                ptrs[param.name] = _Ptr("param", param.name,
                                        AffineForm.const(0), 0, elem,
                                        ctype.address_space)
            elif isinstance(ctype, ArrayType):
                ptrs[param.name] = None
            elif ctype.is_integer():
                env[param.name] = ((AffineForm.sym(("param", param.name)), ()),)
            else:
                env[param.name] = _UNKNOWN
        for decl in getattr(self.program, "globals", []):
            inner = decl.decl
            if isinstance(inner.declared_type, ArrayType):
                try:
                    elem = inner.declared_type.base_element().sizeof()
                except TypeError:
                    elem = 1
                ptrs[inner.name] = _Ptr(
                    "array", inner.name, AffineForm.const(0),
                    inner.declared_type.flat_length(), elem,
                    inner.address_space)
        if self.fn.body is not None:
            self.exec_stmt(self.fn.body, env, ptrs)

    def _fallback(self, name: str, reason: str) -> None:
        if name in self.pointer_params and name not in self.fallbacks:
            self.fallbacks[name] = reason

    def _fallback_expr(self, expr: ast.Expr, reason: str) -> None:
        """Demote every pointer parameter mentioned in ``expr``."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Identifier):
                self._fallback(node.name, reason)

    def _fresh_iv(self) -> Sym:
        self._iv_counter += 1
        return ("iv", self._iv_counter)

    # -- access recording ----------------------------------------------------

    def _record(self, ptr: Optional[_Ptr], index: Alts, mode: str,
                node: ast.Expr) -> None:
        if ptr is None:
            return
        text = _source_text(self.program, node.span)
        guards = tuple(self.guards)
        for form, alt_guards in index:
            total = None
            if form is not None and ptr.offset is not None:
                total = ptr.offset + form
            if ptr.kind == "param":
                if ptr.space not in ("global", "constant"):
                    continue
                if total is None:
                    self._fallback(ptr.name, f"non-affine index in {text!r}")
                    continue
                self.footprints.append(Footprint(
                    ptr.name, mode, total, guards + alt_guards, text,
                    node.span))
            else:  # fixed-size array (symbolic-oob sites)
                self.array_sites.append(ArraySite(
                    ptr.name, ptr.length, mode, total, guards + alt_guards,
                    text, node.span))

    # -- expression evaluation ----------------------------------------------

    def eval_int(self, expr: ast.Expr, env, ptrs) -> Alts:
        """Evaluate an integer-valued expression to guarded alternatives,
        collecting any accesses it performs."""
        try:
            return self._eval(expr, env, ptrs)
        except _GiveUp:
            return _UNKNOWN

    def _eval(self, expr: ast.Expr, env, ptrs) -> Alts:
        if isinstance(expr, ast.IntLiteral):
            return ((AffineForm.const(expr.value), ()),)
        if isinstance(expr, ast.CharLiteral):
            return ((AffineForm.const(expr.value), ()),)
        if isinstance(expr, ast.Identifier):
            if expr.name in ptrs:
                return _UNKNOWN  # pointer used as value: not an int
            return env.get(expr.name, _UNKNOWN)
        if isinstance(expr, ast.Cast):
            target = expr.target_type
            inner = self._eval_any(expr.operand, env, ptrs)
            if isinstance(target, CType) and target.is_integer():
                return inner
            return _UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, env, ptrs)
        if isinstance(expr, ast.PostfixOp):
            self._apply_incdec(expr, env, ptrs)
            return _UNKNOWN
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env, ptrs)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, env, ptrs)
        if isinstance(expr, ast.Conditional):
            return self._eval_conditional(expr, env, ptrs)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env, ptrs)
        if isinstance(expr, ast.Index):
            ptr, index = self._eval_access(expr, env, ptrs)
            self._record(ptr, index, "r", expr)
            return _UNKNOWN
        if isinstance(expr, ast.Member):
            self._eval_any(expr.base, env, ptrs)
            return _UNKNOWN
        if isinstance(expr, ast.CommaExpr):
            result: Alts = _UNKNOWN
            for part in expr.parts:
                result = self._eval_any(part, env, ptrs)
            return result
        if isinstance(expr, (ast.VectorLiteral,)):
            for element in expr.elements:
                self._eval_any(element, env, ptrs)
            return _UNKNOWN
        if isinstance(expr, ast.SizeofExpr):
            try:
                if expr.queried_type is not None:
                    return ((AffineForm.const(expr.queried_type.sizeof()), ()),)
                if expr.operand is not None and expr.operand.ctype is not None:
                    return ((AffineForm.const(expr.operand.ctype.sizeof()), ()),)
            except TypeError:
                pass
            return _UNKNOWN
        return _UNKNOWN

    def _eval_any(self, expr: ast.Expr, env, ptrs) -> Alts:
        """Evaluate for side effects/accesses; pointer-typed expressions
        return unknown-int but are still scanned."""
        ptr = self._eval_pointer(expr, env, ptrs, record=True)
        if ptr is not _NOT_POINTER:
            return _UNKNOWN
        return self.eval_int(expr, env, ptrs)

    def _eval_unary(self, expr: ast.UnaryOp, env, ptrs) -> Alts:
        op = expr.op
        if op in ("++", "--"):
            self._apply_incdec(expr, env, ptrs)
            return _UNKNOWN
        if op == "*":
            ptr, _ = self._deref_site(expr, env, ptrs)
            self._record(ptr, ((AffineForm.const(0), ()),), "r", expr)
            return _UNKNOWN
        if op == "&":
            return _UNKNOWN
        inner = self.eval_int(expr.operand, env, ptrs)
        if op == "+":
            return inner
        if op == "-":
            return tuple((None if f is None else -f, g) for f, g in inner)
        return _UNKNOWN  # ! ~ on values

    def _eval_binary(self, expr: ast.BinaryOp, env, ptrs) -> Alts:
        op = expr.op
        if op in ("&&", "||"):
            self._eval_any(expr.left, env, ptrs)
            self._eval_any(expr.right, env, ptrs)
            return _UNKNOWN
        left = self._eval_any(expr.left, env, ptrs)
        right = self._eval_any(expr.right, env, ptrs)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return _UNKNOWN
        combos: List[Alt] = []
        for lf, lg in left:
            for rf, rg in right:
                combos.append(self._combine(op, lf, rf, lg + rg))
                if len(combos) > MAX_ALTS:
                    return _UNKNOWN
        return tuple(combos)

    def _combine(self, op: str, lf: Optional[AffineForm],
                 rf: Optional[AffineForm], guards: Guards) -> Alt:
        if lf is None or rf is None:
            return (None, guards)
        if op == "+":
            return (lf + rf, guards)
        if op == "-":
            return (lf - rf, guards)
        if op == "*":
            return (lf.mul(rf), guards)
        if op == "<<" and rf.is_const and 0 <= rf.const_value < 31:
            return (lf.scale(UExpr.const(1 << rf.const_value)), guards)
        if op in ("/", "%") and lf.is_const and rf.is_const and rf.const_value:
            # C integer division truncates toward zero.
            lv, rv = lf.const_value, rf.const_value
            quot = abs(lv) // abs(rv)
            if (lv < 0) != (rv < 0):
                quot = -quot
            if op == "/":
                return (AffineForm.const(quot), guards)
            return (AffineForm.const(lv - quot * rv), guards)
        return (None, guards)

    def _eval_conditional(self, expr: ast.Conditional, env, ptrs) -> Alts:
        then_guards, else_guards = self.cond_guards(expr.condition, env, ptrs)
        then_alts = self._eval_any(expr.then_expr, env, ptrs)
        else_alts = self._eval_any(expr.else_expr, env, ptrs)
        if then_guards is None or else_guards is None:
            return _UNKNOWN
        merged = tuple((f, g + then_guards) for f, g in then_alts) + \
            tuple((f, g + else_guards) for f, g in else_alts)
        if len(merged) > MAX_ALTS:
            return _UNKNOWN
        return merged

    def _eval_assignment(self, expr: ast.Assignment, env, ptrs) -> Alts:
        value = self._eval_any(expr.value, env, ptrs)
        target = expr.target
        if isinstance(target, ast.Identifier):
            name = target.name
            if name in ptrs:
                new_ptr = self._eval_pointer(expr.value, env, ptrs)
                if new_ptr is _NOT_POINTER or new_ptr is None:
                    self._poison_pointer_expr(expr.value)
                    ptrs[name] = None
                elif expr.op == "=":
                    ptrs[name] = new_ptr
                else:
                    ptrs[name] = None
                return _UNKNOWN
            if expr.op == "=":
                env[name] = value
            elif expr.op in ("+=", "-="):
                old = env.get(name, _UNKNOWN)
                combos: List[Alt] = []
                op = "+" if expr.op == "+=" else "-"
                for of, og in old:
                    for vf, vg in value:
                        combos.append(self._combine(op, of, vf, og + vg))
                env[name] = tuple(combos) if len(combos) <= MAX_ALTS else _UNKNOWN
            else:
                env[name] = _UNKNOWN
            return env[name] if name in env else _UNKNOWN
        # Store through an index / deref.
        mode_extra_read = expr.op != "="
        if isinstance(target, ast.Index):
            ptr, index = self._eval_access(target, env, ptrs)
            self._record(ptr, index, "w", target)
            if mode_extra_read:
                self._record(ptr, index, "r", target)
        elif isinstance(target, ast.UnaryOp) and target.op == "*":
            ptr, _ = self._deref_site(target, env, ptrs)
            zero = ((AffineForm.const(0), ()),)
            self._record(ptr, zero, "w", target)
            if mode_extra_read:
                self._record(ptr, zero, "r", target)
        elif isinstance(target, ast.Member):
            base = target.base
            if isinstance(base, ast.Index):
                ptr, index = self._eval_access(base, env, ptrs)
                self._record(ptr, index, "w", base)
        return value

    def _apply_incdec(self, expr, env, ptrs) -> None:
        operand = expr.operand
        if isinstance(operand, ast.Identifier) and operand.name not in ptrs:
            delta = AffineForm.const(1 if expr.op == "++" else -1)
            old = env.get(operand.name, _UNKNOWN)
            env[operand.name] = tuple(
                (None if f is None else f + delta, g) for f, g in old)
        elif isinstance(operand, ast.Identifier):
            ptrs[operand.name] = None
        else:
            self._eval_any(operand, env, ptrs)

    # -- pointers ------------------------------------------------------------

    def _eval_pointer(self, expr: ast.Expr, env, ptrs, record: bool = False):
        """Pointer value of ``expr``: a _Ptr, None (unknown pointer) or
        _NOT_POINTER when the expression is not pointer-typed."""
        ctype = getattr(expr, "ctype", None)
        is_ptr = isinstance(ctype, PointerType) or isinstance(ctype, ArrayType)
        if isinstance(expr, ast.Identifier):
            if expr.name in ptrs:
                return ptrs[expr.name]
            return None if is_ptr else _NOT_POINTER
        if not is_ptr and not (isinstance(expr, ast.UnaryOp) and expr.op == "&"):
            return _NOT_POINTER
        if isinstance(expr, ast.Cast):
            return self._eval_pointer(expr.operand, env, ptrs, record)
        if isinstance(expr, ast.UnaryOp) and expr.op == "&":
            operand = expr.operand
            if isinstance(operand, ast.Index):
                base_ptr, index = self._eval_access(operand, env, ptrs)
                form = _pick_form(index)
                if base_ptr is not None and form is not None:
                    return base_ptr.shifted(form)
                return None
            return None
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
            left_ptr = self._eval_pointer(expr.left, env, ptrs)
            right_ptr = self._eval_pointer(expr.right, env, ptrs)
            if left_ptr is not _NOT_POINTER and right_ptr is _NOT_POINTER:
                delta = _pick_form(self.eval_int(expr.right, env, ptrs))
                if left_ptr is None or delta is None:
                    return None
                if expr.op == "-":
                    delta = -delta
                return left_ptr.shifted(delta)
            if right_ptr is not _NOT_POINTER and expr.op == "+":
                delta = _pick_form(self.eval_int(expr.left, env, ptrs))
                if right_ptr is None or delta is None:
                    return None
                return right_ptr.shifted(delta)
            return None
        if isinstance(expr, ast.Index):
            # a[i] where a is an array of arrays: pointer to the row.
            base_ptr, index = self._eval_access(expr, env, ptrs)
            form = _pick_form(index)
            if base_ptr is not None and form is not None:
                return base_ptr.shifted(form)
            return None
        if isinstance(expr, ast.Conditional):
            return None
        return None if is_ptr else _NOT_POINTER

    def _poison_pointer_expr(self, expr: ast.Expr) -> None:
        self._fallback_expr(expr, "pointer aliasing the analysis cannot root")

    def _deref_site(self, expr: ast.UnaryOp, env, ptrs):
        ptr = self._eval_pointer(expr.operand, env, ptrs)
        if ptr is _NOT_POINTER or ptr is None:
            self._poison_pointer_expr(expr.operand)
            return None, None
        return ptr, None

    def _eval_access(self, expr: ast.Index, env, ptrs):
        """(_Ptr or None, index Alts) for ``base[index]``; scales the
        index by the row length for arrays of arrays."""
        base_ptr = self._eval_pointer(expr.base, env, ptrs)
        index = self.eval_int(expr.index, env, ptrs)
        if base_ptr is _NOT_POINTER or base_ptr is None:
            self._poison_pointer_expr(expr.base)
            return None, index
        base_type = getattr(expr.base, "ctype", None)
        element = None
        if isinstance(base_type, PointerType):
            element = base_type.pointee
        elif isinstance(base_type, ArrayType):
            element = base_type.element
        if isinstance(element, ArrayType):
            factor = UExpr.const(element.flat_length())
            index = tuple(
                (None if f is None else f.scale(factor), g) for f, g in index)
        return base_ptr, index

    # -- conditions ----------------------------------------------------------

    def cond_guards(self, expr: ast.Expr, env, ptrs):
        """(then_guards, else_guards) implied by ``expr``; either side is
        None when nothing sound can be said for that branch."""
        if isinstance(expr, ast.UnaryOp) and expr.op == "!":
            then_g, else_g = self.cond_guards(expr.operand, env, ptrs)
            return else_g, then_g
        if isinstance(expr, ast.BinaryOp) and expr.op == "&&":
            lt, lf = self.cond_guards(expr.left, env, ptrs)
            rt, rf = self.cond_guards(expr.right, env, ptrs)
            then_g = None if (lt is None or rt is None) else lt + rt
            return then_g, ()
        if isinstance(expr, ast.BinaryOp) and expr.op == "||":
            lt, lf = self.cond_guards(expr.left, env, ptrs)
            rt, rf = self.cond_guards(expr.right, env, ptrs)
            else_g = None if (lf is None or rf is None) else lf + rf
            return (), else_g
        if isinstance(expr, ast.BinaryOp) and expr.op in (
                "<", "<=", ">", ">=", "==", "!="):
            ltype = getattr(expr.left, "ctype", None)
            rtype = getattr(expr.right, "ctype", None)
            if (ltype is not None and ltype.is_float()) or (
                    rtype is not None and rtype.is_float()):
                return (), ()
            left = _single_form(self.eval_int(expr.left, env, ptrs))
            right = _single_form(self.eval_int(expr.right, env, ptrs))
            if left is None or right is None:
                return (), ()
            one = AffineForm.const(1)
            if expr.op == "<":   # a < b  |  not: b <= a
                return (left - right + one,), (right - left,)
            if expr.op == "<=":
                return (left - right,), (right - left + one,)
            if expr.op == ">":
                return (right - left + one,), (left - right,)
            if expr.op == ">=":
                return (right - left,), (left - right + one,)
            if expr.op == "==":
                return (left - right, right - left), ()
            return (), (left - right, right - left)  # !=
        # Bare integer condition `if (n)` etc: nothing useful.
        self._eval_any(expr, env, ptrs)
        return (), ()

    # -- calls ---------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, env, ptrs) -> Alts:
        name = expr.callee
        if name in _DIM_SYMS:
            dim = 0
            if expr.args:
                arg = _single_form(self.eval_int(expr.args[0], env, ptrs))
                if arg is None or not arg.is_const:
                    return _UNKNOWN
                dim = arg.const_value
            if not 0 <= dim <= 2:
                return _UNKNOWN
            return ((AffineForm.sym((_DIM_SYMS[name], dim)), ()),)
        if name == "get_global_offset":
            for arg in expr.args:
                self._eval_any(arg, env, ptrs)
            return ((AffineForm.const(0), ()),)
        callee = self.functions.get(name)
        if callee is not None and callee.body is not None:
            return self._eval_user_call(expr, callee, env, ptrs)
        return self._eval_builtin_call(expr, env, ptrs)

    def _eval_builtin_call(self, expr: ast.Call, env, ptrs) -> Alts:
        name = expr.callee
        is_int = (getattr(expr, "ctype", None) is not None
                  and expr.ctype.is_integer())
        args = [self._eval_any(a, env, ptrs) for a in expr.args]
        # Any pointer reaching an unmodelled builtin (vload/vstore,
        # async copies, atomics) demotes its root to fallback mode.
        for arg in expr.args:
            actype = getattr(arg, "ctype", None)
            if isinstance(actype, (PointerType, ArrayType)):
                self._poison_pointer_expr(arg)
        if not is_int:
            return _UNKNOWN
        if name in ("min", "max") and len(args) == 2:
            a = _single_form(args[0])
            b = _single_form(args[1])
            if a is not None and b is not None:
                one = AffineForm.const(1)
                if name == "min":  # a when a<=b, b when b<a
                    return ((a, (a - b,)), (b, (b - a + one,)))
                return ((a, (b - a,)), (b, (a - b + one,)))
        if name == "clamp" and len(args) == 3:
            x = _single_form(args[0])
            lo = _single_form(args[1])
            hi = _single_form(args[2])
            if x is not None and lo is not None and hi is not None:
                one = AffineForm.const(1)
                return ((x, (lo - x, x - hi)),
                        (lo, (x - lo + one,)),
                        (hi, (hi - x + one,)))
        return _UNKNOWN

    def _eval_user_call(self, expr: ast.Call, callee: ast.FunctionDef,
                        env, ptrs) -> Alts:
        if callee.name in self._call_stack or \
                len(self._call_stack) >= _MAX_CALL_DEPTH:
            for arg in expr.args:
                actype = getattr(arg, "ctype", None)
                if isinstance(actype, (PointerType, ArrayType)):
                    self._poison_pointer_expr(arg)
                else:
                    self._eval_any(arg, env, ptrs)
            return _UNKNOWN
        callee_env: Dict[str, Alts] = {}
        callee_ptrs: Dict[str, Optional[_Ptr]] = {}
        for param, arg in zip(callee.params, expr.args):
            ctype = param.declared_type
            if isinstance(ctype, (PointerType, ArrayType)):
                ptr = self._eval_pointer(arg, env, ptrs)
                if ptr is _NOT_POINTER or ptr is None:
                    self._poison_pointer_expr(arg)
                    callee_ptrs[param.name] = None
                else:
                    callee_ptrs[param.name] = ptr
            elif ctype.is_integer():
                callee_env[param.name] = self._eval_any(arg, env, ptrs)
            else:
                self._eval_any(arg, env, ptrs)
                callee_env[param.name] = _UNKNOWN
        self._call_stack.append(callee.name)
        self._returns_stack = getattr(self, "_returns_stack", [])
        self._returns_stack.append(([], len(self.guards)))
        try:
            self.exec_stmt(callee.body, callee_env, callee_ptrs)
        finally:
            collected, depth = self._returns_stack.pop()
            # Early returns in the callee (`if (c) return x;`) guard the
            # *callee's* remaining statements by extending self.guards;
            # those guards must not outlive the call, or the caller's
            # subsequent accesses would be narrowed by them.
            del self.guards[depth:]
            self._call_stack.pop()
        is_int = (getattr(expr, "ctype", None) is not None
                  and expr.ctype.is_integer())
        if is_int and 0 < len(collected) <= MAX_ALTS:
            return tuple(collected)
        return _UNKNOWN

    # -- statements ----------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, env, ptrs) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.statements:
                self.exec_stmt(child, env, ptrs)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._exec_decl(decl, env, ptrs)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._eval_any(stmt.expr, env, ptrs)
        elif isinstance(stmt, ast.IfStmt):
            self._exec_if(stmt, env, ptrs)
        elif isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, env, ptrs)
        elif isinstance(stmt, ast.WhileStmt):
            self._havoc(stmt.body, env, ptrs)
            then_g, _else_g = self.cond_guards(stmt.condition, env, ptrs)
            depth = len(self.guards)
            if then_g:
                self.guards.extend(then_g)
            self.exec_stmt(stmt.body, env, ptrs)
            del self.guards[depth:]
            self._havoc(stmt.body, env, ptrs)
        elif isinstance(stmt, ast.DoStmt):
            self._havoc(stmt.body, env, ptrs)
            self.exec_stmt(stmt.body, env, ptrs)
            self.cond_guards(stmt.condition, env, ptrs)
            self._havoc(stmt.body, env, ptrs)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                value = self._eval_any(stmt.value, env, ptrs)
                stack = getattr(self, "_returns_stack", None)
                if stack:
                    collected, depth = stack[-1]
                    extra = tuple(self.guards[depth:])
                    for f, g in value:
                        collected.append((f, extra + g))
        elif isinstance(stmt, ast.SwitchStmt):
            self._eval_any(stmt.subject, env, ptrs)
            branch_envs = []
            for case in stmt.cases:
                case_env = dict(env)
                case_ptrs = dict(ptrs)
                for child in case.body:
                    self.exec_stmt(child, case_env, case_ptrs)
                branch_envs.append((case_env, case_ptrs, ()))
            self._join_branches(env, ptrs, branch_envs)
        # Break/Continue: no effect on the abstract state.

    def _exec_decl(self, decl: ast.VarDecl, env, ptrs) -> None:
        ctype = decl.declared_type
        if isinstance(ctype, ArrayType):
            try:
                elem = ctype.base_element().sizeof()
            except TypeError:
                elem = 1
            ptrs[decl.name] = _Ptr("array", decl.name, AffineForm.const(0),
                                   ctype.flat_length(), elem,
                                   decl.address_space)
            if decl.init is not None:
                self._eval_any(decl.init, env, ptrs)
            return
        if isinstance(ctype, PointerType):
            if decl.init is not None:
                ptr = self._eval_pointer(decl.init, env, ptrs)
                if ptr is _NOT_POINTER or ptr is None:
                    self._poison_pointer_expr(decl.init)
                    ptrs[decl.name] = None
                else:
                    ptrs[decl.name] = ptr
            else:
                ptrs[decl.name] = None
            return
        if decl.init is not None:
            value = self._eval_any(decl.init, env, ptrs)
            env[decl.name] = value if ctype.is_integer() else _UNKNOWN
        else:
            env[decl.name] = _UNKNOWN

    def _exec_if(self, stmt: ast.IfStmt, env, ptrs) -> None:
        then_g, else_g = self.cond_guards(stmt.condition, env, ptrs)
        depth = len(self.guards)

        then_env, then_ptrs = dict(env), dict(ptrs)
        if then_g:
            self.guards.extend(then_g)
        self.exec_stmt(stmt.then_branch, then_env, then_ptrs)
        del self.guards[depth:]

        else_env, else_ptrs = dict(env), dict(ptrs)
        if stmt.else_branch is not None:
            if else_g:
                self.guards.extend(else_g)
            self.exec_stmt(stmt.else_branch, else_env, else_ptrs)
            del self.guards[depth:]

        # `if (cond) return;` guards the rest of the function.
        if _always_returns(stmt.then_branch) and stmt.else_branch is None:
            env.clear()
            env.update(else_env)
            ptrs.clear()
            ptrs.update(else_ptrs)
            if else_g:
                self.guards.extend(else_g)
            return
        if stmt.else_branch is not None and _always_returns(stmt.else_branch):
            env.clear()
            env.update(then_env)
            ptrs.clear()
            ptrs.update(then_ptrs)
            if then_g:
                self.guards.extend(then_g)
            return
        self._join_branches(env, ptrs, [
            (then_env, then_ptrs, then_g if then_g is not None else None),
            (else_env, else_ptrs, else_g if else_g is not None else None),
        ])

    def _join_branches(self, env, ptrs, branches) -> None:
        names = set(env)
        for branch_env, _bp, _g in branches:
            names |= set(branch_env)
        joined: Dict[str, Alts] = {}
        for name in names:
            # A variable no branch reassigned keeps its value verbatim —
            # tagging it with branch guards would only multiply
            # alternatives and defeat _single_form downstream.
            if name in env and all(
                    branch_env.get(name) is env[name]
                    for branch_env, _bp, _g in branches):
                joined[name] = env[name]
                continue
            alts: List[Alt] = []
            ok = True
            for branch_env, _bp, branch_guards in branches:
                value = branch_env.get(name, _UNKNOWN)
                extra: Guards = branch_guards if branch_guards else ()
                if branch_guards is None:
                    extra = ()
                for f, g in value:
                    alts.append((f, extra + g))
            # Collapse identical alternatives, then cap.
            seen = {}
            for f, g in alts:
                key = (None if f is None else f.key(), g)
                if key not in seen:
                    seen[key] = (f, g)
            merged = tuple(seen.values())
            if len(merged) > MAX_ALTS or any(f is None for f, _ in merged):
                joined[name] = _UNKNOWN
            else:
                joined[name] = merged
        env.clear()
        env.update(joined)
        ptr_names = set(ptrs)
        for _be, branch_ptrs, _g in branches:
            ptr_names |= set(branch_ptrs)
        joined_ptrs: Dict[str, Optional[_Ptr]] = {}
        for name in ptr_names:
            values = [bp.get(name) for _be, bp, _g in branches]
            first = values[0]
            same = first is not None and all(
                v is not None and v.kind == first.kind and v.name == first.name
                and v.offset is not None and first.offset is not None
                and v.offset == first.offset for v in values)
            joined_ptrs[name] = first if same else (
                ptrs.get(name) if all(v is ptrs.get(name) for v in values)
                else None)
        ptrs.clear()
        ptrs.update(joined_ptrs)

    def _havoc(self, stmt: ast.Stmt, env, ptrs) -> None:
        for name in _assigned_names(stmt):
            if name in ptrs:
                ptrs[name] = None
            else:
                env[name] = _UNKNOWN

    def _exec_for(self, stmt: ast.ForStmt, env, ptrs) -> None:
        induction = self._match_affine_loop(stmt, env, ptrs)
        depth = len(self.guards)
        if induction is not None:
            name, init, step = induction
            iv = self._fresh_iv()
            body_env = dict(env)
            body_ptrs = dict(ptrs)
            # Widen everything else the body (or increment) assigns.
            self._havoc(stmt.body, body_env, body_ptrs)
            symbolic = init + AffineForm.sym(iv).scale(step)
            body_env[name] = ((symbolic, ()),)
            if stmt.condition is not None:
                then_g, _ = self.cond_guards(stmt.condition, body_env, body_ptrs)
                if then_g:
                    self.guards.extend(then_g)
            self.exec_stmt(stmt.body, body_env, body_ptrs)
            if stmt.increment is not None:
                self._eval_any(stmt.increment, body_env, body_ptrs)
            del self.guards[depth:]
        else:
            if stmt.init is not None:
                self.exec_stmt(stmt.init, env, ptrs)
            body_env = dict(env)
            body_ptrs = dict(ptrs)
            self._havoc(stmt.body, body_env, body_ptrs)
            if stmt.increment is not None:
                self._havoc(ast.ExprStmt(stmt.increment, stmt.span),
                            body_env, body_ptrs)
            if stmt.condition is not None:
                then_g, _ = self.cond_guards(stmt.condition, body_env, body_ptrs)
                if then_g:
                    self.guards.extend(then_g)
            self.exec_stmt(stmt.body, body_env, body_ptrs)
            if stmt.increment is not None:
                self._eval_any(stmt.increment, body_env, body_ptrs)
            del self.guards[depth:]
        # After the loop everything it may assign is unknown.
        self._havoc(stmt.body, env, ptrs)
        if stmt.increment is not None:
            self._havoc(ast.ExprStmt(stmt.increment, stmt.span), env, ptrs)
        if isinstance(stmt.init, ast.DeclStmt):
            for decl in stmt.init.decls:
                env.pop(decl.name, None)
        elif stmt.init is not None:
            self._havoc(stmt.init, env, ptrs)

    def _match_affine_loop(self, stmt: ast.ForStmt, env, ptrs):
        """Match ``for (i = init; cond; i += step)`` with an affine init
        and a *uniform* step; returns (name, init_form, step_uexpr)."""
        name = None
        init_form = None
        if isinstance(stmt.init, ast.DeclStmt) and len(stmt.init.decls) == 1:
            decl = stmt.init.decls[0]
            if decl.init is not None and not isinstance(
                    decl.declared_type, (PointerType, ArrayType)):
                name = decl.name
                init_form = _single_form(self.eval_int(decl.init, env, ptrs))
        elif isinstance(stmt.init, ast.ExprStmt) and isinstance(
                stmt.init.expr, ast.Assignment) and stmt.init.expr.op == "=":
            target = stmt.init.expr.target
            if isinstance(target, ast.Identifier) and target.name not in ptrs:
                name = target.name
                init_form = _single_form(
                    self.eval_int(stmt.init.expr.value, env, ptrs))
        if name is None or init_form is None:
            return None

        step: Optional[UExpr] = None
        inc = stmt.increment
        if isinstance(inc, (ast.UnaryOp, ast.PostfixOp)) and inc.op in ("++", "--"):
            if isinstance(inc.operand, ast.Identifier) and inc.operand.name == name:
                step = UExpr.const(1 if inc.op == "++" else -1)
        elif isinstance(inc, ast.Assignment) and inc.op in ("+=", "-="):
            if isinstance(inc.target, ast.Identifier) and inc.target.name == name:
                form = _single_form(self.eval_int(inc.value, env, ptrs))
                if form is not None and form.is_uniform:
                    step = form.base if inc.op == "+=" else -form.base
        if step is None:
            return None
        # The induction variable must not be re-assigned inside the body.
        if name in _assigned_names(stmt.body):
            return None
        return name, init_form, step


_NOT_POINTER = object()


def _pick_form(alts: Optional[Alts]) -> Optional[AffineForm]:
    if alts is None:
        return None
    return _single_form(alts)


def _assigned_names(stmt: ast.Stmt) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Assignment) and isinstance(
                node.target, ast.Identifier):
            names.add(node.target.name)
        elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and \
                getattr(node, "op", "") in ("++", "--"):
            if isinstance(node.operand, ast.Identifier):
                names.add(node.operand.name)
        elif isinstance(node, ast.VarDecl):
            names.add(node.name)
    return names


def _always_returns(stmt: Optional[ast.Stmt]) -> bool:
    if stmt is None:
        return False
    if isinstance(stmt, ast.ReturnStmt):
        return True
    if isinstance(stmt, ast.CompoundStmt):
        return any(_always_returns(child) for child in stmt.statements)
    if isinstance(stmt, ast.IfStmt):
        return (stmt.else_branch is not None
                and _always_returns(stmt.then_branch)
                and _always_returns(stmt.else_branch))
    if isinstance(stmt, ast.DoStmt):
        return _always_returns(stmt.body)
    return False


# -- public entry ------------------------------------------------------------


def summarize_kernel(program: ast.Program,
                     fn: ast.FunctionDef) -> KernelSummary:
    """Affine access summary of one kernel of a *checked* program.

    Never raises on kernel content: anything the scanner cannot model
    becomes a per-parameter fallback with a reason.
    """
    scanner = _Scanner(program, fn)
    try:
        scanner.run()
    except RecursionError:
        for name in scanner.pointer_params:
            scanner._fallback(name, "analysis recursion limit")
    params: Dict[str, ParamSummary] = {}
    for name, ctype in scanner.pointer_params.items():
        if ctype.address_space not in ("global", "constant"):
            continue
        try:
            elem = ctype.pointee.sizeof()
        except TypeError:
            elem = 1
        summary = ParamSummary(name, ctype.address_space, elem)
        summary.footprints = [f for f in scanner.footprints if f.param == name]
        if name in scanner.fallbacks:
            summary.fallback_reason = scanner.fallbacks[name]
        params[name] = summary
    return KernelSummary(fn.name, params, scanner.array_sites,
                         _parse_reqd_wg(fn))


_SUMMARY_ATTR = "_skelaccess_summary"


def cached_kernel_summary(program: ast.Program,
                          fn: ast.FunctionDef) -> KernelSummary:
    cached = getattr(fn, _SUMMARY_ATTR, None)
    if cached is None:
        cached = summarize_kernel(program, fn)
        setattr(fn, _SUMMARY_ATTR, cached)
    return cached


# -- enqueue-time evaluation -------------------------------------------------


@dataclass
class EvalEnv:
    uniforms: Dict[Sym, int]
    ranges: Dict[Sym, Tuple[int, int]]  # variant sym -> inclusive range


def make_eval_env(global_size: Sequence[int], local_size: Sequence[int],
                  scalars: Dict[str, int]) -> EvalEnv:
    """Concrete evaluation environment for one NDRange launch."""
    uniforms: Dict[Sym, int] = {}
    ranges: Dict[Sym, Tuple[int, int]] = {}
    for d in range(3):
        gsize = int(global_size[d]) if d < len(global_size) else 1
        lsize = int(local_size[d]) if d < len(local_size) else 1
        lsize = max(1, lsize)
        ngroups = max(1, gsize // lsize if lsize else 1)
        uniforms[("gsize", d)] = gsize
        uniforms[("lsize", d)] = lsize
        uniforms[("ngroups", d)] = ngroups
        ranges[("gid", d)] = (0, max(0, gsize - 1))
        ranges[("lid", d)] = (0, max(0, lsize - 1))
        ranges[("grp", d)] = (0, max(0, ngroups - 1))
    for name, value in scalars.items():
        uniforms[("param", name)] = int(value)
    return EvalEnv(uniforms, ranges)


class Unresolvable(Exception):
    """A footprint references a symbol the launch does not bind."""


@dataclass(frozen=True)
class ResolvedAccess:
    """A concrete byte range: ``start + k*stride .. +width`` per step.

    ``stride == 0`` means the range is dense (every byte in
    ``[start, stop)`` may be touched)."""

    start: int
    stop: int
    stride: int
    width: int
    mode: str


def _concrete(form: AffineForm, env: EvalEnv):
    """(const base, {variant sym: int coeff}) with uniforms folded."""
    base = form.base.evaluate(env.uniforms)
    coeffs: Dict[Sym, int] = {}
    for sym, coeff in form.terms.items():
        value = coeff.evaluate(env.uniforms)
        if value:
            coeffs[sym] = value
    return base, coeffs


def _sym_range(sym: Sym, ranges: Dict[Sym, Tuple[int, int]]) -> Tuple[int, int]:
    if sym in ranges:
        return ranges[sym]
    if sym[0] == "iv":
        return (0, IV_LIMIT)
    raise Unresolvable(f"no range for {sym}")


def narrow_ranges(guards: Sequence[Tuple[int, Dict[Sym, int]]],
                  ranges: Dict[Sym, Tuple[int, int]],
                  passes: int = 4) -> Optional[Dict[Sym, Tuple[int, int]]]:
    """Narrow variant-symbol ranges through affine guards ``base +
    sum(c*s) <= 0``; returns None when some guard is infeasible."""
    ranges = dict(ranges)
    for _ in range(passes):
        changed = False
        for base, coeffs in guards:
            if not coeffs:
                if base > 0:
                    return None
                continue
            for sym, c in coeffs.items():
                rest_lo = base
                for other, oc in coeffs.items():
                    if other is sym:
                        continue
                    lo, hi = _sym_range(other, ranges)
                    rest_lo += min(oc * lo, oc * hi)
                lo, hi = _sym_range(sym, ranges)
                if c > 0:
                    bound = (-rest_lo) // c  # floor(-rest_lo / c)
                    if bound < hi:
                        hi = bound
                        changed = True
                else:
                    bound = -(rest_lo // c)  # ceil(-rest_lo / c)
                    if bound > lo:
                        lo = bound
                        changed = True
                if lo > hi:
                    return None
                ranges[sym] = (lo, hi)
        if not changed:
            break
    return ranges


def resolve_footprint(fp: Footprint, env: EvalEnv, elem_size: int,
                      buffer_nbytes: int) -> Optional[ResolvedAccess]:
    """Concrete byte range of one footprint under one launch.

    Returns None when the guards are infeasible (the access never
    executes); raises :class:`Unresolvable` when a scalar the footprint
    needs is not in the environment (callers fall back to whole-chunk).
    """
    try:
        base, coeffs = _concrete(fp.index, env)
        guard_list = [_concrete(g, env) for g in fp.guards]
    except KeyError as exc:
        raise Unresolvable(f"unbound symbol {exc.args[0]!r}") from None
    ranges = {s: _sym_range(s, env.ranges) for s in coeffs}
    for _gb, gc in guard_list:
        for s in gc:
            ranges.setdefault(s, _sym_range(s, env.ranges))
    narrowed = narrow_ranges(guard_list, ranges)
    if narrowed is None:
        return None
    lo = hi = base
    for sym, c in coeffs.items():
        rlo, rhi = narrowed[sym]
        lo += min(c * rlo, c * rhi)
        hi += max(c * rlo, c * rhi)
    # A guard of the shape `index + u <= 0` bounds the index exactly
    # even when the box over-approximates (grid-stride loops).
    for gbase, gcoeffs in guard_list:
        if gcoeffs == coeffs:
            hi = min(hi, base - gbase)  # index <= -(gbase - base)
        if all(gcoeffs.get(s) == -c for s, c in coeffs.items()) and \
                len(gcoeffs) == len(coeffs):
            lo = max(lo, gbase + base)
    buffer_elems = buffer_nbytes // elem_size if elem_size else 0
    lo = max(lo, 0)
    hi = min(hi, max(0, buffer_elems - 1))
    if lo > hi:
        return None
    stride = 0
    active = [abs(c) for sym, c in coeffs.items()
              if narrowed[sym][0] != narrowed[sym][1]]
    if active:
        g = 0
        for c in active:
            g = math.gcd(g, c)
        if g >= 2:
            stride = g * elem_size
    start = lo * elem_size
    stop = (hi + 1) * elem_size
    width = elem_size if stride else 0
    return ResolvedAccess(start, stop, stride, width, fp.mode)
