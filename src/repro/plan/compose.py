"""Kernel-source composition for fused skeletons.

Fusion never splices Python callables: it generates a new OpenCL-C
source string that defines every stage's (renamed) helper functions
plus one wrapper function calling them in sequence, and instantiates an
ordinary :class:`~repro.skelcl.map.Map` / :class:`~repro.skelcl.zip.Zip`
from it.  The fused kernel therefore goes through the same ``kernelc``
front-end, lint pass, SkelSan access-mode extraction, vectorizer and
counters as any hand-written one.

Bit-exactness at the fusion seams: the eager pipeline *stores* every
intermediate at its declared element type and reloads it, which rounds
(floats) or wraps (integers) the value.  The composed wrapper inserts
an explicit cast to the intermediate's type at every seam —
``f1((T0)(f0(x)))`` — reproducing that store/load conversion exactly,
so fused and unfused runs agree bit for bit.

Composed skeletons are memoized on the stage sources, so hot loops pay
the parse/build once (and the program build cache already de-duplicates
the generated source globally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..kernelc.parser import parse
from ..skelcl.map import Map
from ..skelcl.skeleton import rename_function
from ..skelcl.zip import Zip

_FUNCTION_NAMES: Dict[str, Tuple[str, ...]] = {}


def _function_names(source: str) -> Tuple[str, ...]:
    """Every function defined in ``source`` (already preprocessed)."""
    names = _FUNCTION_NAMES.get(source)
    if names is None:
        program = parse(source, "<fused stage>")
        names = tuple(fn.name for fn in program.functions)
        _FUNCTION_NAMES[source] = names
    return names


def _suffixed(user, suffix: str) -> Tuple[str, str]:
    """Rename *every* function ``user``'s source defines with ``suffix``
    (helpers included), so stages with colliding helper names coexist in
    one fused source.  Returns (renamed source, renamed customizing
    function name)."""
    source = user.source
    for name in _function_names(user.source):
        source = rename_function(source, name, f"{name}{suffix}")
    return source, f"{user.name}{suffix}"


def _chain_expr(stages: Sequence[Map], parts: List[str], params: List[str],
                seed_expr: str, tag: str, cast_last: bool) -> str:
    """Append each stage's renamed source to ``parts`` and its extra
    parameters to ``params``; return the nested call expression applying
    the stages to ``seed_expr``.  Seams get an explicit cast to the
    stage's output type; ``cast_last`` casts the final stage too (needed
    when the chain's result feeds another function rather than a store,
    which would perform the conversion itself)."""
    expr = seed_expr
    for index, stage in enumerate(stages):
        source, fname = _suffixed(stage.user, f"__{tag}{index}")
        parts.append(source)
        extra_names = []
        for j, ctype in enumerate(stage.extra_types):
            name = f"SCL_{tag.upper()}{index}_{j}"
            params.append(f"{ctype.name} {name}")
            extra_names.append(name)
        call = f"{fname}({expr}{''.join(', ' + n for n in extra_names)})"
        if cast_last or index < len(stages) - 1:
            expr = f"({stage.out_type.name})({call})"
        else:
            expr = call
    return expr


_MAP_CACHE: Dict[tuple, Map] = {}
_ZIP_CACHE: Dict[tuple, Zip] = {}
_PREMAP_CACHE: Dict[tuple, "Premap"] = {}
_FOOTPRINT_CACHE: Dict[str, bool] = {}

# The access pattern fusion relies on, per generated-kernel parameter:
# reads at ``gid0 + <offset param>`` (the runtime-managed chunk offset),
# writes at exactly ``gid0``.  Anything else — a shifted read like
# ``SCL_IN[SCL_ID + SCL_OFFSET + 1]``, a strided store, a second write
# site — breaks the elementwise contract ``fused(i) == eager(i)``.
_MAP_FOOTPRINT_SPEC = {"SCL_IN": ("r", "SCL_OFFSET"), "SCL_OUT": ("w", None)}
_ZIP_FOOTPRINT_SPEC = {
    "SCL_LEFT": ("r", "SCL_LEFT_OFFSET"),
    "SCL_RIGHT": ("r", "SCL_RIGHT_OFFSET"),
    "SCL_OUT": ("w", None),
}


def _elementwise_key(offset_param):
    from ..analysis.affine import AffineForm, UExpr

    base = (UExpr.sym(("param", offset_param)) if offset_param
            else UExpr.const(0))
    return AffineForm(base, {("gid", 0): UExpr.const(1)}).key()


def _footprints_ok(source: str, spec: Dict[str, tuple]) -> bool:
    from ..analysis import affine
    from ..kernelc.frontend import compile_source

    try:
        program = compile_source(source, "<fusion legality>")
        kernels = program.kernels()
        if len(kernels) != 1:
            return False
        summary = affine.summarize_kernel(program, kernels[0])
    except Exception:
        return False
    for name, psum in summary.params.items():
        expected = spec.get(name)
        if expected is None or not psum.affine:
            return False
        mode, offset_param = expected
        want = _elementwise_key(offset_param)
        for fp in psum.footprints:
            if fp.mode != mode or fp.index.key() != want:
                return False
    return True


def footprints_fusable(skeleton) -> bool:
    """Footprint legality gate for fusion: the skeleton's generated
    kernel must *prove* (via its SkelAccess summary) that it touches
    global memory in the elementwise pattern fusion assumes.  A shape
    check alone would accept any Map/Zip subclass; this rejects ones
    whose kernel source deviates.  Memoized on the kernel source."""
    spec = (_ZIP_FOOTPRINT_SPEC if isinstance(skeleton, Zip)
            else _MAP_FOOTPRINT_SPEC)
    try:
        source = skeleton.kernel_source()
    except Exception:
        return False
    cached = _FOOTPRINT_CACHE.get(source)
    if cached is None:
        cached = _footprints_ok(source, spec)
        _FOOTPRINT_CACHE[source] = cached
    return cached


def _map_key(stages: Sequence[Map]) -> tuple:
    return tuple(s.user.source for s in stages) + (stages[-1].work_group_size,)


def fused_map(stages: Sequence[Map]) -> Map:
    """One Map computing ``stages[-1] ∘ ... ∘ stages[0]``.  Extra
    arguments of all stages are concatenated in stage order."""
    key = _map_key(stages)
    cached = _MAP_CACHE.get(key)
    if cached is not None:
        return cached
    parts: List[str] = []
    params: List[str] = [f"{stages[0].in_type.name} SCL_X"]
    expr = _chain_expr(stages, parts, params, "SCL_X", "m", cast_last=False)
    wrapper = (f"{stages[-1].out_type.name} SCL_FUSED({', '.join(params)}) {{\n"
               f"    return {expr};\n}}\n")
    fused = Map("\n".join(parts + [wrapper]),
                work_group_size=stages[-1].work_group_size)
    _MAP_CACHE[key] = fused
    return fused


def fused_zip(left_stages: Sequence[Map], right_stages: Sequence[Map],
              zip_skeleton: Zip, post_stages: Sequence[Map]) -> Zip:
    """One Zip computing ``post ∘ zip(left_chain, right_chain)``.  Extra
    arguments are concatenated left-chain, right-chain, zip, post-chain
    (matching :func:`fused_zip_extras`)."""
    key = (tuple(s.user.source for s in left_stages),
           tuple(s.user.source for s in right_stages),
           zip_skeleton.user.source,
           tuple(s.user.source for s in post_stages),
           zip_skeleton.work_group_size)
    cached = _ZIP_CACHE.get(key)
    if cached is not None:
        return cached
    parts: List[str] = []
    left_in = left_stages[0].in_type if left_stages else zip_skeleton.left_type
    right_in = right_stages[0].in_type if right_stages else zip_skeleton.right_type
    params: List[str] = [f"{left_in.name} SCL_L", f"{right_in.name} SCL_R"]
    left_expr = _chain_expr(left_stages, parts, params, "SCL_L", "l", cast_last=True)
    right_expr = _chain_expr(right_stages, parts, params, "SCL_R", "r", cast_last=True)
    zip_source, zip_name = _suffixed(zip_skeleton.user, "__z")
    parts.append(zip_source)
    zip_extra_names = []
    for j, ctype in enumerate(zip_skeleton.extra_types):
        name = f"SCL_Z_{j}"
        params.append(f"{ctype.name} {name}")
        zip_extra_names.append(name)
    expr = (f"{zip_name}({left_expr}, {right_expr}"
            f"{''.join(', ' + n for n in zip_extra_names)})")
    if post_stages:
        expr = f"({zip_skeleton.out_type.name})({expr})"
        expr = _chain_expr(post_stages, parts, params, expr, "p", cast_last=False)
        out_type = post_stages[-1].out_type
    else:
        out_type = zip_skeleton.out_type
    wrapper = (f"{out_type.name} SCL_FUSED({', '.join(params)}) {{\n"
               f"    return {expr};\n}}\n")
    fused = Zip("\n".join(parts + [wrapper]),
                work_group_size=zip_skeleton.work_group_size)
    _ZIP_CACHE[key] = fused
    return fused


@dataclass(frozen=True)
class Premap:
    """A composed elementwise stage fused into Reduce's first pass: the
    full source (helpers + wrapper), the wrapper's name, its input type,
    and the extra parameter types the reduce kernel must thread
    through.  ``extras`` (the call-time values) ride alongside."""
    source: str
    name: str
    in_type: object  # ScalarType
    extra_types: tuple
    extras: tuple = ()

    def with_extras(self, extras: Sequence) -> "Premap":
        return Premap(self.source, self.name, self.in_type,
                      self.extra_types, tuple(extras))


def premap_of(stages: Sequence[Map]) -> Premap:
    """The composed elementwise function of a map chain, packaged for
    :meth:`repro.skelcl.reduce.Reduce._execute`'s fused first pass.
    The final seam cast is left to the reduce kernel template (which
    casts the premap result to the element type, reproducing the eager
    store of the chain's output)."""
    key = _map_key(stages)
    cached = _PREMAP_CACHE.get(key)
    if cached is not None:
        return cached
    parts: List[str] = []
    params: List[str] = [f"{stages[0].in_type.name} SCL_X"]
    expr = _chain_expr(stages, parts, params, "SCL_X", "m", cast_last=False)
    wrapper = (f"{stages[-1].out_type.name} SCL_PREMAP({', '.join(params)}) {{\n"
               f"    return {expr};\n}}\n")
    extra_types = []
    for stage in stages:
        extra_types.extend(stage.extra_types)
    premap = Premap("\n".join(parts + [wrapper]), "SCL_PREMAP",
                    stages[0].in_type, tuple(extra_types))
    _PREMAP_CACHE[key] = premap
    return premap


def chain_label(stages: Sequence, site_label: str, kind: str = "Map") -> str:
    """A trace span name for a fused chain, keeping the *final* call's
    site: ``Fused[Map f∘g]@app.py:12``."""
    names = "∘".join(s.user.name for s in reversed(list(stages)))
    _, _, site = (site_label or "").rpartition("@")
    suffix = f"@{site}" if site else ""
    return f"Fused[{kind} {names}]{suffix}"
