"""Lazy skeleton planner: a small DAG IR over deferred skeleton calls.

With ``skelcl.init(lazy=True)`` (or ``SKELCL_LAZY=1``), skeleton calls
no longer enqueue kernels immediately: they append nodes to a plan
(:class:`~repro.plan.ir.PlanNode`), which is *forced* on read-back,
``out=`` materialization, ``finish_all()``, or any side-effecting
access.  At force time a rewrite pass fuses producer/consumer chains —
map∘map, zip∘(map, map) and map∘reduce — into single generated kernels,
emitted through the ordinary ``kernelc`` front-end so lint, SkelSan,
the vectorizer and the execution counters apply unchanged.

See ``docs/planner.md`` for the IR, the rewrite-rule catalogue, the
force points and the fallback conditions.
"""

from .ir import PlanNode
from .planner import Planner

__all__ = ["PlanNode", "Planner"]
