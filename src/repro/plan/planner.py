"""The lazy planner: record, rewrite (fuse), force.

One :class:`Planner` hangs off a lazy :class:`~repro.skelcl.runtime.Session`.
Skeleton ``__call__``s route here instead of enqueueing; the planner
validates the call (same errors, same call site as eager mode), creates
the output container, and records a :class:`~repro.plan.ir.PlanNode`.

Force points (see ``docs/planner.md``):

* reading a container on the host (``ensure_host`` → producer),
* using it on devices (``ensure_on_devices`` → producer),
* host mutation / ``out=`` overwrite / redistribution
  (``_before_write`` → producer *and* every pending reader, so deferred
  consumers still observe the pre-mutation value),
* ``Session.finish_all()`` / metrics / trace export (→ ``flush``),
* ``Reduce`` (its Scalar result is synchronous, so it forces its
  ancestor chain immediately — the map∘reduce fusion window).

Forcing gathers the target's pending ancestors, runs the rewrite pass
(:meth:`Planner._rewrite`) that merges fusable producer/consumer chains
into steps, and executes the steps oldest-first through the skeletons'
ordinary eager paths — the async command graph, coherence protocol and
SkelSan see exactly the commands an eager program would have issued,
minus the fused-away ones.

Intermediates folded away by fusion are *elided*: never materialized,
but recomputable (their nodes keep their inputs, and host mutation of
any input materializes them first), so a later host read of a fused-out
temporary still sees the right values.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from ..skelcl.matrix import Matrix
from ..skelcl.runtime import SkelCLError
from ..skelcl.scalar import Scalar
from ..skelcl.vector import Vector
from . import compose
from .ir import PlanNode


class _Step:
    """One unit of execution after rewriting: either a single node run
    eagerly, or a fused chain (``map``: a pipeline of Map nodes; ``zip``:
    optional Map chains on both inputs, the Zip, and optional Map nodes
    after it)."""

    __slots__ = ("kind", "nodes", "left", "right", "zip_node", "post")

    def __init__(self, kind: str, nodes: List[PlanNode]):
        self.kind = kind  # "eager" | "map" | "zip"
        self.nodes = nodes  # covered nodes, seq order
        self.left: List[PlanNode] = []
        self.right: List[PlanNode] = []
        self.zip_node: Optional[PlanNode] = None
        self.post: List[PlanNode] = []

    @property
    def final(self) -> PlanNode:
        return self.nodes[-1]

    @property
    def output(self):
        return self.nodes[-1].output

    @property
    def can_extend(self) -> bool:
        """Whether a later fusable Map consuming this step's output can
        be folded into it."""
        return self.kind in ("map", "zip") and all(n.fusable for n in self.nodes)


class Planner:
    def __init__(self, session):
        self.session = session
        self.pending: List[PlanNode] = []
        self._seq = 0
        self._executing = 0
        self._recording = 0
        self._captures: List[List[PlanNode]] = []

    # -- observability -----------------------------------------------------

    @property
    def executing(self) -> bool:
        """True while the planner itself is running plan steps; the
        container write hooks skip reader-forcing then (ordering inside
        a batch is the planner's job, and the event graph carries the
        actual dependencies)."""
        return self._executing > 0

    def _count(self, name: str, **labels) -> None:
        self.session.metrics.counter(name, **labels).inc()

    # -- recording ---------------------------------------------------------

    @property
    def recording(self) -> bool:
        """True inside a :meth:`record` window (a serve-job submit):
        every skeleton call defers, including Reduce — otherwise a
        synchronous force point — so the whole job stays a graph."""
        return self._recording > 0

    @contextmanager
    def record(self):
        """Capture one job's command graph: yields a list that collects
        every :class:`PlanNode` recorded in the window.  Nested windows
        each capture their own nodes (inner nodes appear in both)."""
        captured: List[PlanNode] = []
        self._captures.append(captured)
        self._recording += 1
        try:
            yield captured
        finally:
            self._recording -= 1
            self._captures.remove(captured)

    def _record(self, op: str, skeleton, inputs: Sequence, output, run,
                *, fusable: bool, label: Optional[str],
                extras: tuple = ()) -> PlanNode:
        node = PlanNode(self, op, skeleton, inputs, output, run,
                        fusable=fusable, label=label, extras=extras,
                        seq=self._seq)
        self._seq += 1
        for container in node.inputs:
            container._pending_readers.append(node)
        output._pending = node
        self.pending.append(node)
        for capture in self._captures:
            capture.append(node)
        self._count("skelcl_plan_deferred_total", op=op)
        return node

    def defer_map(self, skeleton, input_container, extra_args,
                  label: Optional[str]):
        if input_container.dtype != skeleton.result_dtype(skeleton.in_type):
            raise SkelCLError(
                f"Map input has dtype {input_container.dtype}, but the "
                f"customizing function takes {skeleton.in_type}"
            )
        skeleton.check_extra_args(skeleton.extra_types, extra_args)
        out = self._like(input_container, skeleton.result_dtype(skeleton.out_type))
        run = lambda: skeleton._execute(input_container, extra_args, out=out,
                                        label=label)
        fusable = compose.footprints_fusable(skeleton)
        if not fusable:
            self._count("skelcl_plan_fallback_total", reason="footprint")
        self._record("map", skeleton, [input_container], out, run,
                     fusable=fusable, label=label, extras=tuple(extra_args))
        return out

    def defer_zip(self, skeleton, left, right, extra_args,
                  label: Optional[str]):
        if type(left) is not type(right):
            raise SkelCLError("Zip inputs must both be vectors or both be matrices")
        left_size = left.shape if isinstance(left, Matrix) else left.size
        right_size = right.shape if isinstance(right, Matrix) else right.size
        if left_size != right_size:
            raise SkelCLError(f"Zip inputs differ in size: {left_size} vs {right_size}")
        if left.dtype != skeleton.result_dtype(skeleton.left_type):
            raise SkelCLError(
                f"left input dtype {left.dtype} does not match {skeleton.left_type}")
        if right.dtype != skeleton.result_dtype(skeleton.right_type):
            raise SkelCLError(
                f"right input dtype {right.dtype} does not match {skeleton.right_type}")
        skeleton.check_extra_args(skeleton.extra_types, extra_args)
        out = self._like(left, skeleton.result_dtype(skeleton.out_type))
        run = lambda: skeleton._execute(left, right, extra_args, out=out,
                                        label=label)
        fusable = compose.footprints_fusable(skeleton)
        if not fusable:
            self._count("skelcl_plan_fallback_total", reason="footprint")
        self._record("zip", skeleton, [left, right], out, run,
                     fusable=fusable, label=label, extras=tuple(extra_args))
        return out

    def defer_opaque(self, op: str, skeleton, inputs: Sequence, output, run,
                     label: Optional[str]) -> object:
        """Defer a skeleton with no fusion rules (Scan, MapOverlap,
        AllPairs): it executes through its eager path at force time,
        node by node — the documented fallback."""
        self._record(op, skeleton, inputs, output, run, fusable=False,
                     label=label)
        self._count("skelcl_plan_fallback_total", reason=op)
        return output

    @staticmethod
    def _like(container, dtype):
        if isinstance(container, Matrix):
            return Matrix(container.shape, dtype=dtype)
        return Vector(container.size, dtype=dtype)

    # -- reduce: the synchronous force point -------------------------------

    def defer_reduce(self, skeleton, input_container, out, label: Optional[str]):
        """Record a Reduce without forcing (recording mode only): the
        Scalar result stays a placeholder until the node runs — reading
        it forces the node, like any container force point.  Recorded
        reductions skip the map∘reduce premap fusion window (counted as
        a fallback); correctness is unchanged."""
        dtype = skeleton.result_dtype(skeleton.element_type)
        if input_container.dtype != dtype:
            raise SkelCLError(
                f"Reduce input dtype {input_container.dtype} does not match "
                f"{skeleton.element_type}"
            )
        result = out if out is not None else Scalar(0, dtype)
        run = lambda: skeleton._execute(input_container, out=result,
                                        label=label)
        self._record("reduce", skeleton, [input_container], result, run,
                     fusable=False, label=label)
        self._count("skelcl_plan_fallback_total", reason="recorded_reduce")
        return result

    def reduce_now(self, skeleton, input_container, out, label: Optional[str]):
        """Record-and-force for Reduce.  If the reduction's input is the
        sole-consumer output of a fusable map chain, the chain becomes
        the ``premap`` of the reduction's first pass (map∘reduce); the
        chain's containers are elided."""
        if self.recording:
            return self.defer_reduce(skeleton, input_container, out, label)
        dtype = skeleton.result_dtype(skeleton.element_type)
        if input_container.dtype != dtype:
            raise SkelCLError(
                f"Reduce input dtype {input_container.dtype} does not match "
                f"{skeleton.element_type}"
            )
        premap = None
        producer = input_container._pending
        if producer is not None and producer.state == PlanNode.PENDING:
            batch = self._closure(producer)
            steps = self._rewrite(batch)
            last = steps[-1]
            if (last.output is input_container and last.kind == "map"
                    and last.can_extend
                    and self._pending_uses(input_container) == 0):
                extras: List = []
                for node in last.nodes:
                    extras.extend(node.extras)
                premap = compose.premap_of(
                    [n.skeleton for n in last.nodes]).with_extras(extras)
                self._execute_steps(steps[:-1])
                self._elide_step(last)
                self._count("skelcl_fusion_total", rule="map_reduce")
                label = compose.chain_label(
                    [n.skeleton for n in last.nodes] + [skeleton],
                    label, kind="Reduce")
                input_container = last.nodes[0].inputs[0]
            else:
                if last.output is input_container and last.kind == "map":
                    self._count("skelcl_plan_fallback_total",
                                reason="multi_consumer")
                self._execute_steps(steps)
        return skeleton._execute(input_container, out=out, label=label,
                                 premap=premap)

    # -- forcing -----------------------------------------------------------

    def force_node(self, node: PlanNode) -> None:
        if node.state in (PlanNode.DONE, PlanNode.RUNNING):
            return
        if node.state == PlanNode.ELIDED:
            self._recompute(node)
            return
        self._execute_steps(self._rewrite(self._closure(node)))

    def flush(self) -> None:
        """Execute everything still pending (with fusion across the whole
        remaining graph) — the ``finish_all()`` force point."""
        while True:
            batch = [n for n in self.pending if n.state == PlanNode.PENDING]
            if not batch:
                return
            self._execute_steps(self._rewrite(batch))

    def flush_subset(self, nodes: Sequence[PlanNode]) -> None:
        """Execute exactly ``nodes`` (plus any pending ancestors), with
        fusion *within* the subset — the serve dispatcher's force point:
        one job's recorded graph runs without dragging other tenants'
        pending work along."""
        seen = set()
        batch: List[PlanNode] = []
        for node in nodes:
            if node.state != PlanNode.PENDING:
                continue
            for ancestor in self._closure(node):
                if ancestor.state == PlanNode.PENDING \
                        and id(ancestor) not in seen:
                    seen.add(id(ancestor))
                    batch.append(ancestor)
        if batch:
            self._execute_steps(self._rewrite(
                sorted(batch, key=lambda n: n.seq)))

    def discard(self, nodes: Sequence[PlanNode]) -> None:
        """Throw away recorded-but-unwanted nodes (a serve submit whose
        admission was rejected *after* recording): each pending node is
        detached without ever executing.  Containers the discarded nodes
        were going to produce keep their placeholder contents."""
        for node in nodes:
            if node.state != PlanNode.PENDING:
                continue
            node.state = PlanNode.DONE
            self._detach(node)
            self._count("skelcl_plan_discarded_total", op=node.op)

    def _closure(self, target: PlanNode) -> List[PlanNode]:
        """``target`` plus its pending ancestors, in recording order.
        Elided ancestors encountered on the way are recomputed first
        (their values are inputs of the batch)."""
        seen = set()
        order: List[PlanNode] = []

        def visit(node: PlanNode) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for container in node.inputs:
                producer = getattr(container, "_pending", None)
                if producer is None:
                    continue
                if producer.state == PlanNode.PENDING:
                    visit(producer)
                elif producer.state == PlanNode.ELIDED:
                    self._recompute(producer)
            order.append(node)

        visit(target)
        return sorted(order, key=lambda n: n.seq)

    # -- rewrite: the fusion pass ------------------------------------------

    def _pending_uses(self, container) -> int:
        """How many times pending nodes read ``container`` — the
        multi-consumer fusion guard."""
        return sum(node.inputs.count(container) for node in self.pending
                   if node.state == PlanNode.PENDING)

    def _rewrite(self, batch: List[PlanNode]) -> List[_Step]:
        steps: List[_Step] = []
        by_output: Dict[int, _Step] = {}

        def declined(container) -> None:
            if self._pending_uses(container) > 1:
                self._count("skelcl_plan_fallback_total", reason="multi_consumer")

        for node in batch:
            if node.op == "map" and node.fusable:
                source = node.inputs[0]
                prev = by_output.get(id(source))
                if (prev is not None and prev.can_extend
                        and self._pending_uses(source) == 1):
                    if prev.kind == "map":
                        prev.nodes.append(node)
                    else:
                        prev.nodes.append(node)
                        prev.post.append(node)
                    by_output.pop(id(source))
                    by_output[id(node.output)] = prev
                    self._count("skelcl_fusion_total", rule="map_map")
                    continue
                if prev is not None:
                    declined(source)
                step = _Step("map", [node])
                steps.append(step)
                by_output[id(node.output)] = step
            elif node.op == "zip" and node.fusable:
                left, right = node.inputs
                step = _Step("zip", [node])
                step.zip_node = node
                for side, container in (("left", left), ("right", right)):
                    prev = by_output.get(id(container))
                    if (prev is not None and prev.kind == "map"
                            and prev.can_extend and not prev.post
                            and self._pending_uses(container) == 1):
                        setattr(step, side, prev.nodes)
                        step.nodes = sorted(step.nodes + prev.nodes,
                                            key=lambda n: n.seq)
                        steps.remove(prev)
                        by_output.pop(id(container))
                        self._count("skelcl_fusion_total", rule="zip_map")
                    elif prev is not None:
                        declined(container)
                steps.append(step)
                by_output[id(node.output)] = step
            else:
                step = _Step("eager", [node])
                steps.append(step)
                by_output[id(node.output)] = step
        return steps

    # -- execution ---------------------------------------------------------

    def _execute_steps(self, steps: Sequence[_Step]) -> None:
        self._executing += 1
        try:
            for step in steps:
                self._run_step(step)
        finally:
            self._executing -= 1

    def _run_step(self, step: _Step) -> None:
        if len(step.nodes) == 1:
            self._run_single(step.nodes[0])
            return
        for node in step.nodes:
            node.state = PlanNode.RUNNING
        try:
            if step.kind == "map":
                stages = step.nodes
                fused = compose.fused_map([n.skeleton for n in stages])
                extras: List = []
                for node in stages:
                    extras.extend(node.extras)
                label = compose.chain_label([n.skeleton for n in stages],
                                            stages[-1].label)
                fused._execute(stages[0].inputs[0], tuple(extras),
                               out=step.output, label=label)
            else:
                zip_node = step.zip_node
                fused = compose.fused_zip(
                    [n.skeleton for n in step.left],
                    [n.skeleton for n in step.right],
                    zip_node.skeleton,
                    [n.skeleton for n in step.post])
                extras = []
                for node in step.left:
                    extras.extend(node.extras)
                for node in step.right:
                    extras.extend(node.extras)
                extras.extend(zip_node.extras)
                for node in step.post:
                    extras.extend(node.extras)
                left_in = step.left[0].inputs[0] if step.left else zip_node.inputs[0]
                right_in = step.right[0].inputs[0] if step.right else zip_node.inputs[1]
                label = compose.chain_label(
                    [zip_node.skeleton] + [n.skeleton for n in step.post],
                    step.final.label, kind="Zip")
                fused._execute(left_in, right_in, tuple(extras),
                               out=step.output, label=label)
        finally:
            for node in step.nodes:
                if node is step.final:
                    node.state = PlanNode.DONE
                    self._detach(node)
                else:
                    self._elide(node)

    def _elide_step(self, step: _Step) -> None:
        """Mark every node of a chain consumed by a reduce as elided
        (none of its containers materialize)."""
        for node in step.nodes:
            self._elide(node)

    def _elide(self, node: PlanNode) -> None:
        node.state = PlanNode.ELIDED
        try:
            self.pending.remove(node)
        except ValueError:
            pass
        self._count("skelcl_plan_elided_total", op=node.op)

    def _run_single(self, node: PlanNode) -> None:
        node.state = PlanNode.RUNNING
        self._executing += 1
        try:
            node.run()
        finally:
            self._executing -= 1
            node.state = PlanNode.DONE
            self._detach(node)

    def _recompute(self, node: PlanNode) -> None:
        """Materialize an elided intermediate after all: run its eager
        path now (its inputs are still live — the write hooks force
        recomputation *before* any input mutation)."""
        if node.state != PlanNode.ELIDED:
            return
        for container in node.inputs:
            producer = getattr(container, "_pending", None)
            if producer is not None and producer is not node \
                    and producer.state in (PlanNode.PENDING, PlanNode.ELIDED):
                self.force_node(producer)
        self._count("skelcl_plan_recompute_total", op=node.op)
        self._run_single(node)

    def _detach(self, node: PlanNode) -> None:
        try:
            self.pending.remove(node)
        except ValueError:
            pass
        if node.output is not None and node.output._pending is node:
            node.output._pending = None
        for container in node.inputs:
            readers = getattr(container, "_pending_readers", None)
            if readers:
                container._pending_readers = [n for n in readers if n is not node]
