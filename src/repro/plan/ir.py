"""The plan IR: one node per deferred skeleton call.

A :class:`PlanNode` remembers everything needed to run the call later
through the skeleton's ordinary eager path (``node.run``), plus the
structured fields (skeleton, inputs, extras) the fusion rewrite needs
to compose user functions instead.

Node lifecycle::

    pending --> running --> done          (executed, eagerly or fused)
       \\
        +--> elided [--> running --> done]

``elided`` marks an intermediate that a fusion rule folded away: its
container was never materialized.  The node is kept (off the pending
list, still registered on its containers) so a later host access can
*recompute* it from its still-live inputs — the planner's host-mutation
taint rules guarantee those inputs cannot change under it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence


class PlanNode:
    PENDING = "pending"
    RUNNING = "running"
    ELIDED = "elided"
    DONE = "done"

    __slots__ = ("planner", "op", "skeleton", "inputs", "output", "extras",
                 "label", "run", "fusable", "seq", "state", "kw")

    def __init__(self, planner, op: str, skeleton, inputs: Sequence,
                 output, run: Callable[[], object], *, fusable: bool,
                 label: Optional[str], extras: tuple = (), seq: int = 0,
                 kw: Optional[dict] = None):
        self.planner = planner
        self.op = op  # "map" | "zip" | "reduce" | "scan" | "mapoverlap" | "allpairs"
        self.skeleton = skeleton
        self.inputs: List = list(inputs)
        self.output = output
        self.run = run
        self.extras = extras
        self.label = label
        self.fusable = fusable
        self.seq = seq
        self.state = PlanNode.PENDING
        self.kw = kw or {}

    @property
    def done(self) -> bool:
        return self.state == PlanNode.DONE

    def __repr__(self) -> str:
        name = getattr(getattr(self.skeleton, "user", None), "name", "?")
        return f"<PlanNode #{self.seq} {self.op}({name}) {self.state}>"
