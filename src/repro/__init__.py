"""repro: a reproduction of SkelCL (Steuwer & Gorlatch, PaCT 2013).

Subpackages:

* :mod:`repro.kernelc` — OpenCL-C subset compiler front-end + backends
* :mod:`repro.ocl` — simulated OpenCL runtime (devices, queues, buffers)
* :mod:`repro.skelcl` — the SkelCL library: containers, distributions,
  and the six algorithmic skeletons
* :mod:`repro.baselines` — CUDA/OpenCL-level comparison implementations
* :mod:`repro.apps` — applications used by the paper's evaluation
"""

__version__ = "1.0.0"
