"""Kernel-source lint: static checks beyond what the type checker enforces.

Runs over the *checked* AST (``ctype``/``symbol``/``resolved``
annotations present) and reports through the same
:class:`~repro.kernelc.diagnostics.DiagnosticSink` machinery as the rest
of the front-end, so findings render with carets like compile errors.

Rule catalogue (see ``docs/analysis.md``):

========================  ========  =================================================
rule                      severity  fires when
========================  ========  =================================================
barrier-divergence        warning   ``barrier()`` inside control flow whose condition
                                    depends on ``get_global_id``/``get_local_id`` —
                                    work-items may disagree on reaching it (UB on GPUs)
constant-index-oob        error     an index into a fixed-size array is *provably*
                                    out of bounds (interval analysis, the same engine
                                    as ``boundcheck``)
symbolic-oob              error     the affine access analysis (SkelAccess) finds a
                                    *witness work-item* — guaranteed to exist for any
                                    launch honouring ``reqd_work_group_size`` — whose
                                    index into a fixed-size array is out of bounds
                                    with every guard on the access satisfied
unused-binding            warning   a parameter or local variable is never read
write-to-constant         error     a store through ``__constant`` memory
missing-return            warning   a non-void function may fall off the end
                                    without returning a value
uncoalesced-access        warning   a store through a ``__global`` pointer whose
                                    per-work-item stride along dimension 0 is >= 2
                                    elements (or symbolic) — adjacent lanes hit
                                    non-adjacent memory, wasting DRAM bursts
strided-global-read       warning   the load-side twin of ``uncoalesced-access``
========================  ========  =================================================

A finding can be acknowledged with a ``skelcl-lint: allow(<rule>)``
comment on the diagnostic's line or the line above it.

Entry points: :func:`lint_program` (library), ``python -m repro.kernelc
--lint`` (CLI), and ``Program.build()`` which lints every build and
keeps the findings in ``Program.lint_diagnostics``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set

from . import ast, boundcheck
from .ctypes_ import ArrayType, PointerType
from .diagnostics import Diagnostic, DiagnosticSink
from .source import Span

_ALLOW_RE = re.compile(r"skelcl-lint:\s*allow\(([a-z0-9-]+)\)")
_RULE_RE = re.compile(r"\[([a-z0-9-]+)\]\s*$")

# Builtins whose value differs between work-items: control flow keyed on
# them is divergent.  get_group_id/get_num_groups/get_*_size are uniform
# across a work-group, which is all barrier semantics needs.
_DIVERGENT_BUILTINS = {"get_global_id", "get_local_id"}


def lint_program(program: ast.Program,
                 sink: Optional[DiagnosticSink] = None) -> List[Diagnostic]:
    """Run every lint rule over a checked ``program``; returns the
    diagnostics (also accumulated into ``sink`` when one is given)."""
    if sink is None:
        sink = DiagnosticSink(getattr(program, "source", None))
    before = len(sink.diagnostics)
    for fn in program.functions:
        if fn.body is None:
            continue
        _check_barrier_divergence(fn, sink)
        _check_constant_index_oob(fn, sink)
        _check_unused_bindings(fn, sink)
        _check_write_to_constant(fn, sink)
        _check_missing_return(fn, sink)
        if fn.is_kernel:
            _check_access_footprints(program, fn, sink)
    _apply_suppressions(program, sink, before)
    return sink.diagnostics[before:]


def _apply_suppressions(program: ast.Program, sink: DiagnosticSink,
                        before: int) -> None:
    """Drop findings acknowledged by a ``skelcl-lint: allow(rule)``
    comment on the same or the preceding source line."""
    source = getattr(program, "source", None)
    if source is None:
        return

    def allowed(diag: Diagnostic) -> bool:
        rule = _RULE_RE.search(diag.message)
        if rule is None or diag.span is None or diag.span.start.line <= 0:
            return False
        for line in (diag.span.start.line, diag.span.start.line - 1):
            for m in _ALLOW_RE.finditer(source.line_text(line)):
                if m.group(1) == rule.group(1):
                    return True
        return False

    sink.diagnostics[before:] = [
        d for d in sink.diagnostics[before:] if not allowed(d)
    ]


# -- rule: barrier-divergence ------------------------------------------------


def _expr_divergent(expr: Optional[ast.Expr], tainted: Set[str]) -> bool:
    if expr is None:
        return False
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and node.callee in _DIVERGENT_BUILTINS:
            return True
        if isinstance(node, ast.Identifier) and node.name in tainted:
            return True
    return False


def _tainted_vars(fn: ast.FunctionDef) -> Set[str]:
    """Variables whose value (transitively) depends on a work-item id.

    Flow-insensitive fixpoint: sound for the warning's purpose — it may
    over-taint a name that is later reassigned uniformly, never the
    reverse."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.body):
            name = rhs = None
            if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
                name, rhs = node.target.name, node.value
            elif isinstance(node, ast.VarDecl) and node.init is not None:
                name, rhs = node.name, node.init
            if name is not None and name not in tainted and _expr_divergent(rhs, tainted):
                tainted.add(name)
                changed = True
    return tainted


def _check_barrier_divergence(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    if not getattr(fn, "uses_barrier", False):
        return
    tainted = _tainted_vars(fn)

    def visit(stmt: ast.Stmt, divergent_at: Optional[Span]) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.statements:
                visit(child, divergent_at)
        elif isinstance(stmt, ast.IfStmt):
            here = divergent_at
            if here is None and _expr_divergent(stmt.condition, tainted):
                here = stmt.condition.span
            visit(stmt.then_branch, here)
            if stmt.else_branch is not None:
                visit(stmt.else_branch, here)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoStmt)):
            here = divergent_at
            if here is None and _expr_divergent(stmt.condition, tainted):
                here = stmt.condition.span
            visit(stmt.body, here)
        elif isinstance(stmt, ast.SwitchStmt):
            here = divergent_at
            if here is None and _expr_divergent(stmt.subject, tainted):
                here = stmt.subject.span
            for case in stmt.cases:
                for child in case.body:
                    visit(child, here)
        elif isinstance(stmt, ast.ExprStmt) and stmt.expr is not None:
            if divergent_at is None:
                return
            for node in ast.walk(stmt.expr):
                if isinstance(node, ast.Call) and node.callee == "barrier":
                    sink.warning(
                        "barrier() inside control flow that diverges across "
                        "work-items (condition at "
                        f"{divergent_at.start}) — work-items taking different "
                        "paths deadlock or corrupt local memory on real GPUs "
                        "[barrier-divergence]",
                        node.span,
                    )

    visit(fn.body, None)


# -- rule: constant-index-oob ------------------------------------------------


class _OobScanner(boundcheck.IntervalAnalyzer):
    """Reuses the boundcheck interval engine to prove indices OOB.

    Only *definite* violations are reported: the index interval is known
    (not ⊤) and lies entirely outside ``[0, length)``, so every
    execution reaching the access is out of bounds."""

    def __init__(self, sink: DiagnosticSink):
        super().__init__()
        self.sink = sink
        self._reported: Set[int] = set()

    def visit_expr(self, node: ast.Expr, env) -> None:
        super().visit_expr(node, env)
        if not isinstance(node, ast.Index) or id(node) in self._reported:
            return
        base_type = getattr(node.base, "ctype", None)
        if not isinstance(base_type, ArrayType):
            return
        interval = self.eval(node.index, env)
        if interval.is_top:
            return
        if interval.hi < 0 or interval.lo >= base_type.length:
            self._reported.add(id(node))
            shown = (f"{int(interval.lo)}" if interval.lo == interval.hi
                     else f"[{int(interval.lo)}, {int(interval.hi)}]")
            self.sink.error(
                f"index {shown} is out of bounds for array of length "
                f"{base_type.length} [constant-index-oob]",
                node.span,
            )


def _check_constant_index_oob(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    scanner = _OobScanner(sink)
    scanner.exec_stmt(fn.body, boundcheck.IntervalEnv())


# -- rule: unused-binding ----------------------------------------------------


def _check_unused_bindings(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    used: Set[str] = set()
    for node in ast.walk(fn.body):
        if isinstance(node, ast.Identifier):
            used.add(node.name)
    for param in fn.params:
        if param.name not in used:
            sink.warning(
                f"parameter {param.name!r} of {fn.name}() is never used "
                f"[unused-binding]",
                param.span,
            )
    for node in ast.walk(fn.body):
        if isinstance(node, ast.VarDecl) and node.name not in used:
            sink.warning(
                f"local variable {node.name!r} is never used [unused-binding]",
                node.span,
            )


# -- rule: write-to-constant -------------------------------------------------


def _lvalue_in_constant_space(target: ast.Expr) -> bool:
    """True when ``target`` denotes storage in ``__constant`` memory."""
    node = target
    while isinstance(node, (ast.Index, ast.Member)):
        node = node.base
    if isinstance(node, ast.UnaryOp) and node.op == "*":
        pointee = getattr(node.operand, "ctype", None)
        return isinstance(pointee, PointerType) and pointee.address_space == "constant"
    symbol = getattr(node, "symbol", None)
    if symbol is None:
        return False
    if symbol.address_space == "constant":
        return True
    # Indexing a __constant pointer parameter.
    ctype = symbol.ctype
    return (target is not node and isinstance(ctype, PointerType)
            and ctype.address_space == "constant")


def _check_write_to_constant(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    for node in ast.walk(fn.body):
        target = None
        if isinstance(node, ast.Assignment):
            target = node.target
        elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and node.op in ("++", "--"):
            target = node.operand
        if target is not None and _lvalue_in_constant_space(target):
            sink.error(
                "write to __constant memory [write-to-constant]",
                node.span,
            )


# -- rule: missing-return ----------------------------------------------------


def _always_returns(stmt: Optional[ast.Stmt]) -> bool:
    """Conservatively: does every path through ``stmt`` hit a return?"""
    if stmt is None:
        return False
    if isinstance(stmt, ast.ReturnStmt):
        return True
    if isinstance(stmt, ast.CompoundStmt):
        return any(_always_returns(child) for child in stmt.statements)
    if isinstance(stmt, ast.IfStmt):
        return (stmt.else_branch is not None
                and _always_returns(stmt.then_branch)
                and _always_returns(stmt.else_branch))
    if isinstance(stmt, ast.DoStmt):
        return _always_returns(stmt.body)  # body runs at least once
    # for/while may iterate zero times; switch may match no case.
    return False


def _check_missing_return(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    if fn.return_type.is_void() or fn.is_kernel:
        return
    if not _always_returns(fn.body):
        sink.warning(
            f"{fn.name}() returns {fn.return_type} but may fall off the end "
            f"without a return value [missing-return]",
            fn.span,
        )


# -- rules: symbolic-oob / uncoalesced-access / strided-global-read ----------
#
# Both build on the SkelAccess affine summary (repro.analysis.affine):
# symbolic-oob searches for a concrete *witness work-item* whose array
# index provably escapes the bounds, uncoalesced-access/strided-global-
# read look at the per-work-item stride of each __global footprint.

#: Coalescing threshold: an element stride of +-1 (or 0, a broadcast)
#: between lane-adjacent work-items coalesces into one DRAM burst;
#: anything wider — or symbolic — splits the warp's accesses.
_COALESCE_MAX_STRIDE = 1

_MAX_WITNESS_SYMS = 6


def _check_access_footprints(program: ast.Program, fn: ast.FunctionDef,
                             sink: DiagnosticSink) -> None:
    from ..analysis import affine

    try:
        summary = affine.cached_kernel_summary(program, fn)
    except Exception:
        return  # the lint pass must never break a build
    _check_symbolic_oob(summary, sink)
    _check_coalescing(summary, sink)


def _witness_ranges(summary) -> dict:
    """Variant-symbol ranges every conforming launch is guaranteed to
    attain: work-item (0,..,0) always exists; with a
    ``reqd_work_group_size`` attribute the whole first group does (the
    NDRange API enforces that local sizes divide global sizes)."""
    reqd = summary.reqd_wg or (1, 1, 1)
    ranges = {}
    for d in range(3):
        limit = max(0, reqd[d] - 1)
        ranges[("gid", d)] = (0, limit)
        ranges[("lid", d)] = (0, limit)
        ranges[("grp", d)] = (0, 0)
    return ranges


def _witness_uniforms(summary) -> dict:
    uniforms = {}
    reqd = summary.reqd_wg
    if reqd is not None:
        for d in range(3):
            uniforms[("lsize", d)] = reqd[d]
    return uniforms


def _corners(ranges: dict, syms: list) -> list:
    points = [{}]
    for sym in syms:
        lo, hi = ranges[sym]
        values = (lo,) if lo == hi else (lo, hi)
        points = [{**p, sym: v} for p in points for v in values]
    return points


def _check_symbolic_oob(summary, sink: DiagnosticSink) -> None:
    from ..analysis import affine

    env = affine.EvalEnv(_witness_uniforms(summary), _witness_ranges(summary))
    reported: Set[int] = set()
    for site in summary.array_sites:
        if site.index is None or id(site.span) in reported:
            continue
        try:
            base, coeffs = affine._concrete(site.index, env)
            guards = [affine._concrete(g, env) for g in site.guards]
        except KeyError:
            continue  # references a scalar parameter: not definite
        if not coeffs:
            continue  # constant index: constant-index-oob's territory
        syms = sorted(set(coeffs) | {s for _b, gc in guards for s in gc})
        if len(syms) > _MAX_WITNESS_SYMS or any(
                s not in env.ranges and s[0] != "iv" for s in syms):
            continue
        # An induction symbol is pinned to iteration 0 below, which
        # presumes the loop body executes at least once.  That is only
        # justified when some captured guard constrains the symbol (an
        # affine loop condition); a guard-free iv comes from a loop the
        # analysis could not model, which may run zero times — no
        # definite witness exists there.
        guarded = {s for _b, gc in guards for s in gc}
        if any(s[0] == "iv" and s not in guarded for s in coeffs):
            continue
        ranges = {s: (0, 0) if s[0] == "iv" else env.ranges[s] for s in syms}
        narrowed = affine.narrow_ranges(guards, ranges)
        if narrowed is None:
            continue  # guards infeasible over the witness domain
        for point in _corners(narrowed, syms):
            if any(gb + sum(gc.get(s, 0) * v for s, v in point.items()) > 0
                   for gb, gc in guards):
                continue
            index = base + sum(coeffs.get(s, 0) * v for s, v in point.items())
            if index < 0 or index >= site.length:
                reported.add(id(site.span))
                witness = ", ".join(
                    f"{affine._format_sym(s)}={v}" for s, v in point.items())
                sink.error(
                    f"index {site.index.format()} = {index} is out of "
                    f"bounds for array '{site.name}' of length "
                    f"{site.length} at {witness or 'any work-item'} "
                    f"[symbolic-oob]",
                    site.span,
                )
                break


def _check_coalescing(summary, sink: DiagnosticSink) -> None:
    seen: Set[tuple] = set()
    for psum in summary.params.values():
        if not psum.affine or psum.space != "global":
            continue
        for fp in psum.footprints:
            stride = fp.warp_stride()
            if stride is not None and abs(stride) <= _COALESCE_MAX_STRIDE:
                continue
            has_variant = bool(fp.index.terms)
            if not has_variant:
                continue  # uniform broadcast: served by one transaction
            rule = ("uncoalesced-access" if fp.mode == "w"
                    else "strided-global-read")
            key = (rule, fp.param, id(fp.span))
            if key in seen:
                continue
            seen.add(key)
            shown = "symbolic" if stride is None else str(stride)
            verb = "store to" if fp.mode == "w" else "load from"
            sink.warning(
                f"{verb} __global '{fp.param}' has per-work-item stride "
                f"{shown} elements along dimension 0 — adjacent work-items "
                f"touch non-adjacent memory, splitting the DRAM burst "
                f"[{rule}]",
                fp.span,
            )
