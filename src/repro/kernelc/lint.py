"""Kernel-source lint: static checks beyond what the type checker enforces.

Runs over the *checked* AST (``ctype``/``symbol``/``resolved``
annotations present) and reports through the same
:class:`~repro.kernelc.diagnostics.DiagnosticSink` machinery as the rest
of the front-end, so findings render with carets like compile errors.

Rule catalogue (see ``docs/analysis.md``):

========================  ========  =================================================
rule                      severity  fires when
========================  ========  =================================================
barrier-divergence        warning   ``barrier()`` inside control flow whose condition
                                    depends on ``get_global_id``/``get_local_id`` —
                                    work-items may disagree on reaching it (UB on GPUs)
constant-index-oob        error     an index into a fixed-size array is *provably*
                                    out of bounds (interval analysis, the same engine
                                    as ``boundcheck``)
unused-binding            warning   a parameter or local variable is never read
write-to-constant         error     a store through ``__constant`` memory
missing-return            warning   a non-void function may fall off the end
                                    without returning a value
========================  ========  =================================================

Entry points: :func:`lint_program` (library), ``python -m repro.kernelc
--lint`` (CLI), and ``Program.build()`` which lints every build and
keeps the findings in ``Program.lint_diagnostics``.
"""

from __future__ import annotations

from typing import List, Optional, Set

from . import ast, boundcheck
from .ctypes_ import ArrayType, PointerType
from .diagnostics import Diagnostic, DiagnosticSink
from .source import Span

# Builtins whose value differs between work-items: control flow keyed on
# them is divergent.  get_group_id/get_num_groups/get_*_size are uniform
# across a work-group, which is all barrier semantics needs.
_DIVERGENT_BUILTINS = {"get_global_id", "get_local_id"}


def lint_program(program: ast.Program,
                 sink: Optional[DiagnosticSink] = None) -> List[Diagnostic]:
    """Run every lint rule over a checked ``program``; returns the
    diagnostics (also accumulated into ``sink`` when one is given)."""
    if sink is None:
        sink = DiagnosticSink(getattr(program, "source", None))
    before = len(sink.diagnostics)
    for fn in program.functions:
        if fn.body is None:
            continue
        _check_barrier_divergence(fn, sink)
        _check_constant_index_oob(fn, sink)
        _check_unused_bindings(fn, sink)
        _check_write_to_constant(fn, sink)
        _check_missing_return(fn, sink)
    return sink.diagnostics[before:]


# -- rule: barrier-divergence ------------------------------------------------


def _expr_divergent(expr: Optional[ast.Expr], tainted: Set[str]) -> bool:
    if expr is None:
        return False
    for node in ast.walk(expr):
        if isinstance(node, ast.Call) and node.callee in _DIVERGENT_BUILTINS:
            return True
        if isinstance(node, ast.Identifier) and node.name in tainted:
            return True
    return False


def _tainted_vars(fn: ast.FunctionDef) -> Set[str]:
    """Variables whose value (transitively) depends on a work-item id.

    Flow-insensitive fixpoint: sound for the warning's purpose — it may
    over-taint a name that is later reassigned uniformly, never the
    reverse."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.body):
            name = rhs = None
            if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
                name, rhs = node.target.name, node.value
            elif isinstance(node, ast.VarDecl) and node.init is not None:
                name, rhs = node.name, node.init
            if name is not None and name not in tainted and _expr_divergent(rhs, tainted):
                tainted.add(name)
                changed = True
    return tainted


def _check_barrier_divergence(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    if not getattr(fn, "uses_barrier", False):
        return
    tainted = _tainted_vars(fn)

    def visit(stmt: ast.Stmt, divergent_at: Optional[Span]) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.statements:
                visit(child, divergent_at)
        elif isinstance(stmt, ast.IfStmt):
            here = divergent_at
            if here is None and _expr_divergent(stmt.condition, tainted):
                here = stmt.condition.span
            visit(stmt.then_branch, here)
            if stmt.else_branch is not None:
                visit(stmt.else_branch, here)
        elif isinstance(stmt, (ast.ForStmt, ast.WhileStmt, ast.DoStmt)):
            here = divergent_at
            if here is None and _expr_divergent(stmt.condition, tainted):
                here = stmt.condition.span
            visit(stmt.body, here)
        elif isinstance(stmt, ast.SwitchStmt):
            here = divergent_at
            if here is None and _expr_divergent(stmt.subject, tainted):
                here = stmt.subject.span
            for case in stmt.cases:
                for child in case.body:
                    visit(child, here)
        elif isinstance(stmt, ast.ExprStmt) and stmt.expr is not None:
            if divergent_at is None:
                return
            for node in ast.walk(stmt.expr):
                if isinstance(node, ast.Call) and node.callee == "barrier":
                    sink.warning(
                        "barrier() inside control flow that diverges across "
                        "work-items (condition at "
                        f"{divergent_at.start}) — work-items taking different "
                        "paths deadlock or corrupt local memory on real GPUs "
                        "[barrier-divergence]",
                        node.span,
                    )

    visit(fn.body, None)


# -- rule: constant-index-oob ------------------------------------------------


class _OobScanner(boundcheck.IntervalAnalyzer):
    """Reuses the boundcheck interval engine to prove indices OOB.

    Only *definite* violations are reported: the index interval is known
    (not ⊤) and lies entirely outside ``[0, length)``, so every
    execution reaching the access is out of bounds."""

    def __init__(self, sink: DiagnosticSink):
        super().__init__()
        self.sink = sink
        self._reported: Set[int] = set()

    def visit_expr(self, node: ast.Expr, env) -> None:
        super().visit_expr(node, env)
        if not isinstance(node, ast.Index) or id(node) in self._reported:
            return
        base_type = getattr(node.base, "ctype", None)
        if not isinstance(base_type, ArrayType):
            return
        interval = self.eval(node.index, env)
        if interval.is_top:
            return
        if interval.hi < 0 or interval.lo >= base_type.length:
            self._reported.add(id(node))
            shown = (f"{int(interval.lo)}" if interval.lo == interval.hi
                     else f"[{int(interval.lo)}, {int(interval.hi)}]")
            self.sink.error(
                f"index {shown} is out of bounds for array of length "
                f"{base_type.length} [constant-index-oob]",
                node.span,
            )


def _check_constant_index_oob(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    scanner = _OobScanner(sink)
    scanner.exec_stmt(fn.body, boundcheck.IntervalEnv())


# -- rule: unused-binding ----------------------------------------------------


def _check_unused_bindings(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    used: Set[str] = set()
    for node in ast.walk(fn.body):
        if isinstance(node, ast.Identifier):
            used.add(node.name)
    for param in fn.params:
        if param.name not in used:
            sink.warning(
                f"parameter {param.name!r} of {fn.name}() is never used "
                f"[unused-binding]",
                param.span,
            )
    for node in ast.walk(fn.body):
        if isinstance(node, ast.VarDecl) and node.name not in used:
            sink.warning(
                f"local variable {node.name!r} is never used [unused-binding]",
                node.span,
            )


# -- rule: write-to-constant -------------------------------------------------


def _lvalue_in_constant_space(target: ast.Expr) -> bool:
    """True when ``target`` denotes storage in ``__constant`` memory."""
    node = target
    while isinstance(node, (ast.Index, ast.Member)):
        node = node.base
    if isinstance(node, ast.UnaryOp) and node.op == "*":
        pointee = getattr(node.operand, "ctype", None)
        return isinstance(pointee, PointerType) and pointee.address_space == "constant"
    symbol = getattr(node, "symbol", None)
    if symbol is None:
        return False
    if symbol.address_space == "constant":
        return True
    # Indexing a __constant pointer parameter.
    ctype = symbol.ctype
    return (target is not node and isinstance(ctype, PointerType)
            and ctype.address_space == "constant")


def _check_write_to_constant(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    for node in ast.walk(fn.body):
        target = None
        if isinstance(node, ast.Assignment):
            target = node.target
        elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and node.op in ("++", "--"):
            target = node.operand
        if target is not None and _lvalue_in_constant_space(target):
            sink.error(
                "write to __constant memory [write-to-constant]",
                node.span,
            )


# -- rule: missing-return ----------------------------------------------------


def _always_returns(stmt: Optional[ast.Stmt]) -> bool:
    """Conservatively: does every path through ``stmt`` hit a return?"""
    if stmt is None:
        return False
    if isinstance(stmt, ast.ReturnStmt):
        return True
    if isinstance(stmt, ast.CompoundStmt):
        return any(_always_returns(child) for child in stmt.statements)
    if isinstance(stmt, ast.IfStmt):
        return (stmt.else_branch is not None
                and _always_returns(stmt.then_branch)
                and _always_returns(stmt.else_branch))
    if isinstance(stmt, ast.DoStmt):
        return _always_returns(stmt.body)  # body runs at least once
    # for/while may iterate zero times; switch may match no case.
    return False


def _check_missing_return(fn: ast.FunctionDef, sink: DiagnosticSink) -> None:
    if fn.return_type.is_void() or fn.is_kernel:
        return
    if not _always_returns(fn.body):
        sink.warning(
            f"{fn.name}() returns {fn.return_type} but may fall off the end "
            f"without a return value [missing-return]",
            fn.span,
        )
