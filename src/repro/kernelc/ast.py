"""Abstract syntax tree for the OpenCL-C subset.

Nodes are plain dataclasses carrying a :class:`Span`.  After type
checking, expression nodes additionally carry a ``ctype`` attribute
(filled in by :mod:`repro.kernelc.typecheck`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .ctypes_ import CType
from .source import Span


class Node:
    span: Span


class Expr(Node):
    """Base of all expressions; ``ctype`` is set by the type checker."""

    ctype: Optional[CType] = None
    # True when this expression denotes an lvalue (set by the checker).
    is_lvalue: bool = False


class Stmt(Node):
    pass


# -- expressions -----------------------------------------------------------


@dataclass
class IntLiteral(Expr):
    value: int
    span: Span
    suffix: str = ""


@dataclass
class FloatLiteral(Expr):
    value: float
    span: Span
    suffix: str = ""


@dataclass
class CharLiteral(Expr):
    value: int
    span: Span


@dataclass
class StringLiteral(Expr):
    value: str
    span: Span


@dataclass
class Identifier(Expr):
    name: str
    span: Span


@dataclass
class UnaryOp(Expr):
    op: str  # one of: + - ! ~ * & ++ -- (prefix)
    operand: Expr
    span: Span


@dataclass
class PostfixOp(Expr):
    op: str  # ++ or --
    operand: Expr
    span: Span


@dataclass
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr
    span: Span


@dataclass
class Assignment(Expr):
    op: str  # '=', '+=', '-=', ...
    target: Expr
    value: Expr
    span: Span


@dataclass
class Conditional(Expr):
    condition: Expr
    then_expr: Expr
    else_expr: Expr
    span: Span


@dataclass
class Call(Expr):
    callee: str
    args: List[Expr]
    span: Span
    # Filled by the checker: 'builtin', 'user', or 'constructor'.
    kind: str = ""


@dataclass
class Index(Expr):
    base: Expr
    index: Expr
    span: Span


@dataclass
class Member(Expr):
    base: Expr
    member: str  # vector component access: x/y/z/w, lo/hi, sN, or swizzle
    span: Span


@dataclass
class Cast(Expr):
    target_type: CType
    operand: Expr
    span: Span


@dataclass
class VectorLiteral(Expr):
    """OpenCL vector construction ``(float4)(a, b, c, d)``.

    Also reused (with ``target_type=None`` and ``is_array_initializer``
    set) for brace array initializers ``{1, 2, 3}``.
    """

    target_type: Optional[CType]
    elements: List[Expr]
    span: Span
    is_array_initializer: bool = False


@dataclass
class SizeofExpr(Expr):
    queried_type: Optional[CType]
    operand: Optional[Expr]
    span: Span


@dataclass
class CommaExpr(Expr):
    parts: List[Expr]
    span: Span


# -- statements ------------------------------------------------------------


@dataclass
class VarDecl(Node):
    name: str
    declared_type: CType
    init: Optional[Expr]
    span: Span
    address_space: str = "private"
    is_const: bool = False


@dataclass
class DeclStmt(Stmt):
    decls: List[VarDecl]
    span: Span


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]  # None for the empty statement ';'
    span: Span


@dataclass
class CompoundStmt(Stmt):
    statements: List[Stmt]
    span: Span


@dataclass
class IfStmt(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt]
    span: Span


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]  # DeclStmt or ExprStmt
    condition: Optional[Expr]
    increment: Optional[Expr]
    body: Stmt
    span: Span


@dataclass
class WhileStmt(Stmt):
    condition: Expr
    body: Stmt
    span: Span


@dataclass
class DoStmt(Stmt):
    body: Stmt
    condition: Expr
    span: Span


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]
    span: Span


@dataclass
class BreakStmt(Stmt):
    span: Span


@dataclass
class ContinueStmt(Stmt):
    span: Span


@dataclass
class SwitchCase(Node):
    """One ``case value:`` (or ``default:``) label with its statements."""

    value: Optional[Expr]  # None for default
    body: List[Stmt]
    span: Span


@dataclass
class SwitchStmt(Stmt):
    subject: Expr
    cases: List[SwitchCase]
    span: Span


# -- declarations ----------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    declared_type: CType
    span: Span


@dataclass
class FunctionDef(Node):
    name: str
    return_type: CType
    params: List[Param]
    body: Optional[CompoundStmt]  # None for a prototype
    span: Span
    is_kernel: bool = False
    attributes: Tuple[str, ...] = ()


@dataclass
class GlobalDecl(Node):
    """A file-scope constant declaration (``__constant`` data)."""

    decl: VarDecl
    span: Span


@dataclass
class Program(Node):
    functions: List[FunctionDef]
    globals: List[GlobalDecl] = field(default_factory=list)
    prototypes: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def kernels(self) -> List[FunctionDef]:
        return [fn for fn in self.functions if fn.is_kernel]


# -- visitor ----------------------------------------------------------------


class Visitor:
    """Generic AST visitor; dispatches on node class name."""

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", self.generic_visit)
        return method(node)

    def generic_visit(self, node: Node):
        for child in children(node):
            self.visit(child)


def children(node: Node) -> List[Node]:
    """The direct child nodes of ``node`` in source order."""
    result: List[Node] = []

    def add(value):
        if isinstance(value, Node):
            result.append(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                add(item)

    for attr_name, value in vars(node).items():
        # Skip non-child annotations: types, spans, and checker-added
        # cross-references (Call.callee_def would make recursive
        # functions cyclic; Identifier.symbol is not part of the tree).
        if attr_name in ("span", "ctype", "declared_type", "target_type",
                         "queried_type", "callee_def", "resolved", "symbol"):
            continue
        add(value)
    return result


def walk(node: Node):
    """Yield ``node`` and all its descendants, pre-order."""
    yield node
    for child in children(node):
        yield from walk(child)
