"""Hand-written lexer for the OpenCL-C subset.

Produces a list of :class:`~repro.kernelc.tokens.Token`.  Comments are
skipped; newlines are not tokens (the preprocessor runs on raw lines
before lexing).  All errors are reported through a
:class:`~repro.kernelc.diagnostics.DiagnosticSink`.
"""

from __future__ import annotations

from typing import List, Optional

from .diagnostics import DiagnosticSink
from .source import SourceFile
from .tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


class Lexer:
    def __init__(self, source: SourceFile, sink: Optional[DiagnosticSink] = None):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.sink = sink if sink is not None else DiagnosticSink(source)

    # -- helpers ---------------------------------------------------------

    def _peek(self, ahead: int = 0) -> str:
        # Returns NUL at end-of-input: unlike "", it is never a member of
        # character-class strings like "uUlL", avoiding `"" in s` pitfalls.
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else "\0"

    def _make(self, kind: TokenKind, start: int, value=None, suffix: str = "") -> Token:
        return Token(kind, self.text[start : self.pos], self.source.span(start, self.pos), value, suffix)

    def _error(self, message: str, start: int) -> None:
        self.sink.error(message, self.source.span(start, max(self.pos, start + 1)))

    # -- scanning --------------------------------------------------------

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n\f\v":
                self.pos += 1
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self.pos += 1
            elif ch == "/" and self._peek(1) == "*":
                start = self.pos
                self.pos += 2
                while self.pos < len(self.text) and not (self.text[self.pos] == "*" and self._peek(1) == "/"):
                    self.pos += 1
                if self.pos >= len(self.text):
                    self._error("unterminated block comment", start)
                    return
                self.pos += 2
            else:
                return

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self.pos
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", self.source.span(start, start))

        ch = self.text[self.pos]
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(start)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(start)
        if ch == "'":
            return self._lex_char(start)
        if ch == '"':
            return self._lex_string(start)
        for punct in PUNCTUATORS:
            if self.text.startswith(punct, self.pos):
                self.pos += len(punct)
                return self._make(TokenKind.PUNCT, start)
        self.pos += 1
        self._error(f"unexpected character {ch!r}", start)
        return self.next_token()

    def _lex_identifier(self, start: int) -> Token:
        while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] == "_"):
            self.pos += 1
        text = self.text[start : self.pos]
        if text in KEYWORDS:
            if text == "true":
                return Token(TokenKind.INT_LITERAL, text, self.source.span(start, self.pos), 1)
            if text == "false":
                return Token(TokenKind.INT_LITERAL, text, self.source.span(start, self.pos), 0)
            return self._make(TokenKind.KEYWORD, start)
        return self._make(TokenKind.IDENT, start)

    def _lex_number(self, start: int) -> Token:
        text = self.text
        is_float = False
        if text.startswith(("0x", "0X"), self.pos):
            self.pos += 2
            digit_start = self.pos
            while self.pos < len(text) and text[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            if self.pos == digit_start:
                self._error("missing digits in hexadecimal literal", start)
                return self._make(TokenKind.INT_LITERAL, start, 0)
            value = int(text[start + 2 : self.pos], 16)
            suffix = self._lex_int_suffix()
            return self._make(TokenKind.INT_LITERAL, start, value, suffix)

        while self.pos < len(text) and text[self.pos].isdigit():
            self.pos += 1
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self.pos += 1
            while self.pos < len(text) and text[self.pos].isdigit():
                self.pos += 1
        if self._peek() in "eE" and (self._peek(1).isdigit() or (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self.pos += 1
            if self._peek() in "+-":
                self.pos += 1
            while self.pos < len(text) and text[self.pos].isdigit():
                self.pos += 1

        body = text[start : self.pos]
        if is_float:
            suffix = ""
            if self._peek() in "fF":
                suffix = "f"
                self.pos += 1
            elif self._peek() in "lL":
                suffix = "l"
                self.pos += 1
            return self._make(TokenKind.FLOAT_LITERAL, start, float(body), suffix)
        # Octal literals (leading 0) decode as octal like C.
        if len(body) > 1 and body[0] == "0" and all(c in "01234567" for c in body[1:]):
            value = int(body, 8)
        else:
            value = int(body, 10)
        suffix = self._lex_int_suffix()
        return self._make(TokenKind.INT_LITERAL, start, value, suffix)

    def _lex_int_suffix(self) -> str:
        suffix = ""
        while self._peek() in "uUlL":
            suffix += self.text[self.pos].lower()
            self.pos += 1
        return suffix

    def _lex_escape(self, start: int) -> str:
        # Caller consumed the backslash.
        if self.pos >= len(self.text):
            self._error("unterminated escape sequence", start)
            return ""
        ch = self._peek()
        self.pos += 1
        if ch == "x":
            digits = ""
            while self._peek() in "0123456789abcdefABCDEF":
                digits += self.text[self.pos]
                self.pos += 1
            if not digits:
                self._error("\\x used with no following hex digits", start)
                return ""
            return chr(int(digits, 16) & 0xFF)
        if ch in _SIMPLE_ESCAPES:
            return _SIMPLE_ESCAPES[ch]
        self._error(f"unknown escape sequence '\\{ch}'", start)
        return ch

    def _lex_char(self, start: int) -> Token:
        self.pos += 1  # opening quote
        if self._peek() == "\\":
            self.pos += 1
            decoded = self._lex_escape(start)
            value = ord(decoded) if decoded else 0
        elif self.pos < len(self.text) and self._peek() != "'":
            value = ord(self.text[self.pos])
            self.pos += 1
        else:
            self._error("empty character literal", start)
            value = 0
        if self._peek() == "'":
            self.pos += 1
        else:
            self._error("unterminated character literal", start)
        return self._make(TokenKind.CHAR_LITERAL, start, value)

    def _lex_string(self, start: int) -> Token:
        self.pos += 1  # opening quote
        parts: List[str] = []
        while self.pos < len(self.text) and self.text[self.pos] not in ('"', "\n"):
            if self.text[self.pos] == "\\":
                self.pos += 1
                parts.append(self._lex_escape(start))
            else:
                parts.append(self.text[self.pos])
                self.pos += 1
        if self._peek() == '"':
            self.pos += 1
        else:
            self._error("unterminated string literal", start)
        return self._make(TokenKind.STRING_LITERAL, start, "".join(parts))


def tokenize(text: str, name: str = "<kernel>", sink: Optional[DiagnosticSink] = None) -> List[Token]:
    """Tokenize ``text``, raising :class:`CompileError` on lexical errors."""
    source = SourceFile(text, name)
    own_sink = sink if sink is not None else DiagnosticSink(source)
    tokens = Lexer(source, own_sink).tokenize()
    if sink is None:
        own_sink.check()
    return tokens
