"""Recursive-descent parser for the OpenCL-C subset.

Grammar highlights (close to C99 with OpenCL qualifiers):

* top level: function definitions, prototypes (accepted, recorded for
  signature checking) and ``__constant`` global declarations;
* declarations with address-space qualifiers (``__global float*``),
  ``const``, multi-declarator lists and fixed-size (multi-dimensional)
  arrays;
* the full C expression grammar minus: compound literals, ``goto`` and
  labels, variadic functions, bit-fields and structs/unions;
* OpenCL vector literals ``(float4)(a, b, 0.0f, 1.0f)``.

Binary expressions are parsed with precedence climbing.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .ctypes_ import (
    ArrayType,
    CType,
    PointerType,
    SCALAR_TYPES,
    VectorType,
    make_vector_type,
)
from .diagnostics import CompileError, DiagnosticSink
from .source import SourceFile, Span
from .tokens import Token, TokenKind

# Binary operator precedence (higher binds tighter), C table.
_BINARY_PRECEDENCE = {
    "*": 13, "/": 13, "%": 13,
    "+": 12, "-": 12,
    "<<": 11, ">>": 11,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "==": 9, "!=": 9,
    "&": 8,
    "^": 7,
    "|": 6,
    "&&": 5,
    "||": 4,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

_ADDRESS_SPACE_KEYWORDS = {
    "__global": "global", "global": "global",
    "__local": "local", "local": "local",
    "__constant": "constant", "constant": "constant",
    "__private": "private", "private": "private",
}

_TYPE_KEYWORDS = frozenset(
    ["void", "bool", "char", "uchar", "short", "ushort", "int", "uint", "long",
     "ulong", "float", "double", "half", "size_t", "ptrdiff_t", "signed", "unsigned"]
)

_IGNORED_QUALIFIERS = frozenset(["volatile", "restrict", "inline", "static"])


class ParseError(CompileError):
    pass


class Parser:
    def __init__(self, tokens: List[Token], source: SourceFile, sink: Optional[DiagnosticSink] = None):
        self.tokens = tokens
        self.source = source
        self.sink = sink if sink is not None else DiagnosticSink(source)
        self.pos = 0
        # Names introduced by typedef-like constructs could go here; the
        # subset has none, but vector types behave like builtin typedefs.

    # -- token helpers ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def _at_eof(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    def _fail(self, message: str, span: Optional[Span] = None) -> ParseError:
        self.sink.error(message, span if span is not None else self._peek().span)
        return ParseError(self.sink.errors, self.source)

    def _expect_punct(self, punct: str) -> Token:
        token = self._peek()
        if not token.is_punct(punct):
            raise self._fail(f"expected {punct!r}, found {token!r}" if token.kind is TokenKind.EOF else f"expected {punct!r}, found {token.text!r}")
        return self._advance()

    def _accept_punct(self, punct: str) -> Optional[Token]:
        if self._peek().is_punct(punct):
            return self._advance()
        return None

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise self._fail(f"expected identifier, found {token.text!r}")
        return self._advance()

    # -- type parsing -----------------------------------------------------

    def _starts_type(self, ahead: int = 0) -> bool:
        token = self._peek(ahead)
        if token.kind is TokenKind.KEYWORD:
            return (
                token.text in _TYPE_KEYWORDS
                or token.text in _ADDRESS_SPACE_KEYWORDS
                or token.text in ("const", "volatile", "restrict", "struct")
            )
        if token.kind is TokenKind.IDENT:
            return make_vector_type(token.text) is not None
        return False

    def _parse_specifiers(self) -> Tuple[CType, str, bool]:
        """Parse declaration specifiers.

        Returns ``(base_type, address_space, is_const)``.
        """
        address_space = "private"
        is_const = False
        signedness: Optional[str] = None
        base_name: Optional[str] = None
        long_count = 0
        start = self._peek()

        while True:
            token = self._peek()
            if token.kind is TokenKind.KEYWORD:
                text = token.text
                if text in _ADDRESS_SPACE_KEYWORDS:
                    address_space = _ADDRESS_SPACE_KEYWORDS[text]
                    self._advance()
                    continue
                if text == "const":
                    is_const = True
                    self._advance()
                    continue
                if text in _IGNORED_QUALIFIERS:
                    self._advance()
                    continue
                if text in ("signed", "unsigned"):
                    if signedness is not None:
                        raise self._fail("duplicate signedness specifier")
                    signedness = text
                    self._advance()
                    continue
                if text == "long":
                    long_count += 1
                    self._advance()
                    continue
                if text in _TYPE_KEYWORDS:
                    if base_name is not None:
                        raise self._fail(f"two type names in declaration: {base_name!r} and {text!r}")
                    base_name = text
                    self._advance()
                    continue
                if text == "struct":
                    raise self._fail("struct types are not supported in this OpenCL-C subset")
                break
            if token.kind is TokenKind.IDENT and base_name is None and long_count == 0 and signedness is None:
                vector = make_vector_type(token.text)
                if vector is not None:
                    self._advance()
                    return vector, address_space, is_const
            break

        if base_name is None and signedness is None and long_count == 0:
            raise self._fail(f"expected a type, found {start.text!r}", start.span)

        if long_count:
            if base_name not in (None, "int"):
                raise self._fail(f"'long {base_name}' is not supported")
            base_name = "long"
        if base_name is None:
            base_name = "int"
        if signedness == "unsigned":
            unsigned_names = {"char": "uchar", "short": "ushort", "int": "uint", "long": "ulong"}
            if base_name not in unsigned_names:
                raise self._fail(f"'unsigned {base_name}' is not valid")
            base_name = unsigned_names[base_name]
        elif signedness == "signed" and base_name not in ("char", "short", "int", "long"):
            raise self._fail(f"'signed {base_name}' is not valid")
        if base_name == "ptrdiff_t":
            base_name = "long"
        return SCALAR_TYPES[base_name], address_space, is_const

    def _parse_pointer_suffix(self, base: CType, address_space: str, is_const: bool) -> Tuple[CType, str, bool]:
        """Apply ``*`` declarator parts: ``base * const * ...``."""
        ctype = base
        while self._accept_punct("*"):
            ctype = PointerType(ctype, address_space, is_const)
            # Qualifiers after '*' apply to the pointer itself; the subset
            # accepts and ignores them (no pointer-to-pointer reassignment
            # subtleties matter here).
            address_space = "private"
            is_const = False
            while self._peek().is_keyword("const", "volatile", "restrict"):
                self._advance()
        return ctype, address_space, is_const

    def _parse_type_name(self) -> CType:
        """Parse a type-name as used in casts and sizeof."""
        base, address_space, is_const = self._parse_specifiers()
        ctype, _, _ = self._parse_pointer_suffix(base, address_space, is_const)
        return ctype

    def _parse_array_suffix(self, ctype: CType) -> CType:
        """Parse trailing ``[N]`` dimensions onto ``ctype``."""
        dims: List[int] = []
        while self._accept_punct("["):
            size_expr = self._parse_conditional()
            self._expect_punct("]")
            dims.append(self._eval_const_int(size_expr))
        for dim in reversed(dims):
            ctype = ArrayType(ctype, dim)
        return ctype

    def _eval_const_int(self, expr: ast.Expr) -> int:
        """Fold a constant integer expression (array sizes, case labels)."""
        value = self._try_eval_const(expr)
        if value is None or isinstance(value, float):
            raise self._fail("expected a constant integer expression", expr.span)
        return value

    def _try_eval_const(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.CharLiteral):
            return expr.value
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryOp):
            value = self._try_eval_const(expr.operand)
            if value is None:
                return None
            ops = {"-": lambda v: -v, "+": lambda v: v, "~": lambda v: ~v, "!": lambda v: int(not v)}
            return ops[expr.op](value) if expr.op in ops else None
        if isinstance(expr, ast.BinaryOp):
            left = self._try_eval_const(expr.left)
            right = self._try_eval_const(expr.right)
            if left is None or right is None:
                return None
            try:
                return {
                    "+": lambda a, b: a + b,
                    "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b,
                    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) else a / b,
                    "%": lambda a, b: a % b,
                    "<<": lambda a, b: a << b,
                    ">>": lambda a, b: a >> b,
                    "&": lambda a, b: a & b,
                    "|": lambda a, b: a | b,
                    "^": lambda a, b: a ^ b,
                }[expr.op](left, right)
            except (KeyError, ZeroDivisionError, TypeError):
                return None
        if isinstance(expr, ast.Cast):
            return self._try_eval_const(expr.operand)
        return None

    # -- top level --------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions: List[ast.FunctionDef] = []
        globals_: List[ast.GlobalDecl] = []
        prototypes: List[ast.FunctionDef] = []
        while not self._at_eof():
            item = self._parse_external_declaration()
            if isinstance(item, ast.FunctionDef):
                if item.body is None:
                    prototypes.append(item)
                else:
                    functions.append(item)
            elif isinstance(item, ast.GlobalDecl):
                globals_.append(item)
        self.sink.check()
        program = ast.Program(functions, globals_)
        program.prototypes = prototypes
        return program

    def _parse_external_declaration(self):
        start = self._peek()
        is_kernel = False
        attributes: List[str] = []
        while True:
            token = self._peek()
            if token.is_keyword("__kernel", "kernel"):
                is_kernel = True
                self._advance()
            elif token.is_keyword("__attribute__"):
                attributes.append(self._parse_attribute())
            else:
                break

        base, address_space, is_const = self._parse_specifiers()
        ctype, address_space, is_const = self._parse_pointer_suffix(base, address_space, is_const)
        name_token = self._expect_ident()

        if self._peek().is_punct("("):
            return self._parse_function(ctype, name_token, is_kernel, tuple(attributes), start)

        if is_kernel:
            raise self._fail("__kernel qualifier on a non-function declaration", start.span)
        return self._parse_global_decl(ctype, name_token, address_space, is_const, start)

    def _parse_attribute(self) -> str:
        self._advance()  # __attribute__
        self._expect_punct("(")
        self._expect_punct("(")
        depth = 2
        parts: List[str] = []
        while depth > 0 and not self._at_eof():
            token = self._advance()
            if token.is_punct("("):
                depth += 1
            elif token.is_punct(")"):
                depth -= 1
                if depth == 0:
                    break
            if depth > 0:
                parts.append(token.text)
        return "".join(parts)

    def _parse_function(self, return_type: CType, name_token: Token, is_kernel: bool,
                        attributes: Tuple[str, ...], start: Token) -> ast.FunctionDef:
        self._expect_punct("(")
        params: List[ast.Param] = []
        if not self._peek().is_punct(")"):
            if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    params.append(self._parse_param())
                    if not self._accept_punct(","):
                        break
        close = self._expect_punct(")")

        if self._accept_punct(";"):
            fn = ast.FunctionDef(name_token.text, return_type, params, None, start.span.merge(close.span), is_kernel, attributes)
            return fn
        body = self._parse_compound()
        span = start.span.merge(body.span)
        return ast.FunctionDef(name_token.text, return_type, params, body, span, is_kernel, attributes)

    def _parse_param(self) -> ast.Param:
        start = self._peek()
        base, address_space, is_const = self._parse_specifiers()
        ctype, address_space, is_const = self._parse_pointer_suffix(base, address_space, is_const)
        name = ""
        end_span = start.span
        if self._peek().kind is TokenKind.IDENT:
            name_token = self._advance()
            name = name_token.text
            end_span = name_token.span
        # Array parameters decay to pointers.
        if self._peek().is_punct("["):
            array_type = self._parse_array_suffix(ctype)
            while isinstance(array_type, ArrayType):
                array_type = array_type.element
            ctype = PointerType(array_type, address_space if address_space != "private" else "private", is_const)
        return ast.Param(name, ctype, start.span.merge(end_span))

    def _parse_global_decl(self, ctype: CType, name_token: Token, address_space: str,
                           is_const: bool, start: Token) -> ast.GlobalDecl:
        if address_space != "constant":
            raise self._fail("file-scope variables must be __constant", start.span)
        ctype = self._parse_array_suffix(ctype)
        init: Optional[ast.Expr] = None
        if self._accept_punct("="):
            init = self._parse_initializer()
        end = self._expect_punct(";")
        decl = ast.VarDecl(name_token.text, ctype, init, start.span.merge(end.span), address_space, True)
        return ast.GlobalDecl(decl, decl.span)

    def _parse_initializer(self) -> ast.Expr:
        if self._peek().is_punct("{"):
            start = self._advance()
            elements: List[ast.Expr] = []
            if not self._peek().is_punct("}"):
                while True:
                    elements.append(self._parse_initializer())
                    if not self._accept_punct(","):
                        break
                    if self._peek().is_punct("}"):
                        break  # trailing comma
            end = self._expect_punct("}")
            lit = ast.VectorLiteral(None, elements, start.span.merge(end.span))
            lit.is_array_initializer = True
            return lit
        return self._parse_assignment()

    # -- statements -------------------------------------------------------

    def _parse_compound(self) -> ast.CompoundStmt:
        start = self._expect_punct("{")
        statements: List[ast.Stmt] = []
        while not self._peek().is_punct("}") and not self._at_eof():
            statements.append(self._parse_statement())
        end = self._expect_punct("}")
        return ast.CompoundStmt(statements, start.span.merge(end.span))

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_compound()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do()
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("return"):
            self._advance()
            value = None if self._peek().is_punct(";") else self._parse_expression()
            end = self._expect_punct(";")
            return ast.ReturnStmt(value, token.span.merge(end.span))
        if token.is_keyword("break"):
            self._advance()
            end = self._expect_punct(";")
            return ast.BreakStmt(token.span.merge(end.span))
        if token.is_keyword("continue"):
            self._advance()
            end = self._expect_punct(";")
            return ast.ContinueStmt(token.span.merge(end.span))
        if token.is_keyword("goto"):
            raise self._fail("goto is not supported")
        if token.is_punct(";"):
            self._advance()
            return ast.ExprStmt(None, token.span)
        if self._starts_type():
            return self._parse_declaration_statement()
        expr = self._parse_expression()
        end = self._expect_punct(";")
        return ast.ExprStmt(expr, token.span.merge(end.span))

    def _parse_declaration_statement(self) -> ast.DeclStmt:
        start = self._peek()
        base, address_space, is_const = self._parse_specifiers()
        decls: List[ast.VarDecl] = []
        while True:
            ctype, _, _ = self._parse_pointer_suffix(base, address_space, is_const)
            name_token = self._expect_ident()
            ctype = self._parse_array_suffix(ctype)
            init: Optional[ast.Expr] = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(ast.VarDecl(name_token.text, ctype, init, start.span.merge(name_token.span), address_space, is_const))
            if not self._accept_punct(","):
                break
        end = self._expect_punct(";")
        return ast.DeclStmt(decls, start.span.merge(end.span))

    def _parse_if(self) -> ast.IfStmt:
        start = self._advance()
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_branch = self._parse_statement()
        else_branch = None
        if self._peek().is_keyword("else"):
            self._advance()
            else_branch = self._parse_statement()
        end_span = (else_branch or then_branch).span
        return ast.IfStmt(condition, then_branch, else_branch, start.span.merge(end_span))

    def _parse_for(self) -> ast.ForStmt:
        start = self._advance()
        self._expect_punct("(")
        init: Optional[ast.Stmt] = None
        if self._accept_punct(";"):
            init = None
        elif self._starts_type():
            init = self._parse_declaration_statement()
        else:
            expr = self._parse_expression()
            self._expect_punct(";")
            init = ast.ExprStmt(expr, expr.span)
        condition = None if self._peek().is_punct(";") else self._parse_expression()
        self._expect_punct(";")
        increment = None if self._peek().is_punct(")") else self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.ForStmt(init, condition, increment, body, start.span.merge(body.span))

    def _parse_while(self) -> ast.WhileStmt:
        start = self._advance()
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.WhileStmt(condition, body, start.span.merge(body.span))

    def _parse_do(self) -> ast.DoStmt:
        start = self._advance()
        body = self._parse_statement()
        if not self._peek().is_keyword("while"):
            raise self._fail("expected 'while' after do-statement body")
        self._advance()
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        end = self._expect_punct(";")
        return ast.DoStmt(body, condition, start.span.merge(end.span))

    def _parse_switch(self) -> ast.SwitchStmt:
        start = self._advance()
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        while not self._peek().is_punct("}") and not self._at_eof():
            label_start = self._peek()
            if label_start.is_keyword("case"):
                self._advance()
                value = self._parse_conditional()
                self._expect_punct(":")
            elif label_start.is_keyword("default"):
                self._advance()
                self._expect_punct(":")
                value = None
            else:
                raise self._fail("expected 'case' or 'default' label in switch body")
            body: List[ast.Stmt] = []
            while not self._peek().is_punct("}") and not self._peek().is_keyword("case", "default"):
                body.append(self._parse_statement())
            cases.append(ast.SwitchCase(value, body, label_start.span))
        end = self._expect_punct("}")
        return ast.SwitchStmt(subject, cases, start.span.merge(end.span))

    # -- expressions ------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        if self._peek().is_punct(","):
            parts = [expr]
            while self._accept_punct(","):
                parts.append(self._parse_assignment())
            return ast.CommaExpr(parts, parts[0].span.merge(parts[-1].span))
        return expr

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assignment(token.text, left, value, left.span.merge(value.span))
        return left

    def _parse_conditional(self) -> ast.Expr:
        condition = self._parse_binary(0)
        if self._accept_punct("?"):
            then_expr = self._parse_expression()
            self._expect_punct(":")
            else_expr = self._parse_conditional()
            return ast.Conditional(condition, then_expr, else_expr, condition.span.merge(else_expr.span))
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.PUNCT:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(token.text, left, right, left.span.merge(right.span))

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("+", "-", "!", "~", "*", "&"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.text, operand, token.span.merge(operand.span))
        if token.is_punct("++", "--"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(token.text, operand, token.span.merge(operand.span))
        if token.is_keyword("sizeof"):
            return self._parse_sizeof()
        if token.is_punct("(") and self._starts_type(1):
            return self._parse_cast()
        return self._parse_postfix()

    def _parse_sizeof(self) -> ast.Expr:
        start = self._advance()
        if self._peek().is_punct("(") and self._starts_type(1):
            self._advance()
            queried = self._parse_type_name()
            end = self._expect_punct(")")
            return ast.SizeofExpr(queried, None, start.span.merge(end.span))
        operand = self._parse_unary()
        return ast.SizeofExpr(None, operand, start.span.merge(operand.span))

    def _parse_cast(self) -> ast.Expr:
        start = self._expect_punct("(")
        target = self._parse_type_name()
        self._expect_punct(")")
        if isinstance(target, VectorType) and self._peek().is_punct("("):
            open_paren = self._advance()
            elements: List[ast.Expr] = []
            if not self._peek().is_punct(")"):
                while True:
                    elements.append(self._parse_assignment())
                    if not self._accept_punct(","):
                        break
            end = self._expect_punct(")")
            return ast.VectorLiteral(target, elements, start.span.merge(end.span))
        operand = self._parse_unary()
        return ast.Cast(target, operand, start.span.merge(operand.span))

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                end = self._expect_punct("]")
                expr = ast.Index(expr, index, expr.span.merge(end.span))
            elif token.is_punct("."):
                self._advance()
                member = self._expect_ident()
                expr = ast.Member(expr, member.text, expr.span.merge(member.span))
            elif token.is_punct("->"):
                raise self._fail("'->' is not supported (no struct types)")
            elif token.is_punct("++", "--"):
                self._advance()
                expr = ast.PostfixOp(token.text, expr, expr.span.merge(token.span))
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LITERAL:
            self._advance()
            return ast.IntLiteral(token.value, token.span, token.suffix)
        if token.kind is TokenKind.FLOAT_LITERAL:
            self._advance()
            return ast.FloatLiteral(token.value, token.span, token.suffix)
        if token.kind is TokenKind.CHAR_LITERAL:
            self._advance()
            return ast.CharLiteral(token.value, token.span)
        if token.kind is TokenKind.STRING_LITERAL:
            self._advance()
            return ast.StringLiteral(token.value, token.span)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._peek().is_punct("("):
                self._advance()
                args: List[ast.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept_punct(","):
                            break
                end = self._expect_punct(")")
                return ast.Call(token.text, args, token.span.merge(end.span))
            return ast.Identifier(token.text, token.span)
        if token.kind is TokenKind.KEYWORD and token.text in ("barrier",):  # pragma: no cover
            raise self._fail("unexpected keyword")
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise self._fail(f"expected an expression, found {token.text!r}" if token.kind is not TokenKind.EOF else "unexpected end of input")


def parse(text: str, name: str = "<kernel>") -> ast.Program:
    """Lex and parse ``text`` into a :class:`Program` (no preprocessing)."""
    from .lexer import Lexer

    source = SourceFile(text, name)
    sink = DiagnosticSink(source)
    tokens = Lexer(source, sink).tokenize()
    sink.check()
    parser = Parser(tokens, source, sink)
    return parser.parse_program()
