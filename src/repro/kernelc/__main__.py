"""Command-line driver for the kernelc front-end.

Usage::

    python -m repro.kernelc FILE.cl            # compile, report kernels
    python -m repro.kernelc FILE.cl --ast      # print the parsed AST
    python -m repro.kernelc FILE.cl --print    # pretty-print the source
    python -m repro.kernelc FILE.cl --python   # show the compiled Python
    python -m repro.kernelc FILE.cl --lint     # run the lint pass
    python -m repro.kernelc FILE.cl --access   # show affine access summaries
    python -m repro.kernelc FILE.py --lint     # lint kernel strings in a
                                               # Python module
    echo '...' | python -m repro.kernelc -     # read from stdin

Exit status 0 on success, 1 on compile or lint errors (diagnostics on
stderr).  ``--lint`` on a ``.py`` file extracts every string literal
containing ``__kernel`` (the convention used by ``examples/`` and
``repro.baselines``) and lints each as a standalone kernel source.
"""

from __future__ import annotations

import argparse
import sys
import textwrap

from .compiler import compile_program
from .diagnostics import CompileError, Severity
from .frontend import compile_source
from .lint import lint_program
from .preprocessor import PreprocessorError


def _dump_ast(node, indent: int = 0, out=None) -> None:
    from . import ast

    if out is None:
        out = sys.stdout
    pad = "  " * indent
    label = type(node).__name__
    details = []
    for name in ("name", "op", "value", "callee", "member"):
        if hasattr(node, name) and not isinstance(getattr(node, name), (list, type(None))):
            attr = getattr(node, name)
            if not isinstance(attr, ast.Node):
                details.append(f"{name}={attr!r}")
    ctype = getattr(node, "ctype", None)
    if ctype is not None:
        details.append(f": {ctype}")
    out.write(f"{pad}{label}{' ' + ' '.join(details) if details else ''}\n")
    for child in ast.children(node):
        _dump_ast(child, indent + 1, out)


def _extract_kernel_strings(path: str):
    """``(line, source)`` for every plain string literal in a Python file
    that looks like a kernel source (contains ``__kernel`` and a body).
    F-string fragments are skipped — they are templates, not sources."""
    import ast as pyast

    with open(path) as handle:
        tree = pyast.parse(handle.read(), path)
    in_fstring = set()
    for node in pyast.walk(tree):
        if isinstance(node, pyast.JoinedStr):
            for part in pyast.walk(node):
                in_fstring.add(id(part))
    found = []
    for node in pyast.walk(tree):
        if (isinstance(node, pyast.Constant) and isinstance(node.value, str)
                and id(node) not in in_fstring
                and "__kernel" in node.value and "{" in node.value):
            found.append((node.lineno, textwrap.dedent(node.value)))
    return found


def _lint_python_module(path: str, show_access: bool = False) -> int:
    """Lint every kernel string of a Python module; 0 when error-free."""
    failed = 0
    strings = _extract_kernel_strings(path)
    affine_total = fallback_total = 0
    for lineno, text in strings:
        name = f"{path}:{lineno}"
        try:
            program = compile_source(text, name)
        except (CompileError, PreprocessorError) as exc:
            sys.stderr.write(f"{name}: kernel string does not compile:\n{exc}\n")
            failed += 1
            continue
        diagnostics = lint_program(program)
        for diag in diagnostics:
            sys.stderr.write(diag.render(program.source) + "\n")
        if any(d.severity is Severity.ERROR for d in diagnostics):
            failed += 1
        if show_access:
            a, f = _print_access_summaries(program, name)
            affine_total += a
            fallback_total += f
    status = "clean" if not failed else f"{failed} with errors"
    print(f"{path}: {len(strings)} kernel string(s), {status}")
    if show_access and (affine_total or fallback_total):
        total = affine_total + fallback_total
        print(f"{path}: access summaries: {affine_total}/{total} "
              f"pointer parameter(s) affine")
    return 0 if not failed else 1


def _print_access_summaries(program, name: str):
    """Render the SkelAccess summary of every kernel; returns the
    (affine, fallback) pointer-parameter counts."""
    from ..analysis import affine

    affine_params = fallback_params = 0
    for fn in program.kernels():
        try:
            summary = affine.cached_kernel_summary(program, fn)
        except Exception as exc:  # never let reporting break the CLI
            print(f"{name}: {fn.name}: access analysis failed: {exc}")
            continue
        print(f"{name}: kernel {fn.name}:")
        for pname, psum in summary.params.items():
            if psum.affine:
                affine_params += 1
                print(f"  {pname} ({psum.space}, {psum.mode}): affine")
                for fp in psum.footprints:
                    guards = "; ".join(f"{g.format()} <= 0" for g in fp.guards)
                    line = f"    {fp.mode} [{fp.index.format()}]"
                    if guards:
                        line += f" when {guards}"
                    print(line)
            else:
                fallback_params += 1
                print(f"  {pname} ({psum.space}, {psum.mode}): "
                      f"fallback — {psum.fallback_reason}")
    return affine_params, fallback_params


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.kernelc",
                                     description="Compile an OpenCL-C kernel source.")
    parser.add_argument("file", help="kernel source file ('-' for stdin)")
    parser.add_argument("--ast", action="store_true", help="dump the checked AST")
    parser.add_argument("--print", dest="pretty", action="store_true",
                        help="pretty-print the parsed source")
    parser.add_argument("--python", action="store_true",
                        help="show the compiled Python code")
    parser.add_argument("--lint", action="store_true",
                        help="run the lint pass (exit 1 on lint errors); on a "
                             ".py file, lint every embedded kernel string")
    parser.add_argument("--access", action="store_true",
                        help="print the affine access summary (SkelAccess) of "
                             "every kernel: per-parameter footprints, guards, "
                             "and the affine/fallback ratio")
    parser.add_argument("-D", dest="defines", action="append", default=[],
                        metavar="NAME[=VALUE]", help="preprocessor define")
    args = parser.parse_args(argv)

    if (args.lint or args.access) and args.file.endswith(".py"):
        return _lint_python_module(args.file, show_access=args.access)

    if args.file == "-":
        source = sys.stdin.read()
        name = "<stdin>"
    else:
        with open(args.file) as handle:
            source = handle.read()
        name = args.file

    defines = {}
    for item in args.defines:
        key, _, value = item.partition("=")
        defines[key] = value or "1"

    try:
        program = compile_source(source, name, defines)
    except (CompileError, PreprocessorError) as exc:
        sys.stderr.write(f"{exc}\n")
        return 1

    if args.lint or args.access:
        status = 0
        if args.access:
            affine_n, fallback_n = _print_access_summaries(program, name)
            total = affine_n + fallback_n
            if total:
                print(f"{name}: access summaries: {affine_n}/{total} "
                      f"pointer parameter(s) affine")
        if args.lint:
            diagnostics = lint_program(program)
            for diag in diagnostics:
                sys.stderr.write(diag.render(program.source) + "\n")
            errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
            print(f"{name}: lint {'clean' if not diagnostics else f'{len(diagnostics)} finding(s), {errors} error(s)'}")
            status = 1 if errors else 0
        return status

    if args.ast:
        _dump_ast(program)
    elif args.pretty:
        from .printer import print_program

        sys.stdout.write(print_program(program))
    elif args.python:
        compiled = compile_program(program)
        sys.stdout.write(compiled.source_code)
    else:
        kernels = ", ".join(k.name for k in program.kernels()) or "(none)"
        helpers = [f.name for f in program.functions if not f.is_kernel]
        print(f"{name}: OK")
        print(f"  kernels: {kernels}")
        if helpers:
            print(f"  helpers: {', '.join(helpers)}")
        if program.uses_barrier:
            print("  uses barriers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
