"""Command-line driver for the kernelc front-end.

Usage::

    python -m repro.kernelc FILE.cl            # compile, report kernels
    python -m repro.kernelc FILE.cl --ast      # print the parsed AST
    python -m repro.kernelc FILE.cl --print    # pretty-print the source
    python -m repro.kernelc FILE.cl --python   # show the compiled Python
    echo '...' | python -m repro.kernelc -     # read from stdin

Exit status 0 on success, 1 on compile errors (diagnostics on stderr).
"""

from __future__ import annotations

import argparse
import sys

from .compiler import compile_program
from .diagnostics import CompileError
from .frontend import compile_source
from .preprocessor import PreprocessorError


def _dump_ast(node, indent: int = 0, out=None) -> None:
    from . import ast

    if out is None:
        out = sys.stdout
    pad = "  " * indent
    label = type(node).__name__
    details = []
    for name in ("name", "op", "value", "callee", "member"):
        if hasattr(node, name) and not isinstance(getattr(node, name), (list, type(None))):
            attr = getattr(node, name)
            if not isinstance(attr, ast.Node):
                details.append(f"{name}={attr!r}")
    ctype = getattr(node, "ctype", None)
    if ctype is not None:
        details.append(f": {ctype}")
    out.write(f"{pad}{label}{' ' + ' '.join(details) if details else ''}\n")
    for child in ast.children(node):
        _dump_ast(child, indent + 1, out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.kernelc",
                                     description="Compile an OpenCL-C kernel source.")
    parser.add_argument("file", help="kernel source file ('-' for stdin)")
    parser.add_argument("--ast", action="store_true", help="dump the checked AST")
    parser.add_argument("--print", dest="pretty", action="store_true",
                        help="pretty-print the parsed source")
    parser.add_argument("--python", action="store_true",
                        help="show the compiled Python code")
    parser.add_argument("-D", dest="defines", action="append", default=[],
                        metavar="NAME[=VALUE]", help="preprocessor define")
    args = parser.parse_args(argv)

    if args.file == "-":
        source = sys.stdin.read()
        name = "<stdin>"
    else:
        with open(args.file) as handle:
            source = handle.read()
        name = args.file

    defines = {}
    for item in args.defines:
        key, _, value = item.partition("=")
        defines[key] = value or "1"

    try:
        program = compile_source(source, name, defines)
    except (CompileError, PreprocessorError) as exc:
        sys.stderr.write(f"{exc}\n")
        return 1

    if args.ast:
        _dump_ast(program)
    elif args.pretty:
        from .printer import print_program

        sys.stdout.write(print_program(program))
    elif args.python:
        compiled = compile_program(program)
        sys.stdout.write(compiled.source_code)
    else:
        kernels = ", ".join(k.name for k in program.kernels()) or "(none)"
        helpers = [f.name for f in program.functions if not f.is_kernel]
        print(f"{name}: OK")
        print(f"  kernels: {kernels}")
        if helpers:
            print(f"  helpers: {', '.join(helpers)}")
        if program.uses_barrier:
            print("  uses barriers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
