"""OpenCL-C builtin functions: work-item queries, math, common, integer,
geometric and relational functions, plus ``convert_*`` / ``as_*``.

The type checker and both execution backends resolve builtin calls via
:func:`resolve_builtin`, which returns the result type, the parameter
types the arguments convert to, a scalar-level Python implementation and
an operation-count cost used by the device timing model.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from .ctypes_ import (
    CType,
    DOUBLE,
    FLOAT,
    INT,
    SCALAR_TYPES,
    SIZE_T,
    ScalarType,
    UCHAR,
    UINT,
    ULONG,
    USHORT,
    VOID,
    VectorType,
    integer_promote,
    usual_arithmetic_conversions,
    wrap_int,
)

# Memory-fence flag values for barrier()/mem_fence().
CLK_LOCAL_MEM_FENCE = 1
CLK_GLOBAL_MEM_FENCE = 2

BUILTIN_CONSTANTS = {
    "CLK_LOCAL_MEM_FENCE": CLK_LOCAL_MEM_FENCE,
    "CLK_GLOBAL_MEM_FENCE": CLK_GLOBAL_MEM_FENCE,
    "M_PI": math.pi,
    "M_PI_F": math.pi,
    "M_E": math.e,
    "M_E_F": math.e,
    "MAXFLOAT": 3.402823466e38,
    "INFINITY": math.inf,
    "NAN": math.nan,
    "FLT_MAX": 3.402823466e38,
    "FLT_MIN": 1.175494351e-38,
    "FLT_EPSILON": 1.192092896e-07,
    "INT_MAX": 2147483647,
    "INT_MIN": -2147483648,
    "UINT_MAX": 4294967295,
    "CHAR_MAX": 127,
    "CHAR_MIN": -128,
    "UCHAR_MAX": 255,
    "SHRT_MAX": 32767,
    "SHRT_MIN": -32768,
    "USHRT_MAX": 65535,
    "LONG_MAX": 9223372036854775807,
    "LONG_MIN": -9223372036854775808,
}

# Work-item query functions: name -> (takes_dim_argument, result type).
WORKITEM_FUNCTIONS = {
    "get_global_id": (True, SIZE_T),
    "get_local_id": (True, SIZE_T),
    "get_group_id": (True, SIZE_T),
    "get_global_size": (True, SIZE_T),
    "get_local_size": (True, SIZE_T),
    "get_num_groups": (True, SIZE_T),
    "get_global_offset": (True, SIZE_T),
    "get_work_dim": (False, UINT),
}


class BuiltinError(Exception):
    """A builtin call with arguments no overload accepts."""


@dataclass(frozen=True)
class ResolvedBuiltin:
    name: str
    result_type: CType
    param_types: Tuple[CType, ...]
    impl: Optional[Callable]
    cost: int
    # 'plain': impl over converted scalar args (vectors applied per lane)
    # 'whole': impl receives whole (possibly vector) values
    # 'workitem': backend supplies the value from the work-item context
    # 'barrier': synchronization point
    kind: str = "plain"


def _trap(code: int):
    from .memory import KernelFault

    raise KernelFault(f"kernel trap: runtime check failed (code {code})")


def is_builtin_name(name: str) -> bool:
    return (
        name in WORKITEM_FUNCTIONS
        or name in ("barrier", "mem_fence", "read_mem_fence", "write_mem_fence", "__scl_trap")
        or _strip_prefix(name) in _FLOAT_UNARY
        or _strip_prefix(name) in _FLOAT_BINARY
        or name in _FLOAT_TERNARY
        or name in _COMMON
        or name in _INTEGER
        or name in _GEOMETRIC
        or name in ("select", "sign", "isnan", "isinf", "isfinite")
        or name.startswith("convert_")
        or name.startswith("as_")
        or name.startswith("vload")
        or name.startswith("vstore")
    )


def _strip_prefix(name: str) -> str:
    """``native_`` and ``half_`` variants behave like the plain function."""
    for prefix in ("native_", "half_"):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


# -- implementation helpers -------------------------------------------------


def _safe(func: Callable) -> Callable:
    """Wrap a math function to return NaN/inf instead of raising."""

    def wrapper(*args):
        try:
            return func(*args)
        except (ValueError, OverflowError):
            if any(isinstance(a, float) and math.isnan(a) for a in args):
                return math.nan
            return math.nan

    return wrapper


def _rsqrt(x: float) -> float:
    return 1.0 / math.sqrt(x) if x > 0 else math.inf


def _exp10(x: float) -> float:
    return 10.0 ** x


def _fract_trunc(x: float) -> float:
    return x - math.floor(x)


def _rint(x: float) -> float:
    # round-half-to-even, like C rint in the default rounding mode
    return float(round(x / 2.0) * 2.0) if abs(x % 1.0) == 0.5 and False else float(round(x))


def _round_half_away(x: float) -> float:
    # OpenCL round(): round half away from zero
    return math.floor(x + 0.5) if x >= 0 else math.ceil(x - 0.5)


# name -> (impl, cost)
_FLOAT_UNARY = {
    "sqrt": (_safe(math.sqrt), 4),
    "rsqrt": (_rsqrt, 4),
    "cbrt": (lambda x: math.copysign(abs(x) ** (1.0 / 3.0), x), 8),
    "sin": (math.sin, 8),
    "cos": (math.cos, 8),
    "tan": (_safe(math.tan), 12),
    "asin": (_safe(math.asin), 12),
    "acos": (_safe(math.acos), 12),
    "atan": (math.atan, 12),
    "sinh": (_safe(math.sinh), 12),
    "cosh": (_safe(math.cosh), 12),
    "tanh": (math.tanh, 12),
    "asinh": (_safe(math.asinh), 12),
    "acosh": (_safe(math.acosh), 12),
    "atanh": (_safe(math.atanh), 12),
    "exp": (_safe(math.exp), 8),
    "exp2": (_safe(lambda x: 2.0 ** x), 8),
    "exp10": (_safe(_exp10), 8),
    "expm1": (_safe(math.expm1), 8),
    "log": (_safe(math.log), 8),
    "log2": (_safe(math.log2), 8),
    "log10": (_safe(math.log10), 8),
    "log1p": (_safe(math.log1p), 8),
    "fabs": (abs, 1),
    "floor": (math.floor, 1),
    "ceil": (math.ceil, 1),
    "trunc": (math.trunc, 1),
    "round": (_round_half_away, 1),
    "rint": (lambda x: float(np_rint(x)), 1),
    "degrees": (math.degrees, 2),
    "radians": (math.radians, 2),
    "erf": (math.erf, 16),
    "erfc": (math.erfc, 16),
    "tgamma": (_safe(math.gamma), 20),
    "lgamma": (_safe(math.lgamma), 20),
    "fract": (_fract_trunc, 2),
    "recip": (_safe(lambda x: 1.0 / x), 4),
}


def np_rint(x: float) -> float:
    """Round half to even (banker's rounding)."""
    floor_x = math.floor(x)
    diff = x - floor_x
    if diff > 0.5:
        return floor_x + 1.0
    if diff < 0.5:
        return floor_x
    return floor_x if floor_x % 2 == 0 else floor_x + 1.0


_FLOAT_BINARY = {
    "pow": (_safe(lambda x, y: math.pow(x, y)), 16),
    "powr": (_safe(lambda x, y: math.pow(x, y)), 16),
    "fmod": (_safe(math.fmod), 8),
    "remainder": (_safe(math.remainder), 8),
    "fmin": (lambda x, y: y if (x != x or y < x) and y == y else (x if x == x else y), 1),
    "fmax": (lambda x, y: y if (x != x or y > x) and y == y else (x if x == x else y), 1),
    "atan2": (_safe(math.atan2), 16),
    "hypot": (math.hypot, 8),
    "copysign": (math.copysign, 1),
    "fdim": (lambda x, y: max(x - y, 0.0), 2),
    "nextafter": (math.nextafter, 2),
    "maxmag": (lambda x, y: x if abs(x) > abs(y) else (y if abs(y) > abs(x) else max(x, y)), 2),
    "minmag": (lambda x, y: x if abs(x) < abs(y) else (y if abs(y) < abs(x) else min(x, y)), 2),
    "ldexp": (_safe(lambda x, n: math.ldexp(x, int(n))), 2),
    "pown": (_safe(lambda x, n: math.pow(x, n)), 16),
    "rootn": (_safe(lambda x, n: math.copysign(abs(x) ** (1.0 / n), x) if n % 2 else x ** (1.0 / n)), 16),
    "step": (lambda edge, x: 0.0 if x < edge else 1.0, 1),
}

_FLOAT_TERNARY = {
    "fma": (lambda a, b, c: a * b + c, 1),
    "mad": (lambda a, b, c: a * b + c, 1),
    "mix": (lambda x, y, a: x + (y - x) * a, 2),
    "smoothstep": (None, 6),  # handled explicitly below (needs clamping)
}


def _smoothstep(edge0: float, edge1: float, x: float) -> float:
    if edge1 == edge0:
        return 0.0 if x < edge0 else 1.0
    t = max(0.0, min(1.0, (x - edge0) / (edge1 - edge0)))
    return t * t * (3.0 - 2.0 * t)


_FLOAT_TERNARY["smoothstep"] = (_smoothstep, 6)

# Functions generic over both integers and floats.
_COMMON = {
    "min": (lambda x, y: y if y < x else x, 1),
    "max": (lambda x, y: y if y > x else x, 1),
    "clamp": (lambda x, lo, hi: min(max(x, lo), hi), 2),
}

_INTEGER = {
    "abs": (abs, 1),
    "abs_diff": (lambda x, y: abs(x - y), 2),
    "add_sat": (None, 2),  # resolved specially (needs the type bounds)
    "sub_sat": (None, 2),
    "mul24": (lambda x, y: x * y, 1),
    "mad24": (lambda x, y, z: x * y + z, 1),
    "mad_hi": (None, 2),
    "mul_hi": (None, 2),
    "popcount": (None, 2),
    "clz": (None, 2),
    "rotate": (None, 2),
    "hadd": (lambda x, y: (x + y) >> 1, 2),
    "rhadd": (lambda x, y: (x + y + 1) >> 1, 2),
}

_GEOMETRIC = {"dot", "length", "distance", "normalize", "cross", "fast_length", "fast_distance", "fast_normalize"}


def _float_kind(arg_types: Sequence[CType]) -> ScalarType:
    """The scalar float type a float builtin computes in."""
    for ctype in arg_types:
        element = ctype.element if isinstance(ctype, VectorType) else ctype
        if isinstance(element, ScalarType) and element == DOUBLE:
            return DOUBLE
    return FLOAT


def _broadcast_type(arg_types: Sequence[CType], scalar: ScalarType) -> CType:
    """Vector type if any argument is a vector, else ``scalar``."""
    width = None
    for ctype in arg_types:
        if isinstance(ctype, VectorType):
            if width is not None and width != ctype.width:
                raise BuiltinError("mixed vector widths in builtin call")
            width = ctype.width
    return VectorType(scalar, width) if width is not None else scalar


def _check_arity(name: str, arg_types: Sequence[CType], expected: int) -> None:
    if len(arg_types) != expected:
        raise BuiltinError(f"{name}() expects {expected} argument(s), got {len(arg_types)}")


def _require_arithmetic(name: str, arg_types: Sequence[CType]) -> None:
    for ctype in arg_types:
        element = ctype.element if isinstance(ctype, VectorType) else ctype
        if not (isinstance(element, ScalarType) and element.is_arithmetic()):
            raise BuiltinError(f"{name}() requires arithmetic arguments, got {ctype}")


def resolve_builtin(name: str, arg_types: Sequence[CType]) -> Optional[ResolvedBuiltin]:
    """Resolve a builtin call; ``None`` if ``name`` is not a builtin."""
    if name in WORKITEM_FUNCTIONS:
        takes_dim, result = WORKITEM_FUNCTIONS[name]
        expected = 1 if takes_dim else 0
        _check_arity(name, arg_types, expected)
        params = (UINT,) if takes_dim else ()
        return ResolvedBuiltin(name, result, params, None, 1, "workitem")

    if name in ("barrier", "mem_fence", "read_mem_fence", "write_mem_fence"):
        _check_arity(name, arg_types, 1)
        return ResolvedBuiltin(name, VOID, (UINT,), None, 1, "barrier" if name == "barrier" else "plain")

    if name == "__scl_trap":
        # Simulator intrinsic: abort the kernel with a runtime-check
        # failure (used by generated code, e.g. MapOverlap's get()).
        _check_arity(name, arg_types, 1)
        return ResolvedBuiltin(name, VOID, (INT,), _trap, 0)

    stripped = _strip_prefix(name)
    if stripped in _FLOAT_UNARY:
        _check_arity(name, arg_types, 1)
        _require_arithmetic(name, arg_types)
        scalar = _float_kind(arg_types)
        result = _broadcast_type(arg_types, scalar)
        impl, cost = _FLOAT_UNARY[stripped]
        params = (result,)
        return ResolvedBuiltin(name, result, params, impl, cost)

    if stripped in _FLOAT_BINARY:
        _check_arity(name, arg_types, 2)
        _require_arithmetic(name, arg_types)
        scalar = _float_kind(arg_types)
        result = _broadcast_type(arg_types, scalar)
        impl, cost = _FLOAT_BINARY[stripped]
        return ResolvedBuiltin(name, result, (result, result), impl, cost)

    if name in _FLOAT_TERNARY:
        _check_arity(name, arg_types, 3)
        _require_arithmetic(name, arg_types)
        scalar = _float_kind(arg_types)
        result = _broadcast_type(arg_types, scalar)
        impl, cost = _FLOAT_TERNARY[name]
        return ResolvedBuiltin(name, result, (result, result, result), impl, cost)

    if name in _COMMON:
        expected = 3 if name == "clamp" else 2
        _check_arity(name, arg_types, expected)
        _require_arithmetic(name, arg_types)
        elements = [t.element if isinstance(t, VectorType) else t for t in arg_types]
        scalar = elements[0]
        for other in elements[1:]:
            scalar = usual_arithmetic_conversions(scalar, other)
        result = _broadcast_type(arg_types, scalar)
        impl, cost = _COMMON[name]
        return ResolvedBuiltin(name, result, tuple([result] * expected), impl, cost)

    if name in _INTEGER:
        return _resolve_integer(name, arg_types)

    if name in _GEOMETRIC:
        return _resolve_geometric(name, arg_types)

    if name == "select":
        _check_arity(name, arg_types, 3)
        result = arg_types[0]
        return ResolvedBuiltin(name, result, (result, result, arg_types[2]), None, 1, "whole")

    if name == "sign":
        _check_arity(name, arg_types, 1)
        scalar = _float_kind(arg_types)
        result = _broadcast_type(arg_types, scalar)
        impl = lambda x: 0.0 if (x != x or x == 0.0) else math.copysign(1.0, x)  # noqa: E731
        return ResolvedBuiltin(name, result, (result,), impl, 1)

    if name in ("isnan", "isinf", "isfinite"):
        _check_arity(name, arg_types, 1)
        impls = {
            "isnan": lambda x: int(x != x),
            "isinf": lambda x: int(math.isinf(x)),
            "isfinite": lambda x: int(math.isfinite(x)),
        }
        scalar = _float_kind(arg_types)
        result = _broadcast_type(arg_types, INT)
        param = _broadcast_type(arg_types, scalar)
        return ResolvedBuiltin(name, result, (param,), impls[name], 1)

    if name.startswith("convert_"):
        return _resolve_convert(name, arg_types)
    if name.startswith("as_"):
        return _resolve_as_type(name, arg_types)
    if name.startswith("vload") or name.startswith("vstore"):
        return _resolve_vload_vstore(name, arg_types)
    return None


def _resolve_vload_vstore(name: str, arg_types: Sequence[CType]) -> Optional[ResolvedBuiltin]:
    is_load = name.startswith("vload")
    digits = name[len("vload"):] if is_load else name[len("vstore"):]
    if digits not in ("2", "3", "4", "8", "16"):
        return None
    width = int(digits)
    from .ctypes_ import PointerType, VectorType as _Vec

    pointer_index = 1 if is_load else 2
    _check_arity(name, arg_types, 2 if is_load else 3)
    pointer = arg_types[pointer_index]
    if not isinstance(pointer, PointerType) or not isinstance(pointer.pointee, ScalarType):
        raise BuiltinError(f"{name}() requires a scalar pointer argument")
    element = pointer.pointee
    vector = _Vec(element, width)

    if is_load:
        def impl(offset, ptr, _w=width, _e=element):
            from .values import VecValue

            base = int(offset) * _w
            return VecValue(_e, [ptr.load(base + i) for i in range(_w)])

        return ResolvedBuiltin(name, vector, (SIZE_T, pointer), impl, width, "whole")

    def impl(vec, offset, ptr, _w=width):
        base = int(offset) * _w
        for i, component in enumerate(vec.components):
            ptr.store(base + i, component)
        return None

    return ResolvedBuiltin(name, VOID, (vector, SIZE_T, pointer), impl, width, "whole")


def _resolve_integer(name: str, arg_types: Sequence[CType]) -> ResolvedBuiltin:
    arity = {"abs": 1, "popcount": 1, "clz": 1}.get(name, 3 if name in ("mad24", "mad_hi") else 2)
    _check_arity(name, arg_types, arity)
    elements = [t.element if isinstance(t, VectorType) else t for t in arg_types]
    for element in elements:
        if not (isinstance(element, ScalarType) and element.is_integer()):
            raise BuiltinError(f"{name}() requires integer arguments, got {arg_types}")
    scalar = elements[0]
    for other in elements[1:]:
        scalar = usual_arithmetic_conversions(integer_promote(scalar), integer_promote(other))
    if name in ("mul24", "mad24"):
        scalar = INT if scalar.signed else UINT

    impl, cost = _INTEGER[name]
    if name == "abs":
        unsigned = {"char": UCHAR, "short": USHORT, "int": UINT, "long": ULONG}
        result_scalar = unsigned.get(scalar.name, scalar)
        result = _broadcast_type(arg_types, result_scalar)
        return ResolvedBuiltin(name, result, ( _broadcast_type(arg_types, scalar),), abs, cost)

    if impl is None:
        bits = scalar.bits
        if name in ("add_sat", "sub_sat"):
            lo, hi = scalar.min_value(), scalar.max_value()
            op = (lambda x, y: x + y) if name == "add_sat" else (lambda x, y: x - y)
            impl = lambda x, y, _op=op, _lo=lo, _hi=hi: min(max(_op(x, y), _lo), _hi)  # noqa: E731
        elif name in ("mul_hi", "mad_hi"):
            if name == "mul_hi":
                impl = lambda x, y, _b=bits: (x * y) >> _b  # noqa: E731
            else:
                impl = lambda x, y, z, _b=bits: ((x * y) >> _b) + z  # noqa: E731
        elif name == "popcount":
            mask = (1 << bits) - 1
            impl = lambda x, _m=mask: bin(x & _m).count("1")  # noqa: E731
        elif name == "clz":
            impl = lambda x, _b=bits: _b - (x & ((1 << _b) - 1)).bit_length()  # noqa: E731
        elif name == "rotate":
            mask = (1 << bits) - 1
            impl = lambda x, n, _b=bits, _m=mask: (((x & _m) << (n % _b)) | ((x & _m) >> (_b - n % _b))) & _m  # noqa: E731
    result = _broadcast_type(arg_types, scalar)
    return ResolvedBuiltin(name, result, tuple([result] * arity), impl, cost)


def _resolve_geometric(name: str, arg_types: Sequence[CType]) -> ResolvedBuiltin:
    base = name[5:] if name.startswith("fast_") else name
    arity = 1 if base in ("length", "normalize") else 2
    _check_arity(name, arg_types, arity)
    scalar = _float_kind(arg_types)
    width = max((t.width for t in arg_types if isinstance(t, VectorType)), default=1)
    vec = VectorType(scalar, width) if width > 1 else scalar

    def as_list(v):
        return list(v.components) if hasattr(v, "components") else [v]

    if base == "dot":
        impl = lambda a, b: sum(x * y for x, y in zip(as_list(a), as_list(b)))  # noqa: E731
        return ResolvedBuiltin(name, scalar, (vec, vec), impl, 2 * width, "whole")
    if base == "length":
        impl = lambda a: math.sqrt(sum(x * x for x in as_list(a)))  # noqa: E731
        return ResolvedBuiltin(name, scalar, (vec,), impl, 2 * width + 4, "whole")
    if base == "distance":
        impl = lambda a, b: math.sqrt(sum((x - y) ** 2 for x, y in zip(as_list(a), as_list(b))))  # noqa: E731
        return ResolvedBuiltin(name, scalar, (vec, vec), impl, 3 * width + 4, "whole")
    if base == "normalize":
        from .values import VecValue

        def impl(a, _scalar=scalar):
            comps = as_list(a)
            norm = math.sqrt(sum(x * x for x in comps))
            if norm == 0.0:
                return a
            if hasattr(a, "components"):
                return VecValue(_scalar, [x / norm for x in comps])
            return comps[0] / norm

        return ResolvedBuiltin(name, vec, (vec,), impl, 3 * width + 8, "whole")
    if base == "cross":
        from .values import VecValue

        if width not in (3, 4):
            raise BuiltinError("cross() requires 3- or 4-component vectors")

        def impl(a, b, _scalar=scalar, _w=width):
            ax, ay, az = a.components[0], a.components[1], a.components[2]
            bx, by, bz = b.components[0], b.components[1], b.components[2]
            out = [ay * bz - az * by, az * bx - ax * bz, ax * by - ay * bx]
            if _w == 4:
                out.append(0.0)
            return VecValue(_scalar, out)

        return ResolvedBuiltin(name, vec, (vec, vec), impl, 9, "whole")
    raise BuiltinError(f"unknown geometric function {name!r}")  # pragma: no cover


def _resolve_convert(name: str, arg_types: Sequence[CType]) -> ResolvedBuiltin:
    _check_arity(name, arg_types, 1)
    spec = name[len("convert_"):]
    for mode in ("_sat_rte", "_sat_rtz", "_sat", "_rte", "_rtz", "_rtp", "_rtn"):
        if spec.endswith(mode):
            spec = spec[: -len(mode)]
            break
    from .ctypes_ import make_vector_type

    target: Optional[CType] = SCALAR_TYPES.get(spec) or make_vector_type(spec)
    if target is None:
        raise BuiltinError(f"unknown conversion target in {name!r}")
    return ResolvedBuiltin(name, target, (target,), lambda x: x, 1)


def _resolve_as_type(name: str, arg_types: Sequence[CType]) -> ResolvedBuiltin:
    _check_arity(name, arg_types, 1)
    spec = name[len("as_"):]
    target = SCALAR_TYPES.get(spec)
    if target is None or not isinstance(arg_types[0], ScalarType):
        raise BuiltinError(f"as_{spec} is only supported for scalar types")
    source = arg_types[0]
    if source.sizeof() != target.sizeof():
        raise BuiltinError(f"as_{spec} requires same-size source, got {source}")

    fmt = {("float", 4): "<f", ("double", 8): "<d"}
    int_fmt = {4: "<I", 8: "<Q"}

    def impl(x, _src=source, _dst=target):
        size = _src.sizeof()
        if _src.is_float():
            raw = struct.pack(fmt[(_src.name, size)], x)
        else:
            raw = struct.pack(int_fmt[size], x & ((1 << (size * 8)) - 1))
        if _dst.is_float():
            return struct.unpack(fmt[(_dst.name, size)], raw)[0]
        value = struct.unpack(int_fmt[size], raw)[0]
        return wrap_int(value, _dst)

    if source.sizeof() not in (4, 8):
        raise BuiltinError(f"as_{spec} supports only 4- and 8-byte types")
    return ResolvedBuiltin(name, target, (source,), impl, 0)
