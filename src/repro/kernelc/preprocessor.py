"""A small C preprocessor for kernel sources.

Supports the directives commonly found in OpenCL kernels:

* ``#define NAME body`` and ``#define NAME(a, b) body`` (object- and
  function-like macros, with recursive expansion and a recursion guard),
* ``#undef NAME``,
* ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#elif defined(...)`` / ``#endif``,
* ``#pragma`` (ignored),
* line continuations with a trailing backslash.

``#include`` is rejected: kernel sources in this system are self-contained
strings, as they are in SkelCL.

The preprocessor is text-based but literal-aware: macro names inside
string and character literals or comments are never expanded.  Output
preserves line structure (each input line maps to one output line) so
that downstream diagnostics still point at sensible locations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .diagnostics import DiagnosticSink

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<char>'(?:\\.|[^'\\])*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>\.?\d(?:[\w.]|[eEpP][+-])*)
  | (?P<other>.)
    """,
    re.VERBOSE | re.DOTALL,
)

_MAX_EXPANSION_DEPTH = 64


@dataclass
class Macro:
    name: str
    body: str
    params: Optional[List[str]] = None  # None for object-like macros

    @property
    def is_function_like(self) -> bool:
        return self.params is not None


class PreprocessorError(Exception):
    pass


class Preprocessor:
    def __init__(self, defines: Optional[Dict[str, str]] = None, sink: Optional[DiagnosticSink] = None):
        self.macros: Dict[str, Macro] = {}
        self.sink = sink
        if defines:
            for name, body in defines.items():
                self.define(name, body)

    # -- macro table -----------------------------------------------------

    def define(self, signature: str, body: str = "") -> None:
        """Define a macro from a signature like ``"N"`` or ``"MIN(a,b)"``."""
        match = re.match(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(\(([^)]*)\))?\s*$", signature)
        if not match:
            raise PreprocessorError(f"invalid macro signature: {signature!r}")
        name = match.group(1)
        params: Optional[List[str]] = None
        if match.group(2) is not None:
            raw = match.group(3).strip()
            params = [p.strip() for p in raw.split(",")] if raw else []
            for param in params:
                if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", param):
                    raise PreprocessorError(f"invalid macro parameter {param!r} in {signature!r}")
        self.macros[name] = Macro(name, body.strip(), params)

    def undef(self, name: str) -> None:
        self.macros.pop(name, None)

    # -- driving ---------------------------------------------------------

    def process(self, text: str, name: str = "<kernel>") -> str:
        lines = self._splice_lines(text)
        out: List[str] = []
        # Conditional stack: (taken_now, any_branch_taken, seen_else)
        cond_stack: List[Tuple[bool, bool, bool]] = []

        for lineno, line in enumerate(lines, start=1):
            stripped = line.lstrip()
            if stripped.startswith("#"):
                out.append("")
                self._directive(stripped[1:].strip(), cond_stack, name, lineno)
                continue
            active = all(frame[0] for frame in cond_stack)
            if not active:
                out.append("")
                continue
            out.append(self._expand(line))

        if cond_stack:
            raise PreprocessorError(f"{name}: unterminated conditional directive")
        return "\n".join(out)

    @staticmethod
    def _splice_lines(text: str) -> List[str]:
        """Split into lines, joining backslash-continued lines.

        To preserve the total line count (for diagnostics), a continued
        line contributes empty lines for its continuation lines.
        """
        raw = text.split("\n")
        result: List[str] = []
        i = 0
        while i < len(raw):
            line = raw[i]
            blanks = 0
            while line.endswith("\\") and i + 1 < len(raw):
                line = line[:-1] + raw[i + 1]
                blanks += 1
                i += 1
            result.append(line)
            result.extend([""] * blanks)
            i += 1
        return result

    def _directive(self, directive: str, cond_stack: List[Tuple[bool, bool, bool]], name: str, lineno: int) -> None:
        match = re.match(r"^([A-Za-z_]+)\s*(.*)$", directive, re.DOTALL)
        if not match:
            if directive:
                raise PreprocessorError(f"{name}:{lineno}: malformed directive '#{directive}'")
            return  # a lone '#' is a null directive
        keyword, rest = match.group(1), match.group(2).strip()
        active = all(frame[0] for frame in cond_stack)

        if keyword in ("ifdef", "ifndef"):
            macro_name = rest.split()[0] if rest else ""
            if not macro_name:
                raise PreprocessorError(f"{name}:{lineno}: #{keyword} expects a macro name")
            defined = macro_name in self.macros
            taken = defined if keyword == "ifdef" else not defined
            cond_stack.append((active and taken, taken, False))
        elif keyword == "if":
            taken = self._eval_condition(rest, name, lineno)
            cond_stack.append((active and taken, taken, False))
        elif keyword == "elif":
            if not cond_stack:
                raise PreprocessorError(f"{name}:{lineno}: #elif without #if")
            _, any_taken, seen_else = cond_stack.pop()
            if seen_else:
                raise PreprocessorError(f"{name}:{lineno}: #elif after #else")
            parent_active = all(frame[0] for frame in cond_stack)
            taken = not any_taken and self._eval_condition(rest, name, lineno)
            cond_stack.append((parent_active and taken, any_taken or taken, False))
        elif keyword == "else":
            if not cond_stack:
                raise PreprocessorError(f"{name}:{lineno}: #else without #if")
            _, any_taken, seen_else = cond_stack.pop()
            if seen_else:
                raise PreprocessorError(f"{name}:{lineno}: duplicate #else")
            parent_active = all(frame[0] for frame in cond_stack)
            cond_stack.append((parent_active and not any_taken, True, True))
        elif keyword == "endif":
            if not cond_stack:
                raise PreprocessorError(f"{name}:{lineno}: #endif without #if")
            cond_stack.pop()
        elif not active:
            return  # other directives inside a skipped region are ignored
        elif keyword == "define":
            self._parse_define(rest, name, lineno)
        elif keyword == "undef":
            macro_name = rest.split()[0] if rest else ""
            if not macro_name:
                raise PreprocessorError(f"{name}:{lineno}: #undef expects a macro name")
            self.undef(macro_name)
        elif keyword == "pragma":
            return
        elif keyword == "include":
            raise PreprocessorError(f"{name}:{lineno}: #include is not supported in kernel sources")
        else:
            raise PreprocessorError(f"{name}:{lineno}: unknown directive '#{keyword}'")

    def _parse_define(self, rest: str, name: str, lineno: int) -> None:
        match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)(\(([^)]*)\))?\s*(.*)$", rest, re.DOTALL)
        if not match:
            raise PreprocessorError(f"{name}:{lineno}: malformed #define")
        macro_name = match.group(1)
        body = match.group(4).strip()
        if match.group(2) is not None and rest[len(macro_name)] == "(":
            raw = match.group(3).strip()
            params = [p.strip() for p in raw.split(",")] if raw else []
            self.macros[macro_name] = Macro(macro_name, body, params)
        else:
            # "#define X (...)": the parenthesis belongs to the body when
            # separated by whitespace from the name.
            full_body = rest[len(macro_name):].strip()
            self.macros[macro_name] = Macro(macro_name, full_body, None)

    def _eval_condition(self, expr: str, name: str, lineno: int) -> bool:
        """Evaluate a ``#if`` condition over integers and ``defined()``."""
        expanded = re.sub(
            r"defined\s*(\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)|([A-Za-z_][A-Za-z0-9_]*))",
            lambda m: "1" if (m.group(2) or m.group(3)) in self.macros else "0",
            expr,
        )
        expanded = self._expand(expanded)
        # Remaining identifiers evaluate to 0 as in C.
        expanded = re.sub(r"[A-Za-z_][A-Za-z0-9_]*", "0", expanded)
        expanded = expanded.replace("&&", " and ").replace("||", " or ")
        expanded = re.sub(r"!(?!=)", " not ", expanded)
        if not expanded.strip():
            raise PreprocessorError(f"{name}:{lineno}: empty #if condition")
        try:
            return bool(eval(expanded, {"__builtins__": {}}, {}))  # noqa: S307 - sanitized arithmetic
        except Exception as exc:
            raise PreprocessorError(f"{name}:{lineno}: cannot evaluate #if condition {expr!r}: {exc}") from exc

    # -- expansion -------------------------------------------------------

    def _expand(self, text: str, depth: int = 0, hidden: frozenset = frozenset()) -> str:
        if depth > _MAX_EXPANSION_DEPTH:
            raise PreprocessorError("macro expansion too deep (recursive macro?)")
        out: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:  # pragma: no cover - regex matches any char
                out.append(text[pos])
                pos += 1
                continue
            pos = match.end()
            if match.lastgroup != "ident":
                out.append(match.group(0))
                continue
            ident = match.group(0)
            macro = self.macros.get(ident)
            if macro is None or ident in hidden:
                out.append(ident)
                continue
            if macro.is_function_like:
                args, new_pos = self._collect_args(text, pos)
                if args is None:
                    out.append(ident)  # not followed by '(': not an invocation
                    continue
                pos = new_pos
                if len(args) != len(macro.params) and not (len(macro.params) == 0 and args == [""]):
                    raise PreprocessorError(
                        f"macro {ident!r} expects {len(macro.params)} argument(s), got {len(args)}"
                    )
                expanded_args = [self._expand(a.strip(), depth + 1, hidden) for a in args]
                body = self._substitute_params(macro, expanded_args)
                out.append(self._expand(body, depth + 1, hidden | {ident}))
            else:
                out.append(self._expand(macro.body, depth + 1, hidden | {ident}))
        return "".join(out)

    @staticmethod
    def _collect_args(text: str, pos: int) -> Tuple[Optional[List[str]], int]:
        """Collect macro call arguments starting at ``pos`` (before '(')."""
        scan = pos
        while scan < len(text) and text[scan] in " \t":
            scan += 1
        if scan >= len(text) or text[scan] != "(":
            return None, pos
        scan += 1
        args: List[str] = []
        current: List[str] = []
        depth = 1
        while scan < len(text):
            match = _TOKEN_RE.match(text, scan)
            chunk = match.group(0) if match else text[scan]
            scan = match.end() if match else scan + 1
            if chunk == "(":
                depth += 1
            elif chunk == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current))
                    return args, scan
            elif chunk == "," and depth == 1:
                args.append("".join(current))
                current = []
                continue
            current.append(chunk)
        raise PreprocessorError("unterminated macro argument list")

    @staticmethod
    def _substitute_params(macro: Macro, args: List[str]) -> str:
        if not macro.params:
            return macro.body
        mapping = dict(zip(macro.params, args))
        out: List[str] = []
        pos = 0
        body = macro.body
        while pos < len(body):
            match = _TOKEN_RE.match(body, pos)
            if match is None:  # pragma: no cover
                out.append(body[pos])
                pos += 1
                continue
            pos = match.end()
            if match.lastgroup == "ident" and match.group(0) in mapping:
                out.append(mapping[match.group(0)])
            else:
                out.append(match.group(0))
        return "".join(out)


def preprocess(text: str, name: str = "<kernel>", defines: Optional[Dict[str, str]] = None) -> str:
    """Convenience wrapper: run the preprocessor over ``text``."""
    return Preprocessor(defines).process(text, name)
