"""Symbol tables for the kernelc semantic analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .ctypes_ import CType


@dataclass
class Symbol:
    name: str
    ctype: CType
    kind: str  # 'var', 'param', or 'global'
    address_space: str = "private"
    is_const: bool = False


class Scope:
    """A lexical scope chaining to its parent."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> bool:
        """Declare ``symbol``; False if the name exists in this scope."""
        if symbol.name in self._symbols:
            return False
        self._symbols[symbol.name] = symbol
        return True

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def child(self) -> "Scope":
        return Scope(self)
