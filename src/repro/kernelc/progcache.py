"""Persistent on-disk compiled-program cache.

``Program.build()`` keys its in-memory cache on raw source + defines;
this module adds a second, cross-process level keyed on the
*preprocessed* source (so distinct ``#define`` spellings of the same
expansion share an entry) hashed together with a format version and a
toolchain fingerprint (the kernelc sources themselves — editing the
compiler invalidates every entry).

Entries store the type-checked AST plus the lint findings via pickle.
:class:`~repro.kernelc.builtins.ResolvedBuiltin` values embed lambdas
and cannot pickle; they are externalized as persistent IDs and
re-resolved on load (resolution is deterministic on the exact parameter
types the checker recorded).

Every failure mode — unreadable file, stale format, pickle error,
re-resolution mismatch — is a silent miss: the caller falls back to a
cold compile and overwrites the entry.  ``skelcl.configure(cache=False)``
(or ``SKELCL_CACHE=off``) disables the cache; ``cache_dir`` /
``SKELCL_CACHE_DIR`` relocates it, and the ``dir`` / ``SKELCL_DIR``
base directory hosts the default location (``<dir>/programs``, i.e.
``~/.cache/skelcl/programs`` out of the box) — see
:mod:`repro.settings`.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import tempfile
from typing import List, Optional, Tuple

from .builtins import ResolvedBuiltin, resolve_builtin

_FORMAT = "skelcl-progcache-v1"

_fingerprint_cache: Optional[str] = None


def enabled() -> bool:
    from .. import settings

    return settings.get("cache")


def cache_dir() -> str:
    from .. import settings

    return settings.cache_directory()


def _toolchain_fingerprint() -> str:
    """A digest over the kernelc sources: any compiler change invalidates
    the cache wholesale (cheap and safe; computed once per process)."""
    global _fingerprint_cache
    if _fingerprint_cache is None:
        digest = hashlib.sha256()
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for entry in sorted(os.listdir(package_dir)):
            if not entry.endswith(".py"):
                continue
            digest.update(entry.encode())
            with open(os.path.join(package_dir, entry), "rb") as handle:
                digest.update(handle.read())
        _fingerprint_cache = digest.hexdigest()
    return _fingerprint_cache


def entry_path(preprocessed: str) -> str:
    digest = hashlib.sha256()
    digest.update(_FORMAT.encode())
    digest.update(_toolchain_fingerprint().encode())
    digest.update(preprocessed.encode())
    name = digest.hexdigest()
    return os.path.join(cache_dir(), name[:2], name + ".pkl")


class _Pickler(pickle.Pickler):
    def persistent_id(self, obj):
        if isinstance(obj, ResolvedBuiltin):
            return ("kernelc-builtin", obj.name, tuple(obj.param_types))
        return None


class _Unpickler(pickle.Unpickler):
    def persistent_load(self, pid):
        tag, name, param_types = pid
        if tag != "kernelc-builtin":
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        resolved = resolve_builtin(name, list(param_types))
        if resolved is None:
            raise pickle.UnpicklingError(f"builtin {name!r} no longer resolves")
        return resolved


def load(preprocessed: str) -> Optional[Tuple[object, List[object]]]:
    """The cached ``(checked program, lint diagnostics)`` for
    ``preprocessed``, or None on any kind of miss."""
    if not enabled():
        return None
    try:
        with open(entry_path(preprocessed), "rb") as handle:
            payload = _Unpickler(handle).load()
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            return None
        return payload["program"], payload["lint"]
    except Exception:
        return None


def store(preprocessed: str, program: object, lint: List[object]) -> bool:
    """Persist a successfully compiled program; returns False (and stays
    silent) on any failure."""
    if not enabled():
        return False
    try:
        buffer = io.BytesIO()
        _Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(
            {"format": _FORMAT, "program": program, "lint": lint}
        )
        path = entry_path(preprocessed)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buffer.getvalue())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True
    except Exception:
        return False
