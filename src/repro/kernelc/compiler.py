"""Compiling backend: checked kernelc AST → Python functions.

Each function in a program is translated to a Python function taking
``(C, ctx, [lmem,] *args)`` where ``C`` is the launch's
:class:`~repro.kernelc.execmodel.ExecutionCounters`, ``ctx`` the
:class:`WorkItemContext` and ``lmem`` (kernels only) the list of
group-shared ``__local`` allocations.  Kernels that call ``barrier()``
compile to Python *generators* that yield ``('barrier', flags)``, which
the NDRange executor uses to phase-synchronize a work-group.

Semantics relative to the reference interpreter ("relaxed fast math"):

* float arithmetic is evaluated in double precision and rounded to the
  storage type only at memory stores and explicit casts/conversions
  (the interpreter rounds after every operation);
* signed integer arithmetic is evaluated at arbitrary precision and
  wrapped at stores and explicit casts (signed overflow is undefined
  behaviour in C, so no conforming kernel can observe the difference);
* unsigned arithmetic *is* wrapped at every operation, because kernels
  legitimately rely on unsigned wrap-around (e.g. ``0u - 1``).

Memory traffic counters are exact and identical to the interpreter's —
every load/store goes through the same :class:`Pointer` accounting.
Operation counts are statically accumulated per basic block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import ast
from .builtins import ResolvedBuiltin
from .ctypes_ import (
    ArrayType,
    CType,
    PointerType,
    ScalarType,
    VectorType,
    convert_scalar,
)
from .execmodel import (
    binary_value,
    c_fdiv,
    c_idiv,
    c_imod,
    compare_value,
    convert_value,
    copy_value,
)
from .interp import _flatten_initializer, apply_builtin, collect_local_decls
from .memory import ArrayRef, KernelFault, Pointer, allocate
from .values import VecValue

# Static per-operator costs (in abstract device "ops").
_OP_COSTS = {"+": 1, "-": 1, "*": 1, "/": 4, "%": 4, "<<": 1, ">>": 1, "&": 1, "|": 1, "^": 1,
             "<": 1, ">": 1, "<=": 1, ">=": 1, "==": 1, "!=": 1, "&&": 1, "||": 1}


def _is_literal(expr: ast.Expr, *values) -> bool:
    return isinstance(expr, (ast.IntLiteral, ast.FloatLiteral)) and expr.value in values


def _literal_value(expr: ast.Expr):
    """The compile-time value of a literal node, or None."""
    if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.CharLiteral)):
        return expr.value
    return None


_FOLDABLE_BINOPS = frozenset(["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
                              "<", ">", "<=", ">=", "==", "!="])


def fold_constants(expr: ast.Expr, lookup=None):
    """Compile-time value of ``expr`` if it is a constant tree, else None.

    ``lookup`` optionally resolves identifiers to known constant values
    (const-declared locals with constant initializers).  Folding uses
    the same C semantics as runtime evaluation (truncating integer
    division, masked shifts, type-converted results), so it never
    changes observable behaviour.
    """
    from .execmodel import binary_value, compare_value

    value = _literal_value(expr)
    if value is not None:
        return convert_scalar(value, expr.ctype) if isinstance(expr.ctype, ScalarType) else value
    if isinstance(expr, ast.Identifier) and lookup is not None:
        return lookup(expr.name)
    if isinstance(expr, ast.UnaryOp) and expr.op in ("-", "+", "~", "!"):
        operand = fold_constants(expr.operand, lookup)
        if operand is None or not isinstance(expr.ctype, ScalarType):
            return None
        if expr.op == "-":
            return convert_scalar(-operand, expr.ctype)
        if expr.op == "+":
            return convert_scalar(operand, expr.ctype)
        if expr.op == "~":
            return convert_scalar(~int(operand), expr.ctype)
        return 0 if operand else 1
    if isinstance(expr, ast.BinaryOp) and expr.op in _FOLDABLE_BINOPS:
        op_type = getattr(expr, "op_type", None)
        if not isinstance(op_type, ScalarType):
            return None
        left = fold_constants(expr.left, lookup)
        right = fold_constants(expr.right, lookup)
        if left is None or right is None:
            return None
        try:
            if expr.op in ("<", ">", "<=", ">=", "==", "!="):
                return compare_value(expr.op, left, right, op_type)
            return binary_value(expr.op, left, right, op_type)
        except Exception:
            return None  # e.g. division by zero: leave for runtime
    if isinstance(expr, ast.Cast) and isinstance(expr.target_type, ScalarType) \
            and not expr.target_type.is_void():
        operand = fold_constants(expr.operand, lookup)
        if operand is None:
            return None
        return convert_scalar(operand, expr.target_type)
    return None


def _folds_away(node: ast.BinaryOp) -> bool:
    """Multiplications by ±1 and additions of 0 cost nothing after the
    strength reduction any real GPU compiler performs."""
    if node.op == "*":
        return _is_literal(node.left, 1, -1, 1.0, -1.0) or _is_literal(node.right, 1, -1, 1.0, -1.0)
    if node.op in ("+", "-"):
        return _is_literal(node.right, 0, 0.0) or (node.op == "+" and _is_literal(node.left, 0, 0.0))
    return False


def node_cost(node: ast.Node, lookup=None) -> int:
    """Static operation cost of evaluating ``node`` (including children).

    Subtrees that fold to compile-time constants (optionally using
    ``lookup`` for const-propagated locals) cost nothing.
    """
    if isinstance(node, ast.Expr) and fold_constants(node, lookup) is not None:
        return 0
    total = 0
    if isinstance(node, ast.BinaryOp):
        if not _folds_away(node):
            width = node.op_type.width if isinstance(getattr(node, "op_type", None), VectorType) else 1
            total += _OP_COSTS.get(node.op, 1) * width
    elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)):
        total += 1
    elif isinstance(node, ast.Assignment):
        total += 1
    elif isinstance(node, ast.Index):
        total += 1
    elif isinstance(node, ast.Cast):
        total += 1
    elif isinstance(node, ast.Conditional):
        total += 1
    elif isinstance(node, ast.VectorLiteral):
        total += 1
    elif isinstance(node, ast.Call):
        if getattr(node, "kind", "") == "builtin":
            width = (
                node.resolved.result_type.width
                if isinstance(node.resolved.result_type, VectorType) and node.resolved.kind == "plain"
                else 1
            )
            total += node.resolved.cost * width
        else:
            total += 2  # call overhead; the callee counts its own body
    for child in ast.children(node):
        total += node_cost(child, lookup)
    return total


@dataclass
class CompiledKernel:
    name: str
    func: Callable
    uses_barrier: bool
    definition: ast.FunctionDef
    local_decls: List[ast.VarDecl]
    program: Optional[ast.Program] = None  # owning checked AST (backends)

    @property
    def num_params(self) -> int:
        return len(self.definition.params)


@dataclass
class CompiledProgram:
    program: ast.Program
    kernels: Dict[str, CompiledKernel]
    source_code: str  # the generated Python (for debugging/inspection)

    def kernel(self, name: str) -> CompiledKernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise KeyError(f"no kernel named {name!r}; available: {sorted(self.kernels)}") from None


class _ExprPart:
    """Compiled expression: prelude statements + a Python expression."""

    __slots__ = ("prelude", "code")

    def __init__(self, code: str, prelude: Optional[List[str]] = None):
        self.code = code
        self.prelude = prelude if prelude is not None else []


_UNSIGNED_MASKS = {1: 0xFF, 2: 0xFFFF, 4: 0xFFFFFFFF, 8: 0xFFFFFFFFFFFFFFFF}


class _FunctionCompiler:
    def __init__(self, program_compiler: "_ProgramCompiler", function: ast.FunctionDef):
        self.pc = program_compiler
        self.function = function
        self.lines: List[str] = []
        self.indent = 1
        self.temp_counter = 0
        self.scope_stack: List[Dict[str, str]] = [{}]
        self.used_names: set = set()
        # Context stack entries: ('loop', continue_prelude_lines) or
        # ('switch', continue_flag_name).
        self.contexts: List[Tuple[str, object]] = []
        # Common-subexpression elimination for memory loads within a
        # basic block: maps a load's source fingerprint to the Python
        # temp holding its value.  ``_cse_savings`` accumulates the op
        # cost of elided evaluations so charges can be corrected.
        self._load_cache: Dict[str, str] = {}
        # Which Index node first produced each cached temp (so backends
        # replaying the CSE decisions can map elided loads to sources).
        self._load_origins: Dict[str, int] = {}
        self._cse_savings = 0
        # Const-propagation: mangled name -> compile-time value for
        # const-declared scalars with constant initializers.
        self._const_values: Dict[str, object] = {}

    def _const_lookup(self, c_name: str):
        python_name = self.lookup_name(c_name)
        if python_name is None:
            return None
        return self._const_values.get(python_name)

    def fold(self, expr: ast.Expr):
        return fold_constants(expr, self._const_lookup)

    def cost(self, node: ast.Node) -> int:
        return node_cost(node, self._const_lookup)

    # -- emit helpers -----------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def emit_lines(self, lines: Sequence[str]) -> None:
        for line in lines:
            self.emit(line)

    def fresh(self, hint: str = "t") -> str:
        self.temp_counter += 1
        return f"_{hint}{self.temp_counter}"

    def charge(self, cost: int) -> None:
        if cost > 0:
            self.emit(f"C.ops += {cost}")

    # -- deferred charging (CSE-aware) -------------------------------------

    def begin_charge(self, *nodes) -> Tuple[int, int, int, tuple]:
        """Emit a charge placeholder; finalized after the statement's
        expressions compile (CSE may have elided some of the cost)."""
        index = len(self.lines)
        self.emit("C.ops += 0")
        cost = sum(self.cost(n) for n in nodes if n is not None)
        key = tuple(id(n) for n in nodes if n is not None)
        return (index, cost, self._cse_savings, key)

    def end_charge(self, token: Tuple[int, int, int, tuple], extra: int = 0) -> None:
        index, cost, savings_before, key = token
        final = max(0, cost + extra - (self._cse_savings - savings_before))
        self.on_charge(key, final)
        if final > 0:
            self.lines[index] = self.lines[index].replace("C.ops += 0", f"C.ops += {final}")
        else:
            self.lines[index] = ""  # zero-cost statement: drop the charge

    def on_charge(self, key: tuple, final: int) -> None:
        """Hook: the statement identified by ``key`` (ids of its charged
        AST nodes) costs ``final`` ops.  Overridden by alternative
        backends (:mod:`.vectorize`) to record the charge schedule."""

    def record_cse(self, expr: ast.Expr, temp: str) -> None:
        """Hook: the load ``expr`` was elided, reusing ``temp``."""

    # -- load-CSE bookkeeping ------------------------------------------------

    def invalidate_loads(self) -> None:
        self._load_cache.clear()

    def invalidate_name(self, python_name: str) -> None:
        """Drop cached loads whose source mentions ``python_name``."""
        stale = [key for key in self._load_cache if python_name in key]
        for key in stale:
            del self._load_cache[key]

    def snapshot_loads(self) -> Dict[str, str]:
        return dict(self._load_cache)

    def restore_loads(self, snapshot: Dict[str, str]) -> None:
        self._load_cache = snapshot

    # -- name management ---------------------------------------------------

    def declare_name(self, c_name: str) -> str:
        base = f"v_{c_name}"
        name = base
        suffix = 1
        while name in self.used_names:
            suffix += 1
            name = f"{base}__{suffix}"
        self.used_names.add(name)
        self.scope_stack[-1][c_name] = name
        return name

    def lookup_name(self, c_name: str) -> Optional[str]:
        for scope in reversed(self.scope_stack):
            if c_name in scope:
                return scope[c_name]
        return None

    # -- function body -------------------------------------------------------

    def compile(self) -> str:
        fn = self.function
        params = []
        for param in fn.params:
            params.append(self.declare_name(param.name))
        lmem = ", lmem" if fn.is_kernel else ""
        signature = f"def {self.pc.function_symbol(fn.name)}(C, ctx{lmem}, {', '.join(params)}):" if params \
            else f"def {self.pc.function_symbol(fn.name)}(C, ctx{lmem}):"
        self.lines.append("    " * 0 + signature)
        # Copy vector parameters (C value semantics).
        for param, name in zip(fn.params, params):
            if isinstance(param.declared_type, VectorType):
                self.emit(f"{name} = _copyv({name})")
        body_start = len(self.lines)
        self.compile_stmt_list(fn.body.statements)
        if len(self.lines) == body_start:
            self.emit("pass")
        if fn.is_kernel and getattr(fn, "uses_barrier", False):
            # ensure generator even if barrier is unreachable: 'yield' is
            # already present from the barrier statement; nothing to do.
            pass
        if not fn.return_type.is_void() and not fn.is_kernel:
            self.emit("raise _KernelFault("
                      f"'function {fn.name} finished without returning a value')")
        return "\n".join(self.lines)

    # -- statements ------------------------------------------------------------

    def compile_stmt_list(self, statements: Sequence[ast.Stmt]) -> None:
        for stmt in statements:
            self.compile_stmt(stmt)

    def compile_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self.scope_stack.append({})
            self.compile_stmt_list(stmt.statements)
            self.scope_stack.pop()
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self.compile_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self.compile_expr_stmt(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self.compile_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self.compile_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self.compile_for(stmt)
        elif isinstance(stmt, ast.DoStmt):
            self.compile_do(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self.compile_return(stmt)
        elif isinstance(stmt, ast.BreakStmt):
            self.compile_break()
        elif isinstance(stmt, ast.ContinueStmt):
            self.compile_continue()
        elif isinstance(stmt, ast.SwitchStmt):
            self.compile_switch(stmt)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def compile_decl(self, decl: ast.VarDecl) -> None:
        ctype = decl.declared_type
        if decl.address_space == "local":
            name = self.declare_name(decl.name)
            index = self.pc.local_index(self.function, decl)
            self.emit(f"{name} = lmem[{index}]")
            return
        if isinstance(ctype, ArrayType):
            name = self.declare_name(decl.name)
            const = self.pc.constant(ctype)
            if decl.init is not None:
                values = _flatten_initializer(decl.init)
                values_const = self.pc.constant(tuple(values))
                self.emit(f"{name} = _mk_array({const}, {values_const})")
            else:
                self.emit(f"{name} = _mk_array({const}, None)")
            return
        if decl.init is not None:
            token = self.begin_charge(decl.init)
            part = self.compile_expr(decl.init)
            self.emit_lines(part.prelude)
            self.end_charge(token)
            code = self.convert_code(part.code, decl.init.ctype, ctype)
            if isinstance(ctype, VectorType):
                code = f"_copyv({code})"
        else:
            code = self.default_value_code(ctype)
        name = self.declare_name(decl.name)
        self.emit(f"{name} = {code}")
        self.invalidate_name(name)
        if decl.is_const and decl.init is not None and isinstance(ctype, ScalarType):
            folded = self.fold(decl.init)
            if folded is not None:
                from .ctypes_ import convert_scalar as _cs

                self._const_values[name] = _cs(folded, ctype)

    def default_value_code(self, ctype: CType) -> str:
        if isinstance(ctype, VectorType):
            return f"_zerovec({self.pc.constant(ctype)})"
        if isinstance(ctype, PointerType):
            return "_NULLPTR"
        assert isinstance(ctype, ScalarType)
        return "0.0" if ctype.is_float() else "0"

    def compile_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        expr = stmt.expr
        if expr is None:
            return
        if isinstance(expr, ast.Call) and getattr(expr, "kind", "") == "builtin" \
                and expr.resolved.kind == "barrier":
            part = self.compile_expr(expr.args[0])
            self.emit_lines(part.prelude)
            self.emit("C.barriers += 1")
            self.emit(f"yield ('barrier', {part.code})")
            self.invalidate_loads()
            return
        token = self.begin_charge(expr)
        if isinstance(expr, ast.Assignment):
            part = self.compile_assignment(expr)
            self.emit_lines(part.prelude)
            self.end_charge(token)
            return
        part = self.compile_expr(expr)
        self.emit_lines(part.prelude)
        self.end_charge(token)
        if _has_side_effect_code(part.code):
            self.emit(part.code)

    def compile_if(self, stmt: ast.IfStmt) -> None:
        token = self.begin_charge(stmt.condition)
        part = self.compile_expr(stmt.condition)
        self.emit_lines(part.prelude)
        self.end_charge(token, extra=1)
        snapshot = self.snapshot_loads()
        self.emit(f"if {part.code}:")
        self.indent += 1
        before = len(self.lines)
        self.scope_stack.append({})
        self.compile_stmt(stmt.then_branch)
        self.scope_stack.pop()
        if len(self.lines) == before:
            self.emit("pass")
        self.indent -= 1
        self.restore_loads(dict(snapshot))
        if stmt.else_branch is not None:
            self.emit("else:")
            self.indent += 1
            before = len(self.lines)
            self.scope_stack.append({})
            self.compile_stmt(stmt.else_branch)
            self.scope_stack.pop()
            if len(self.lines) == before:
                self.emit("pass")
            self.indent -= 1
            self.restore_loads(dict(snapshot))
        # Branches may have stored to memory: keep only loads that were
        # already valid before and not invalidated by either branch.
        self.invalidate_loads()

    def _compile_loop_condition_break(self, condition: Optional[ast.Expr]) -> None:
        if condition is None:
            return
        token = self.begin_charge(condition)
        part = self.compile_expr(condition)
        self.emit_lines(part.prelude)
        self.end_charge(token, extra=1)
        self.emit(f"if not ({part.code}): break")

    def compile_while(self, stmt: ast.WhileStmt) -> None:
        self.invalidate_loads()
        self.emit("while True:")
        self.indent += 1
        self._compile_loop_condition_break(stmt.condition)
        self.contexts.append(("loop", []))
        self.scope_stack.append({})
        self.compile_stmt(stmt.body)
        self.scope_stack.pop()
        self.contexts.pop()
        self.indent -= 1
        self.invalidate_loads()

    def compile_for(self, stmt: ast.ForStmt) -> None:
        self.scope_stack.append({})
        if stmt.init is not None:
            self.compile_stmt(stmt.init)
        self.invalidate_loads()
        increment_lines: List[str] = []
        if stmt.increment is not None:
            increment_lines = self._capture_lines(lambda: self._compile_increment(stmt.increment))
        self.emit("while True:")
        self.indent += 1
        self._compile_loop_condition_break(stmt.condition)
        self.contexts.append(("loop", increment_lines))
        inner = len(self.lines)
        self.scope_stack.append({})
        self.compile_stmt(stmt.body)
        self.scope_stack.pop()
        self.contexts.pop()
        if len(self.lines) == inner and not increment_lines and stmt.condition is None:
            self.emit("pass")
        for line in increment_lines:
            self.lines.append("    " * self.indent + line)
        self.indent -= 1
        self.scope_stack.pop()
        self.invalidate_loads()

    def _compile_increment(self, expr: ast.Expr) -> None:
        token = self.begin_charge(expr)
        if isinstance(expr, ast.Assignment):
            part = self.compile_assignment(expr)
            self.emit_lines(part.prelude)
            self.end_charge(token)
            return
        part = self.compile_expr(expr)
        self.emit_lines(part.prelude)
        self.end_charge(token)
        if _has_side_effect_code(part.code):
            self.emit(part.code)

    def _capture_lines(self, action: Callable[[], None]) -> List[str]:
        """Run ``action`` capturing emitted lines (dedented) instead of
        appending them to the body."""
        saved_lines, saved_indent = self.lines, self.indent
        snapshot = self.snapshot_loads()
        self.lines, self.indent = [], 0
        action()
        captured = [line for line in self.lines]
        self.lines, self.indent = saved_lines, saved_indent
        self.restore_loads(snapshot)
        return captured

    def compile_do(self, stmt: ast.DoStmt) -> None:
        self.invalidate_loads()
        has_continue = _contains_loop_continue(stmt.body)
        self.emit("while True:")
        self.indent += 1
        if not has_continue:
            self.contexts.append(("loop", []))
            self.scope_stack.append({})
            self.compile_stmt(stmt.body)
            self.scope_stack.pop()
            self.contexts.pop()
        else:
            # continue must fall through to the condition: run the body in
            # a single-pass inner loop where continue becomes break.
            break_flag = self.fresh("brk")
            self.emit(f"{break_flag} = False")
            self.emit("for _once in (0,):")
            self.indent += 1
            self.contexts.append(("do_wrap", break_flag))
            self.scope_stack.append({})
            self.compile_stmt(stmt.body)
            self.scope_stack.pop()
            self.contexts.pop()
            self.indent -= 1
            self.emit(f"if {break_flag}: break")
        self.invalidate_loads()
        token = self.begin_charge(stmt.condition)
        part = self.compile_expr(stmt.condition)
        self.emit_lines(part.prelude)
        self.end_charge(token, extra=1)
        self.emit(f"if not ({part.code}): break")
        self.indent -= 1
        self.invalidate_loads()

    def compile_switch(self, stmt: ast.SwitchStmt) -> None:
        self.invalidate_loads()
        self.charge(node_cost(stmt.subject) + len(stmt.cases))
        subject = self.compile_expr(stmt.subject)
        self.emit_lines(subject.prelude)
        subject_name = self.fresh("sw")
        self.emit(f"{subject_name} = {subject.code}")
        start_name = self.fresh("st")
        default_index = len(stmt.cases)
        conditions: List[str] = []
        for index, case in enumerate(stmt.cases):
            if case.value is None:
                default_index = index
                continue
            value_part = self.compile_expr(case.value)
            self.emit_lines(value_part.prelude)
            conditions.append((index, value_part.code))
        first = True
        for index, code in conditions:
            keyword = "if" if first else "elif"
            self.emit(f"{keyword} {subject_name} == ({code}): {start_name} = {index}")
            first = False
        if first:
            self.emit(f"{start_name} = {default_index}")
        else:
            self.emit(f"else: {start_name} = {default_index}")
        in_loop = any(kind in ("loop", "do_wrap") for kind, _payload in self.contexts)
        continue_flag = self.fresh("cnt")
        if in_loop:
            self.emit(f"{continue_flag} = False")
        self.emit("for _once in (0,):")
        self.indent += 1
        self.contexts.append(("switch", continue_flag))
        emitted_any = False
        for index, case in enumerate(stmt.cases):
            self.invalidate_loads()
            self.emit(f"if {start_name} <= {index}:")
            self.indent += 1
            before = len(self.lines)
            self.scope_stack.append({})
            self.compile_stmt_list(case.body)
            self.scope_stack.pop()
            if len(self.lines) == before:
                self.emit("pass")
            self.indent -= 1
            emitted_any = True
        if not emitted_any:
            self.emit("pass")
        self.contexts.pop()
        self.indent -= 1
        self.invalidate_loads()
        if in_loop:
            # Propagate a C 'continue' that crossed the switch wrapper.
            self.emit(f"if {continue_flag}:")
            self.indent += 1
            self.compile_continue()
            self.indent -= 1

    def compile_return(self, stmt: ast.ReturnStmt) -> None:
        if self.function.is_kernel:
            self.emit("return")
            return
        if stmt.value is None:
            self.emit("return")
            return
        token = self.begin_charge(stmt.value)
        part = self.compile_expr(stmt.value)
        self.emit_lines(part.prelude)
        self.end_charge(token)
        code = self.convert_code(part.code, stmt.value.ctype, self.function.return_type)
        self.emit(f"return {code}")

    def compile_break(self) -> None:
        for kind, payload in reversed(self.contexts):
            if kind == "loop":
                self.emit("break")
                return
            if kind == "switch":
                self.emit("break")
                return
            if kind == "do_wrap":
                self.emit(f"{payload} = True")
                self.emit("break")
                return
        raise AssertionError("break outside loop/switch (typecheck should reject)")

    def compile_continue(self) -> None:
        for kind, payload in reversed(self.contexts):
            if kind == "loop":
                for line in payload:
                    self.emit(line)
                self.emit("continue")
                return
            if kind == "switch":
                self.emit(f"{payload} = True")
                self.emit("break")
                return
            if kind == "do_wrap":
                self.emit("break")  # falls through to the do-while condition
                return
        raise AssertionError("continue outside loop (typecheck should reject)")

    # -- expressions ----------------------------------------------------------

    def compile_expr(self, expr: ast.Expr) -> _ExprPart:
        # Constant folding: emit whole constant subtrees as literals
        # (identifiers resolve through the const-propagation table).
        if not isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.CharLiteral)):
            folded = self.fold(expr)
            if folded is not None:
                return _ExprPart(repr(folded))
        method = getattr(self, f"_expr_{type(expr).__name__}")
        return method(expr)

    def _expr_IntLiteral(self, expr: ast.IntLiteral) -> _ExprPart:
        return _ExprPart(repr(convert_scalar(expr.value, expr.ctype)))

    def _expr_FloatLiteral(self, expr: ast.FloatLiteral) -> _ExprPart:
        return _ExprPart(repr(float(expr.value)))

    def _expr_CharLiteral(self, expr: ast.CharLiteral) -> _ExprPart:
        return _ExprPart(repr(convert_scalar(expr.value, expr.ctype)))

    def _expr_Identifier(self, expr: ast.Identifier) -> _ExprPart:
        constant = getattr(expr, "constant_value", None)
        if constant is not None:
            return _ExprPart(repr(constant))
        name = self.lookup_name(expr.name)
        if name is not None:
            return _ExprPart(name)
        # File-scope __constant data.
        return _ExprPart(self.pc.global_symbol(expr.name))

    def _expr_UnaryOp(self, expr: ast.UnaryOp) -> _ExprPart:
        op = expr.op
        if op in ("++", "--"):
            return self._compile_incdec(expr.operand, op, prefix=True)
        if op == "*":
            operand = self.compile_expr(expr.operand)
            return _ExprPart(f"({operand.code}).load(0)", operand.prelude)
        if op == "&":
            return self._expr_address_of(expr)
        operand = self.compile_expr(expr.operand)
        ctype = expr.ctype
        if isinstance(ctype, VectorType):
            const = self.pc.constant(ctype)
            return _ExprPart(f"_unaryv({const}, {op!r}, {operand.code})", operand.prelude)
        if op == "!":
            return _ExprPart(f"(0 if ({operand.code}) else 1)", operand.prelude)
        if op == "~":
            code = f"(~({operand.code}))"
        elif op == "-":
            code = f"(-({operand.code}))"
        else:  # unary +
            code = f"(+({operand.code}))"
        code = self._mask_unsigned(code, ctype)
        return _ExprPart(code, operand.prelude)

    def _expr_address_of(self, expr: ast.UnaryOp) -> _ExprPart:
        inner = expr.operand
        if isinstance(inner, ast.Index):
            base_type = inner.base.ctype
            if isinstance(base_type, ArrayType):
                flattened = self._flatten_array_access(inner)
                if flattened is not None:
                    root, flat_index, prelude = flattened
                    return _ExprPart(f"({root}).pointer.add({flat_index})", prelude)
                base = self.compile_expr(inner.base)
                index = self.compile_expr(inner.index)
                return _ExprPart(f"({base.code}).index({index.code}).decayed()",
                                 base.prelude + index.prelude)
            base = self.compile_expr(inner.base)
            index = self.compile_expr(inner.index)
            return _ExprPart(f"({base.code}).add({index.code})", base.prelude + index.prelude)
        if isinstance(inner, ast.UnaryOp) and inner.op == "*":
            operand = self.compile_expr(inner.operand)
            return _ExprPart(operand.code, operand.prelude)
        if isinstance(inner, ast.Identifier) and isinstance(inner.ctype, ArrayType):
            part = self.compile_expr(inner)
            return _ExprPart(f"({part.code}).decayed()", part.prelude)
        raise _unsupported(expr, "taking the address of a plain variable is not supported")

    def _mask_unsigned(self, code: str, ctype: CType) -> str:
        if isinstance(ctype, ScalarType) and ctype.is_integer() and not ctype.signed and not ctype.is_bool():
            return f"(({code}) & {_UNSIGNED_MASKS[ctype.size]})"
        return code

    def _compile_incdec(self, target: ast.Expr, op: str, prefix: bool) -> _ExprPart:
        delta = "1" if op == "++" else "-1"
        ctype = target.ctype
        if isinstance(target, ast.Identifier) and not isinstance(ctype, (VectorType,)):
            name = self.lookup_name(target.name)
            assert name is not None
            self.invalidate_name(name)
            if isinstance(ctype, PointerType):
                update = f"{name} = {name}.add({delta})"
            else:
                update = f"{name} = {self._mask_unsigned(f'{name} + ({delta})', ctype)}"
            if prefix:
                return _ExprPart(name, [update])
            temp = self.fresh()
            return _ExprPart(temp, [f"{temp} = {name}", update])
        # General lvalue: load-modify-store.
        lvalue = self._compile_lvalue(target)
        temp = self.fresh()
        prelude = list(lvalue.prelude)
        prelude.append(f"{temp} = {lvalue.load_code()}")
        if isinstance(ctype, PointerType):
            new_code = f"{temp}.add({delta})"
        else:
            new_code = self._mask_unsigned(f"{temp} + ({delta})", ctype)
        if prefix:
            new_temp = self.fresh()
            prelude.append(f"{new_temp} = {new_code}")
            prelude.extend(lvalue.store_lines(new_temp))
            self.invalidate_loads()
            return _ExprPart(new_temp, prelude)
        prelude.extend(lvalue.store_lines(new_code))
        self.invalidate_loads()
        return _ExprPart(temp, prelude)

    def _expr_PostfixOp(self, expr: ast.PostfixOp) -> _ExprPart:
        return self._compile_incdec(expr.operand, expr.op, prefix=False)

    def _expr_BinaryOp(self, expr: ast.BinaryOp) -> _ExprPart:
        op = expr.op
        left_type = _decayed_type(expr.left)
        right_type = _decayed_type(expr.right)

        if op in ("&&", "||"):
            return self._compile_logical(expr)

        left = self.compile_expr(expr.left)
        right = self.compile_expr(expr.right)
        prelude = left.prelude + right.prelude
        op_type = expr.op_type

        # Pointer arithmetic / comparisons.
        if isinstance(left_type, PointerType) or isinstance(right_type, PointerType):
            return self._compile_pointer_binary(expr, left, right, left_type, right_type, prelude)

        if isinstance(op_type, VectorType):
            const = self.pc.constant(op_type)
            helper = "_cmpv" if op in ("<", ">", "<=", ">=", "==", "!=") else "_binv"
            return _ExprPart(f"{helper}({op!r}, {left.code}, {right.code}, {const})", prelude)

        assert isinstance(op_type, ScalarType)
        lcode, rcode = left.code, right.code
        # Order-sensitive operations (comparisons, division, remainder,
        # right shift) need operands coerced to the unsigned domain when
        # the computation type is unsigned — C's "usual arithmetic
        # conversions" make (-1 < 1u) false.  Ring operations (+ - * etc.)
        # only need the result masked.
        is_unsigned = op_type.is_integer() and not op_type.signed and not op_type.is_bool()
        if op in ("<", ">", "<=", ">=", "==", "!="):
            if is_unsigned:
                lcode = self._mask_unsigned(lcode, op_type)
                rcode = self._mask_unsigned(rcode, op_type)
            elif op_type.is_integer():
                lcode = self._wrap_signed_code(lcode, op_type, force=False)
                rcode = self._wrap_signed_code(rcode, op_type, force=False)
            return _ExprPart(f"(({lcode}) {op} ({rcode}))", prelude)
        if op == "/":
            if op_type.is_float():
                return _ExprPart(f"_fdiv({lcode}, {rcode})", prelude)
            if is_unsigned:
                lcode = self._mask_unsigned(lcode, op_type)
                rcode = self._mask_unsigned(rcode, op_type)
            return _ExprPart(f"_idiv({lcode}, {rcode})", prelude)
        if op == "%":
            if is_unsigned:
                lcode = self._mask_unsigned(lcode, op_type)
                rcode = self._mask_unsigned(rcode, op_type)
            return _ExprPart(f"_imod({lcode}, {rcode})", prelude)
        if op in ("<<", ">>"):
            if op == ">>" and is_unsigned:
                lcode = self._mask_unsigned(lcode, op_type)
            code = f"(({lcode}) {op} (({rcode}) % {op_type.bits}))"
            return _ExprPart(self._mask_unsigned(code, op_type), prelude)
        # Strength reduction: fold multiplications by +-1 and additions
        # of 0 (matching node_cost, which charges nothing for them).
        if op == "*":
            if _is_literal(expr.right, 1, 1.0):
                return _ExprPart(lcode, prelude)
            if _is_literal(expr.left, 1, 1.0):
                return _ExprPart(rcode, prelude)
            if _is_literal(expr.right, -1, -1.0):
                return _ExprPart(self._mask_unsigned(f"(-({lcode}))", op_type), prelude)
            if _is_literal(expr.left, -1, -1.0):
                return _ExprPart(self._mask_unsigned(f"(-({rcode}))", op_type), prelude)
        elif op in ("+", "-") and _is_literal(expr.right, 0, 0.0):
            return _ExprPart(lcode, prelude)
        elif op == "+" and _is_literal(expr.left, 0, 0.0):
            return _ExprPart(rcode, prelude)
        code = f"(({lcode}) {op} ({rcode}))"
        return _ExprPart(self._mask_unsigned(code, op_type), prelude)

    def _wrap_signed_code(self, code: str, ctype: ScalarType, force: bool) -> str:
        """No-op unless forced: signed overflow is UB, so relaxed values
        are kept except at explicit conversion points."""
        if not force:
            return code
        return f"_sw{ctype.bits}({code})"

    def _compile_logical(self, expr: ast.BinaryOp) -> _ExprPart:
        left = self.compile_expr(expr.left)
        # The right side evaluates conditionally: loads cached inside it
        # must not escape into unconditional contexts.
        snapshot = self.snapshot_loads()
        right = self.compile_expr(expr.right)
        self.restore_loads(snapshot)
        if not right.prelude:
            joiner = "and" if expr.op == "&&" else "or"
            return _ExprPart(f"(1 if (({left.code}) {joiner} ({right.code})) else 0)", left.prelude)
        # The right side needs statements: lower with explicit control flow
        # to preserve short-circuit evaluation.
        result = self.fresh("lg")
        prelude = list(left.prelude)
        if expr.op == "&&":
            prelude.append(f"{result} = 0")
            prelude.append(f"if ({left.code}):")
            for line in right.prelude:
                prelude.append("    " + line)
            prelude.append(f"    {result} = 1 if ({right.code}) else 0")
        else:
            prelude.append(f"{result} = 1")
            prelude.append(f"if not ({left.code}):")
            for line in right.prelude:
                prelude.append("    " + line)
            prelude.append(f"    {result} = 1 if ({right.code}) else 0")
        return _ExprPart(result, prelude)

    def _compile_pointer_binary(self, expr, left, right, left_type, right_type, prelude) -> _ExprPart:
        op = expr.op
        left_ptr = isinstance(left_type, PointerType)
        right_ptr = isinstance(right_type, PointerType)
        lcode = self._decay_code(left.code, expr.left.ctype)
        rcode = self._decay_code(right.code, expr.right.ctype)
        if op == "+":
            if left_ptr:
                return _ExprPart(f"({lcode}).add({rcode})", prelude)
            return _ExprPart(f"({rcode}).add({lcode})", prelude)
        if op == "-":
            if left_ptr and right_ptr:
                return _ExprPart(f"({lcode}).diff({rcode})", prelude)
            return _ExprPart(f"({lcode}).add(-({rcode}))", prelude)
        if op in ("==", "!="):
            negate = "" if op == "==" else "not "
            return _ExprPart(f"int({negate}_ptr_eq({lcode}, {rcode}))", prelude)
        return _ExprPart(f"int(({lcode}).offset {op} ({rcode}).offset)", prelude)

    def _decay_code(self, code: str, ctype: Optional[CType]) -> str:
        if isinstance(ctype, ArrayType):
            return f"({code}).decayed()"
        return code

    def _expr_Assignment(self, expr: ast.Assignment) -> _ExprPart:
        return self.compile_assignment(expr)

    def compile_assignment(self, expr: ast.Assignment) -> _ExprPart:
        target_type = expr.target.ctype

        # Fast path: simple variable target.
        if isinstance(expr.target, ast.Identifier):
            value = self.compile_expr(expr.value)
            value_code = self._decay_code(value.code, expr.value.ctype)
            name = self.lookup_name(expr.target.name)
            assert name is not None
            prelude = list(value.prelude)
            if expr.op == "=":
                new_code = self.convert_code(value_code, expr.value.ctype, target_type)
                if isinstance(target_type, VectorType):
                    new_code = f"_copyv({new_code})"
            else:
                new_code = self._compound_code(name, value_code, expr)
            prelude.append(f"{name} = {new_code}")
            self.invalidate_name(name)
            return _ExprPart(name, prelude)

        # Compile the lvalue before the value so the compile-time order
        # matches the emitted runtime order (lvalue prelude first).  A
        # load shared between both sides must pick its CSE source from
        # whichever side executes first, or the cached temp would be
        # referenced before its defining line.
        lvalue = self._compile_lvalue(expr.target)
        value = self.compile_expr(expr.value)
        value_code = self._decay_code(value.code, expr.value.ctype)
        prelude = lvalue.prelude + value.prelude
        if expr.op == "=":
            stored = self.convert_code(value_code, expr.value.ctype, target_type)
        else:
            current = self.fresh("cur")
            prelude.append(f"{current} = {lvalue.load_code()}")
            stored = self._compound_code(current, value_code, expr)
        temp = self.fresh("val")
        prelude.append(f"{temp} = {stored}")
        prelude.extend(lvalue.store_lines(temp))
        self.invalidate_loads()  # stored through memory
        return _ExprPart(temp, prelude)

    def _compound_code(self, current_code: str, value_code: str, expr: ast.Assignment) -> str:
        op = expr.op[:-1]
        target_type = expr.target.ctype
        if isinstance(target_type, PointerType):
            sign = "" if op == "+" else "-"
            return f"({current_code}).add({sign}({value_code}))"
        if isinstance(target_type, VectorType) or isinstance(expr.value.ctype, VectorType):
            const = self.pc.constant(target_type)
            return f"_binv({op!r}, {current_code}, {value_code}, {const})"
        assert isinstance(target_type, ScalarType)
        value_type = expr.value.ctype
        # Compute in the wider type when mixing float into an int target.
        if isinstance(value_type, ScalarType) and value_type.is_float() and target_type.is_integer():
            combined = f"(({current_code}) {op} ({value_code}))" if op not in ("/",) else f"_fdiv({current_code}, {value_code})"
            return self.convert_code(combined, value_type, target_type)
        if op == "/":
            combined = f"_fdiv({current_code}, {value_code})" if target_type.is_float() else f"_idiv({current_code}, {value_code})"
        elif op == "%":
            combined = f"_imod({current_code}, {value_code})"
        elif op in ("<<", ">>"):
            combined = f"(({current_code}) {op} (({value_code}) % {target_type.bits}))"
        else:
            value = self.convert_code(value_code, value_type, target_type) if (
                isinstance(value_type, ScalarType) and value_type.is_float() and target_type.is_integer()
            ) else value_code
            combined = f"(({current_code}) {op} ({value}))"
        return self._mask_unsigned(combined, target_type)

    def _expr_Conditional(self, expr: ast.Conditional) -> _ExprPart:
        condition = self.compile_expr(expr.condition)
        snapshot = self.snapshot_loads()
        then_part = self.compile_expr(expr.then_expr)
        self.restore_loads(dict(snapshot))
        else_part = self.compile_expr(expr.else_expr)
        self.restore_loads(snapshot)
        then_code = self.convert_code(self._decay_code(then_part.code, expr.then_expr.ctype),
                                      expr.then_expr.ctype, expr.ctype)
        else_code = self.convert_code(self._decay_code(else_part.code, expr.else_expr.ctype),
                                      expr.else_expr.ctype, expr.ctype)
        if not then_part.prelude and not else_part.prelude:
            return _ExprPart(f"(({then_code}) if ({condition.code}) else ({else_code}))", condition.prelude)
        result = self.fresh("sel")
        prelude = list(condition.prelude)
        prelude.append(f"if ({condition.code}):")
        for line in then_part.prelude:
            prelude.append("    " + line)
        prelude.append(f"    {result} = {then_code}")
        prelude.append("else:")
        for line in else_part.prelude:
            prelude.append("    " + line)
        prelude.append(f"    {result} = {else_code}")
        return _ExprPart(result, prelude)

    def _expr_Call(self, expr: ast.Call) -> _ExprPart:
        if expr.kind == "user":
            return self._compile_user_call(expr)
        resolved: ResolvedBuiltin = expr.resolved
        if resolved.kind == "workitem":
            return self._compile_workitem(expr, resolved)
        if resolved.kind == "barrier":
            raise _unsupported(expr, "barrier() must be a standalone statement")
        if resolved.name in ("mem_fence", "read_mem_fence", "write_mem_fence"):
            part = self.compile_expr(expr.args[0])
            return _ExprPart("None", part.prelude)

        parts = [self.compile_expr(arg) for arg in expr.args]
        prelude: List[str] = []
        for part in parts:
            prelude.extend(part.prelude)
        arg_codes = [
            self.convert_code(part.code, arg.ctype, param_type)
            for part, arg, param_type in zip(parts, expr.args, resolved.param_types)
        ]
        needs_generic = (
            resolved.kind == "whole"
            or isinstance(resolved.result_type, VectorType)
            or any(isinstance(t, VectorType) for t in resolved.param_types)
        )
        if needs_generic:
            const = self.pc.constant(resolved)
            return _ExprPart(f"_applyb({const}, ({', '.join(arg_codes)},))", prelude)
        impl_const = self.pc.constant(resolved.impl)
        code = f"{impl_const}({', '.join(arg_codes)})"
        result = resolved.result_type
        if isinstance(result, ScalarType) and result.is_integer() and not result.signed and resolved.name not in ("abs",):
            code = self._mask_unsigned(code, result)
        return _ExprPart(code, prelude)

    def _compile_workitem(self, expr: ast.Call, resolved: ResolvedBuiltin) -> _ExprPart:
        attr = {
            "get_global_id": "global_id",
            "get_local_id": "local_id",
            "get_group_id": "group_id",
            "get_global_size": "global_size",
            "get_local_size": "local_size",
            "get_global_offset": "global_offset",
        }.get(resolved.name)
        if resolved.name == "get_work_dim":
            return _ExprPart("ctx.work_dim")
        if expr.args and isinstance(expr.args[0], ast.IntLiteral) and attr is not None \
                and 0 <= expr.args[0].value <= 2:
            return _ExprPart(f"ctx.{attr}[{expr.args[0].value}]")
        parts = [self.compile_expr(arg) for arg in expr.args]
        prelude = [line for part in parts for line in part.prelude]
        args = ", ".join(part.code for part in parts)
        return _ExprPart(f"ctx.{resolved.name}({args})", prelude)

    def _compile_user_call(self, expr: ast.Call) -> _ExprPart:
        target: ast.FunctionDef = expr.callee_def
        parts = [self.compile_expr(arg) for arg in expr.args]
        prelude = [line for part in parts for line in part.prelude]
        arg_codes = []
        for part, arg, param in zip(parts, expr.args, target.params):
            code = self._decay_code(part.code, arg.ctype)
            code = self.convert_code(code, arg.ctype, param.declared_type)
            arg_codes.append(code)
        symbol = self.pc.function_symbol(target.name)
        joined = ", ".join(arg_codes)
        call = f"{symbol}(C, ctx, {joined})" if joined else f"{symbol}(C, ctx)"
        self.invalidate_loads()  # the callee may write memory
        return _ExprPart(call, prelude)

    def _flatten_array_access(self, expr: ast.Index):
        """Flatten a full multi-dim array access ``a[i][j]`` into the root
        ArrayRef and a single flat index expression (no intermediate
        ArrayRef/Pointer objects at runtime).  None when not applicable.
        """
        if isinstance(expr.ctype, ArrayType):
            return None  # partial indexing yields an array row
        indices: List[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index) and isinstance(node.base.ctype, ArrayType):
            indices.append(node.index)
            node = node.base
        if not isinstance(node.ctype, ArrayType) or not indices:
            return None
        indices.reverse()  # outermost dimension first
        strides: List[int] = []
        ctype: CType = node.ctype
        for _ in indices:
            element = ctype.element
            strides.append(element.flat_length() if isinstance(element, ArrayType) else 1)
            ctype = element
        base_part = self.compile_expr(node)
        prelude = list(base_part.prelude)
        terms: List[str] = []
        for index_expr, stride in zip(indices, strides):
            part = self.compile_expr(index_expr)
            prelude.extend(part.prelude)
            terms.append(part.code if stride == 1 else f"({part.code}) * {stride}")
        return base_part.code, " + ".join(terms), prelude

    def _expr_Index(self, expr: ast.Index) -> _ExprPart:
        base_type = expr.base.ctype
        if isinstance(base_type, ArrayType):
            flattened = self._flatten_array_access(expr)
            if flattened is None:
                base = self.compile_expr(expr.base)
                index = self.compile_expr(expr.index)
                return _ExprPart(f"({base.code}).index({index.code})",
                                 base.prelude + index.prelude)
            root, flat_index, prelude = flattened
            load_code = f"({root}).pointer.load({flat_index})"
        else:
            base = self.compile_expr(expr.base)
            index = self.compile_expr(expr.index)
            prelude = base.prelude + index.prelude
            load_code = f"({base.code}).load({index.code})"
        # CSE: repeated identical loads within a basic block reuse the
        # first load's temp (only for side-effect-free base/index).
        if not prelude:
            cached = self._load_cache.get(load_code)
            if cached is not None:
                self._cse_savings += node_cost(expr)
                self.record_cse(expr, cached)
                return _ExprPart(cached)
            temp = self.fresh("ld")
            self._load_cache[load_code] = temp
            self._load_origins[temp] = id(expr)
            return _ExprPart(temp, [f"{temp} = {load_code}"])
        return _ExprPart(load_code, prelude)

    def _expr_Member(self, expr: ast.Member) -> _ExprPart:
        base = self.compile_expr(expr.base)
        indices = expr.indices
        if len(indices) == 1:
            return _ExprPart(f"({base.code}).components[{indices[0]}]", base.prelude)
        idx_tuple = ", ".join(str(i) for i in indices)
        return _ExprPart(f"_vswiz({base.code}, ({idx_tuple},))", base.prelude)

    def _expr_Cast(self, expr: ast.Cast) -> _ExprPart:
        operand = self.compile_expr(expr.operand)
        source = expr.operand.ctype
        target = expr.target_type
        if target.is_void():
            return _ExprPart(f"({operand.code}, None)[1]" if _has_side_effect_code(operand.code) else "None",
                             operand.prelude)
        if isinstance(target, PointerType):
            code = self._decay_code(operand.code, source)
            if isinstance(source, (PointerType, ArrayType)):
                pointee_const = self.pc.constant(target.pointee)
                return _ExprPart(f"({code}).retyped({pointee_const})", operand.prelude)
            raise _unsupported(expr, "invalid pointer cast")
        # Exact conversion semantics on explicit casts.
        const = self.pc.constant(target)
        return _ExprPart(f"_cvt({operand.code}, {const})", operand.prelude)

    def _expr_VectorLiteral(self, expr: ast.VectorLiteral) -> _ExprPart:
        target: VectorType = expr.target_type
        parts = [self.compile_expr(element) for element in expr.elements]
        prelude = [line for part in parts for line in part.prelude]
        codes = ", ".join(part.code for part in parts)
        const = self.pc.constant(target)
        return _ExprPart(f"_vecnew({const}, ({codes},))", prelude)

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr) -> _ExprPart:
        queried = expr.queried_type if expr.queried_type is not None else expr.operand.ctype
        return _ExprPart(str(queried.sizeof()))

    def _expr_CommaExpr(self, expr: ast.CommaExpr) -> _ExprPart:
        prelude: List[str] = []
        for part_expr in expr.parts[:-1]:
            part = self.compile_expr(part_expr)
            prelude.extend(part.prelude)
            if _has_side_effect_code(part.code):
                prelude.append(part.code)
        last = self.compile_expr(expr.parts[-1])
        prelude.extend(last.prelude)
        return _ExprPart(last.code, prelude)

    # -- lvalues ----------------------------------------------------------------

    def _compile_lvalue(self, expr: ast.Expr) -> "_CompiledLValue":
        if isinstance(expr, ast.Identifier):
            name = self.lookup_name(expr.name)
            assert name is not None
            return _CompiledLValue([], kind="var", target=name)
        if isinstance(expr, ast.Index):
            base_type = expr.base.ctype
            pointer_temp = self.fresh("ptr")
            index_temp = self.fresh("idx")
            if isinstance(base_type, ArrayType):
                flattened = self._flatten_array_access(expr)
                assert flattened is not None, "array rows are not assignable"
                root, flat_index, prelude = flattened
                prelude.append(f"{pointer_temp} = ({root}).pointer")
                prelude.append(f"{index_temp} = {flat_index}")
                return _CompiledLValue(prelude, kind="mem", target=pointer_temp, index=index_temp)
            base = self.compile_expr(expr.base)
            index = self.compile_expr(expr.index)
            prelude = base.prelude + index.prelude
            prelude.append(f"{pointer_temp} = {base.code}")
            prelude.append(f"{index_temp} = {index.code}")
            return _CompiledLValue(prelude, kind="mem", target=pointer_temp, index=index_temp)
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            operand = self.compile_expr(expr.operand)
            pointer_temp = self.fresh("ptr")
            prelude = list(operand.prelude)
            prelude.append(f"{pointer_temp} = {operand.code}")
            return _CompiledLValue(prelude, kind="mem", target=pointer_temp, index="0")
        if isinstance(expr, ast.Member):
            base_lvalue = self._compile_lvalue(expr.base)
            prelude = list(base_lvalue.prelude)
            vec_temp = self.fresh("vec")
            prelude.append(f"{vec_temp} = {base_lvalue.load_code()}")
            element_const = self.pc.constant(expr.base.ctype.element)
            return _CompiledLValue(
                prelude,
                kind="veccomp",
                target=vec_temp,
                indices=tuple(expr.indices),
                writeback=base_lvalue if base_lvalue.kind != "var" else None,
                element_const=element_const,
            )
        raise _unsupported(expr, f"expression is not assignable: {type(expr).__name__}")

    def convert_code(self, code: str, source: Optional[CType], target: CType) -> str:
        """Emit a conversion of ``code`` from ``source`` to ``target``.

        Applies relaxed fast-math rules (see the module docstring).
        """
        if source is None or source == target:
            return code
        if isinstance(source, ArrayType):
            return code  # decayed by the caller
        if isinstance(target, VectorType) or isinstance(source, VectorType):
            const = self.pc.constant(target)
            return f"_cvv({code}, {const})"
        if isinstance(target, PointerType) or isinstance(source, PointerType):
            return code
        assert isinstance(source, ScalarType) and isinstance(target, ScalarType)
        if target.is_bool():
            return f"(1 if ({code}) else 0)"
        if target.is_float():
            return f"float({code})" if source.is_integer() else code
        # integer target
        if source.is_float():
            code = f"int({code})"
            if not target.signed:
                return self._mask_unsigned(code, target)
            return code
        if not target.signed:
            return self._mask_unsigned(code, target)
        # Signed target: wrap unless the conversion is a value-preserving
        # widening (e.g. size_t → int must turn 2^64-1 into -1, the
        # classic `get_global_id(0) - 1` OpenCL pattern).
        if source.signed and source.size <= target.size:
            return code
        return f"_sw{target.bits}({code})"


class _CompiledLValue:
    __slots__ = ("prelude", "kind", "target", "index", "indices", "writeback", "element_const")

    def __init__(self, prelude, kind, target, index=None, indices=None, writeback=None, element_const=None):
        self.prelude = prelude
        self.kind = kind
        self.target = target
        self.index = index
        self.indices = indices
        self.writeback = writeback
        self.element_const = element_const

    def load_code(self) -> str:
        if self.kind == "var":
            return self.target
        if self.kind == "mem":
            return f"{self.target}.load({self.index})"
        if self.kind == "veccomp":
            if len(self.indices) == 1:
                return f"{self.target}.components[{self.indices[0]}]"
            idx = ", ".join(str(i) for i in self.indices)
            return f"_vswiz({self.target}, ({idx},))"
        raise AssertionError(self.kind)  # pragma: no cover

    def store_lines(self, value_code: str) -> List[str]:
        if self.kind == "var":
            return [f"{self.target} = {value_code}"]
        if self.kind == "mem":
            return [f"{self.target}.store({self.index}, {value_code})"]
        if self.kind == "veccomp":
            idx = ", ".join(str(i) for i in self.indices)
            lines = [f"_vset({self.target}, ({idx},), {value_code}, {self.element_const})"]
            if self.writeback is not None:
                lines.extend(self.writeback.store_lines(self.target))
            return lines
        raise AssertionError(self.kind)  # pragma: no cover


def _decayed_type(expr: ast.Expr) -> Optional[CType]:
    ctype = expr.ctype
    if isinstance(ctype, ArrayType):
        symbol = getattr(expr, "symbol", None)
        space = symbol.address_space if symbol is not None else "private"
        return PointerType(ctype.element, space)
    return ctype


def _has_side_effect_code(code: str) -> bool:
    return "(" in code or "=" in code


def _contains_loop_continue(stmt: ast.Stmt) -> bool:
    """True if ``stmt`` contains a continue binding to this loop level."""

    def scan(node: ast.Node) -> bool:
        if isinstance(node, ast.ContinueStmt):
            return True
        if isinstance(node, (ast.ForStmt, ast.WhileStmt, ast.DoStmt)):
            return False  # continue inside binds to the inner loop
        return any(scan(child) for child in ast.children(node))

    return scan(stmt)


class _unsupported(Exception):
    def __init__(self, expr: ast.Expr, message: str):
        super().__init__(f"{message} (at {expr.span})")


class _ProgramCompiler:
    def __init__(self, program: ast.Program):
        self.program = program
        self.constants: List[object] = []
        self._constant_index: Dict[int, int] = {}
        self._local_indices: Dict[Tuple[str, int], int] = {}
        for function in program.functions:
            if function.is_kernel:
                for position, decl in enumerate(collect_local_decls(function)):
                    self._local_indices[(function.name, id(decl))] = position

    def constant(self, value) -> str:
        key = id(value)
        index = self._constant_index.get(key)
        if index is None:
            index = len(self.constants)
            self.constants.append(value)
            self._constant_index[key] = index
        return f"_K[{index}]"

    def function_symbol(self, name: str) -> str:
        return f"_fn_{name}"

    def global_symbol(self, name: str) -> str:
        return f"_g_{name}"

    def local_index(self, function: ast.FunctionDef, decl: ast.VarDecl) -> int:
        return self._local_indices[(function.name, id(decl))]

    def compile(self) -> CompiledProgram:
        pieces: List[str] = []
        for function in self.program.functions:
            compiler = _FunctionCompiler(self, function)
            pieces.append(compiler.compile())
        body = "\n\n".join(pieces)
        names = ", ".join(f"'{fn.name}': {self.function_symbol(fn.name)}" for fn in self.program.functions)
        source_code = f"{body}\n\n_FUNCTIONS = {{{names}}}\n"

        namespace = _runtime_namespace()
        namespace["_K"] = self.constants
        self._bind_globals(namespace)
        exec(compile(source_code, "<kernelc-compiled>", "exec"), namespace)  # noqa: S102
        functions = namespace["_FUNCTIONS"]

        kernels: Dict[str, CompiledKernel] = {}
        for function in self.program.functions:
            if not function.is_kernel:
                continue
            kernels[function.name] = CompiledKernel(
                name=function.name,
                func=functions[function.name],
                uses_barrier=bool(getattr(function, "uses_barrier", False)),
                definition=function,
                local_decls=collect_local_decls(function),
                program=self.program,
            )
        return CompiledProgram(self.program, kernels, source_code)

    def _bind_globals(self, namespace: Dict[str, object]) -> None:
        if not self.program.globals:
            return
        from .interp import Machine

        machine = Machine(self.program)
        for global_decl in self.program.globals:
            name = global_decl.decl.name
            namespace[self.global_symbol(name)] = machine.globals[name]


# -- runtime helpers bound into generated code --------------------------------


def _vswiz(vec: VecValue, indices) -> VecValue:
    return VecValue(vec.element_type, [vec.components[i] for i in indices])


def _vset(vec: VecValue, indices, value, element_type) -> None:
    if len(indices) == 1:
        vec.components[indices[0]] = convert_scalar(value, element_type)
        return
    if not isinstance(value, VecValue):
        raise KernelFault("assigning a scalar to a multi-component swizzle")
    for target_index, component in zip(indices, value.components):
        vec.components[target_index] = convert_scalar(component, element_type)


def _vecnew(target: VectorType, parts) -> VecValue:
    components: List = []
    for part in parts:
        if isinstance(part, VecValue):
            components.extend(part.components)
        else:
            components.append(part)
    if len(components) == 1 and target.width > 1:
        components = components * target.width
    return VecValue(target.element, components)


def _zerovec(ctype: VectorType) -> VecValue:
    return VecValue(ctype.element, [0] * ctype.width)


def _mk_array(ctype: ArrayType, init_values) -> ArrayRef:
    pointer = allocate(ctype.base_element(), ctype.flat_length(), "private")
    if init_values is not None:
        base = ctype.base_element()
        for i, value in enumerate(init_values):
            pointer.array[i] = convert_scalar(value, base)
    return ArrayRef(pointer, ctype.element)


def _ptr_eq(a, b) -> bool:
    return isinstance(a, Pointer) and isinstance(b, Pointer) and a.array is b.array and a.offset == b.offset


class _NullPointerSentinel:
    def __getattr__(self, name):
        raise KernelFault("use of an uninitialized (null) pointer")


_NULLPTR = _NullPointerSentinel()


def _sw(bits: int):
    half = 1 << (bits - 1)
    full = 1 << bits

    def wrap(value: int) -> int:
        return ((int(value) + half) & (full - 1)) - half

    return wrap


def _runtime_namespace() -> Dict[str, object]:
    return {
        "_sw8": _sw(8),
        "_sw16": _sw(16),
        "_sw32": _sw(32),
        "_sw64": _sw(64),
        "_idiv": c_idiv,
        "_imod": c_imod,
        "_fdiv": c_fdiv,
        "_binv": binary_value,
        "_cmpv": compare_value,
        "_unaryv": _unary_vector,
        "_applyb": apply_builtin,
        "_vswiz": _vswiz,
        "_vset": _vset,
        "_vecnew": _vecnew,
        "_zerovec": _zerovec,
        "_mk_array": _mk_array,
        "_copyv": copy_value,
        "_cvt": convert_value,
        "_cvv": convert_value,
        "_ptr_eq": _ptr_eq,
        "_KernelFault": KernelFault,
        "_NULLPTR": _NULLPTR,
        # Folded float constants are emitted via repr(), which renders
        # non-finite values as the bare names inf/nan.
        "inf": float("inf"),
        "nan": float("nan"),
    }


def _unary_vector(ctype: VectorType, op: str, operand) -> VecValue:
    from .ctypes_ import wrap_int

    if not isinstance(operand, VecValue):
        operand = VecValue(ctype.element, [operand] * ctype.width)
    element = ctype.element
    if op == "-":
        return VecValue(element, [-c for c in operand.components])
    if op == "~":
        return VecValue(element, [wrap_int(~int(c), element) for c in operand.components])
    if op == "!":
        return VecValue(element, [0 if c else 1 for c in operand.components])
    return VecValue(element, list(operand.components))


def compile_program(program: ast.Program) -> CompiledProgram:
    """Compile a checked program to Python functions."""
    return _ProgramCompiler(program).compile()
