"""Compiler diagnostics: errors and warnings with source spans.

The front-end collects diagnostics into a :class:`DiagnosticSink` instead
of raising on first error, so a single compile reports every problem.
``CompileError`` is raised at phase boundaries when the sink holds errors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .source import SourceFile, Span


class Severity(enum.Enum):
    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    message: str
    span: Optional[Span] = None

    def render(self, source: Optional[SourceFile] = None) -> str:
        # Synthetic spans (BUILTIN_SPAN, line 0) have no source location:
        # render them exactly like spanless diagnostics instead of
        # emitting a bogus "<kernel>:0:0:" prefix with no snippet.
        located = self.span is not None and self.span.start.line > 0
        where = ""
        origin = None
        if located:
            name = source.name if source is not None else "<kernel>"
            where = f"{name}:{self.span.start}: "
            if source is not None:
                # Jit-lowered code: prefer the Python file/line the
                # offending generated line came from.
                origin = source.origin(self.span.start.line)
                if origin is not None:
                    where = f"{origin[0]}:{origin[1]}: "
        text = f"{where}{self.severity.value}: {self.message}"
        if source is not None and located:
            text += "\n" + source.snippet(self.span)
            if origin is not None:
                text += (f"\n(generated from {origin[0]}:{origin[1]}; "
                         f"generated kernel line {self.span.start.line})")
        return text


class CompileError(Exception):
    """Raised when a front-end phase finishes with errors."""

    def __init__(self, diagnostics: List[Diagnostic], source: Optional[SourceFile] = None):
        self.diagnostics = diagnostics
        self.source = source
        rendered = "\n".join(d.render(source) for d in diagnostics)
        super().__init__(rendered or "compilation failed")


@dataclass
class DiagnosticSink:
    """Accumulates diagnostics during a front-end phase."""

    source: Optional[SourceFile] = None
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def error(self, message: str, span: Optional[Span] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, span))

    def warning(self, message: str, span: Optional[Span] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, span))

    def note(self, message: str, span: Optional[Span] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.NOTE, message, span))

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def check(self) -> None:
        """Raise :class:`CompileError` if any errors were recorded."""
        if self.has_errors:
            raise CompileError(self.errors, self.source)
