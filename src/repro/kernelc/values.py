"""Runtime value representation shared by the interpreter and compiler.

Scalars are plain Python ``int``/``float`` (converted to C semantics at
casts and stores).  Vectors are :class:`VecValue`.  Pointers are
:class:`~repro.kernelc.memory.Pointer`.
"""

from __future__ import annotations

from typing import List, Sequence

from .ctypes_ import ScalarType, VectorType, convert_scalar

_COMPONENT_LETTERS = {"x": 0, "y": 1, "z": 2, "w": 3}


class VecValue:
    """An OpenCL vector value: fixed width, typed elements."""

    __slots__ = ("element_type", "components")

    def __init__(self, element_type: ScalarType, components: Sequence):
        self.element_type = element_type
        self.components = [convert_scalar(c, element_type) for c in components]

    @property
    def width(self) -> int:
        return len(self.components)

    def ctype(self) -> VectorType:
        return VectorType(self.element_type, self.width)

    def map(self, func) -> "VecValue":
        return VecValue(self.element_type, [func(c) for c in self.components])

    def zip_with(self, other, func) -> "VecValue":
        if isinstance(other, VecValue):
            if other.width != self.width:
                raise ValueError("vector width mismatch")
            pairs = zip(self.components, other.components)
        else:
            pairs = ((c, other) for c in self.components)
        return VecValue(self.element_type, [func(a, b) for a, b in pairs])

    def __iter__(self):
        return iter(self.components)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, VecValue)
            and self.element_type == other.element_type
            and self.components == other.components
        )

    def __repr__(self) -> str:
        inner = ", ".join(repr(c) for c in self.components)
        return f"({self.element_type.name}{self.width})({inner})"


def component_indices(member: str, width: int) -> List[int]:
    """Decode a vector component selector into element indices.

    Supports ``.x/.y/.z/.w`` swizzles (``.xyz``, ``.wzyx`` ...), numeric
    selectors ``.s0``–``.sF``, and ``.lo``/``.hi``/``.even``/``.odd``.
    Raises ``ValueError`` for selectors invalid at this width.
    """
    if member in ("lo", "hi", "even", "odd"):
        if width % 2 != 0:
            raise ValueError(f"'.{member}' requires an even vector width, got {width}")
        if member == "lo":
            return list(range(0, width // 2))
        if member == "hi":
            return list(range(width // 2, width))
        if member == "even":
            return list(range(0, width, 2))
        return list(range(1, width, 2))
    if member.startswith("s") and len(member) > 1 and all(c in "0123456789abcdefABCDEF" for c in member[1:]):
        indices = [int(c, 16) for c in member[1:]]
    else:
        try:
            indices = [_COMPONENT_LETTERS[c] for c in member]
        except KeyError:
            raise ValueError(f"invalid vector component selector '.{member}'") from None
    for index in indices:
        if index >= width:
            raise ValueError(f"component selector '.{member}' out of range for width {width}")
    return indices
