"""Reference tree-walking interpreter for checked kernelc programs.

The interpreter executes one work-item at a time.  Statement execution is
generator-based so that ``barrier()`` can suspend a work-item: executing
a kernel yields ``('barrier', flags)`` events which the NDRange executor
uses to phase-synchronize a work-group.  Helper (non-kernel) functions
cannot barrier (enforced by the type checker) and run to completion.

This backend is the semantic reference; the compiled backend
(:mod:`repro.kernelc.compiler`) is differentially tested against it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from . import ast
from .builtins import ResolvedBuiltin
from .ctypes_ import (
    ArrayType,
    CType,
    PointerType,
    ScalarType,
    VectorType,
    convert_scalar,
    wrap_int,
)
from .execmodel import (
    ExecutionCounters,
    WorkItemContext,
    binary_value,
    compare_value,
    convert_value,
    copy_value,
    truthy,
)
from .memory import ArrayRef, KernelFault, Pointer, allocate
from .values import VecValue


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__()


class Machine:
    """Shared interpreter state for one kernel launch."""

    def __init__(self, program: ast.Program, counters: Optional[ExecutionCounters] = None):
        self.program = program
        self.counters = counters if counters is not None else ExecutionCounters()
        self.functions = {fn.name: fn for fn in program.functions}
        self.globals: Dict[str, object] = {}
        for global_decl in program.globals:
            self.globals[global_decl.decl.name] = self._materialize_global(global_decl.decl)

    def _materialize_global(self, decl: ast.VarDecl):
        ctype = decl.declared_type
        if isinstance(ctype, ArrayType):
            pointer = allocate(ctype.base_element(), ctype.flat_length(), "constant", self.counters.memory)
            if decl.init is not None:
                values = _flatten_initializer(decl.init)
                for i, value in enumerate(values):
                    pointer.array[i] = convert_scalar(value, ctype.base_element())
            return ArrayRef(pointer, ctype.element)
        if decl.init is None:
            raise KernelFault(f"__constant variable {decl.name!r} has no initializer")
        env = _Env()
        interp = Interpreter(self, WorkItemContext((0,), (0,), (0,), (1,), (1,)), {})
        value = interp.eval(decl.init, env)
        return convert_value(value, ctype)


def _flatten_initializer(init: ast.Expr) -> List:
    if isinstance(init, ast.VectorLiteral) and init.is_array_initializer:
        out: List = []
        for element in init.elements:
            out.extend(_flatten_initializer(element))
        return out
    if isinstance(init, ast.IntLiteral) or isinstance(init, ast.FloatLiteral):
        return [init.value]
    if isinstance(init, ast.UnaryOp) and init.op == "-":
        inner = _flatten_initializer(init.operand)
        return [-inner[0]]
    if isinstance(init, ast.CharLiteral):
        return [init.value]
    raise KernelFault("unsupported constant initializer element")


class _Env:
    """A stack of lexical scopes holding runtime variable values."""

    __slots__ = ("scopes",)

    def __init__(self):
        self.scopes: List[Dict[str, object]] = [{}]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, value) -> None:
        self.scopes[-1][name] = value

    def lookup(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise KeyError(name)

    def assign(self, name: str, value) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise KeyError(name)


class _LValue:
    """A resolved assignable location."""

    __slots__ = ("kind", "env", "name", "pointer", "index", "vec", "indices", "writeback")

    def __init__(self, kind, env=None, name=None, pointer=None, index=None, vec=None,
                 indices=None, writeback=None):
        self.kind = kind
        self.env = env
        self.name = name
        self.pointer = pointer
        self.index = index
        self.vec = vec
        self.indices = indices
        # For component stores through memory: the base lvalue to write
        # the mutated vector back into.
        self.writeback = writeback

    def load(self):
        if self.kind == "var":
            return self.env.lookup(self.name)
        if self.kind == "mem":
            return self.pointer.load(self.index)
        if self.kind == "vec":
            components = [self.vec.components[i] for i in self.indices]
            if len(components) == 1:
                return components[0]
            return VecValue(self.vec.element_type, components)
        raise AssertionError(self.kind)  # pragma: no cover

    def store(self, value) -> None:
        if self.kind == "var":
            self.env.assign(self.name, copy_value(value))
        elif self.kind == "mem":
            self.pointer.store(self.index, value)
        elif self.kind == "vec":
            if len(self.indices) == 1:
                self.vec.components[self.indices[0]] = convert_scalar(value, self.vec.element_type)
            else:
                if not isinstance(value, VecValue):
                    raise KernelFault("assigning a scalar to a multi-component swizzle")
                for target_index, component in zip(self.indices, value.components):
                    self.vec.components[target_index] = convert_scalar(component, self.vec.element_type)
            if self.writeback is not None:
                self.writeback.store(self.vec)
        else:  # pragma: no cover
            raise AssertionError(self.kind)


class Interpreter:
    """Evaluates expressions and executes statements for one work-item."""

    def __init__(self, machine: Machine, ctx: WorkItemContext, local_memory: Dict[int, ArrayRef]):
        self.machine = machine
        self.counters = machine.counters
        self.ctx = ctx
        # Maps id(VarDecl) of __local declarations to group-shared storage.
        self.local_memory = local_memory

    # -- driving -----------------------------------------------------------

    def run_kernel(self, kernel: ast.FunctionDef, args: Sequence):
        """A generator executing ``kernel``; yields at barriers."""
        env = _Env()
        self._bind_params(kernel, args, env)
        try:
            yield from self.exec_stmt(kernel.body, env, new_scope=False)
        except _ReturnSignal:
            pass

    def call_function(self, function: ast.FunctionDef, args: Sequence):
        env = _Env()
        self._bind_params(function, args, env)
        try:
            for _ in self.exec_stmt(function.body, env, new_scope=False):
                raise KernelFault("barrier() inside a helper function")  # pragma: no cover
        except _ReturnSignal as signal:
            return convert_value(signal.value, function.return_type)
        if function.return_type.is_void():
            return None
        raise KernelFault(f"function {function.name!r} finished without returning a value")

    def _bind_params(self, function: ast.FunctionDef, args: Sequence, env: _Env) -> None:
        if len(args) != len(function.params):
            raise KernelFault(
                f"{function.name}() called with {len(args)} argument(s), expected {len(function.params)}"
            )
        for param, arg in zip(function.params, args):
            value = arg.decayed() if isinstance(arg, ArrayRef) else arg
            env.declare(param.name, copy_value(convert_value(value, param.declared_type)))

    # -- statements ----------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, env: _Env, new_scope: bool = True):
        if isinstance(stmt, ast.CompoundStmt):
            if new_scope:
                env.push()
            try:
                for child in stmt.statements:
                    yield from self.exec_stmt(child, env)
            finally:
                if new_scope:
                    env.pop()
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._exec_decl(decl, env)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is None:
                return
            if isinstance(stmt.expr, ast.Call) and getattr(stmt.expr, "kind", "") == "builtin" \
                    and stmt.expr.resolved.kind == "barrier":
                flags = self.eval(stmt.expr.args[0], env)
                self.counters.barriers += 1
                yield ("barrier", flags)
                return
            self.eval(stmt.expr, env)
        elif isinstance(stmt, ast.IfStmt):
            self.counters.ops += 1
            if truthy(self.eval(stmt.condition, env)):
                yield from self.exec_stmt(stmt.then_branch, env)
            elif stmt.else_branch is not None:
                yield from self.exec_stmt(stmt.else_branch, env)
        elif isinstance(stmt, ast.ForStmt):
            yield from self._exec_for(stmt, env)
        elif isinstance(stmt, ast.WhileStmt):
            while True:
                self.counters.ops += 1
                if not truthy(self.eval(stmt.condition, env)):
                    break
                try:
                    yield from self.exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, ast.DoStmt):
            while True:
                try:
                    yield from self.exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                self.counters.ops += 1
                if not truthy(self.eval(stmt.condition, env)):
                    break
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.eval(stmt.value, env) if stmt.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(stmt, ast.BreakStmt):
            raise _BreakSignal()
        elif isinstance(stmt, ast.ContinueStmt):
            raise _ContinueSignal()
        elif isinstance(stmt, ast.SwitchStmt):
            yield from self._exec_switch(stmt, env)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _exec_for(self, stmt: ast.ForStmt, env: _Env):
        env.push()
        try:
            if stmt.init is not None:
                for _ in self.exec_stmt(stmt.init, env, new_scope=False):
                    pass  # pragma: no cover - init cannot barrier
            while True:
                if stmt.condition is not None:
                    self.counters.ops += 1
                    if not truthy(self.eval(stmt.condition, env)):
                        break
                try:
                    yield from self.exec_stmt(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.increment is not None:
                    self.eval(stmt.increment, env)
        finally:
            env.pop()

    def _exec_switch(self, stmt: ast.SwitchStmt, env: _Env):
        subject = self.eval(stmt.subject, env)
        self.counters.ops += 1
        matched = False
        try:
            for case in stmt.cases:
                if not matched:
                    if case.value is None:
                        continue
                    if self.eval(case.value, env) != subject:
                        continue
                    matched = True
                env.push()
                try:
                    for child in case.body:
                        yield from self.exec_stmt(child, env)
                finally:
                    env.pop()
            if not matched:
                # Re-scan for a default label (cases before it were skipped).
                running = False
                for case in stmt.cases:
                    if not running and case.value is not None:
                        continue
                    running = True
                    env.push()
                    try:
                        for child in case.body:
                            yield from self.exec_stmt(child, env)
                    finally:
                        env.pop()
        except _BreakSignal:
            pass

    def _exec_decl(self, decl: ast.VarDecl, env: _Env) -> None:
        ctype = decl.declared_type
        if decl.address_space == "local":
            storage = self.local_memory.get(id(decl))
            if storage is None:
                raise KernelFault(f"__local variable {decl.name!r} was not pre-allocated")
            env.declare(decl.name, storage)
            return
        if isinstance(ctype, ArrayType):
            pointer = allocate(ctype.base_element(), ctype.flat_length(), "private")
            if decl.init is not None:
                values = _flatten_initializer(decl.init)
                if len(values) > ctype.flat_length():
                    raise KernelFault(f"too many initializers for {ctype}")
                for i, value in enumerate(values):
                    pointer.array[i] = convert_scalar(value, ctype.base_element())
            env.declare(decl.name, ArrayRef(pointer, ctype.element))
            return
        if decl.init is not None:
            value = convert_value(self.eval(decl.init, env), ctype)
        else:
            value = _default_value(ctype)
        env.declare(decl.name, copy_value(value))

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: ast.Expr, env: _Env):
        method = getattr(self, f"_eval_{type(expr).__name__}")
        return method(expr, env)

    def eval_lvalue(self, expr: ast.Expr, env: _Env) -> _LValue:
        if isinstance(expr, ast.Identifier):
            return _LValue("var", env=env, name=expr.name)
        if isinstance(expr, ast.Index):
            base = self.eval(expr.base, env)
            index = self.eval(expr.index, env)
            self.counters.ops += 1
            if isinstance(base, ArrayRef):
                slot = base.index(index)
                if isinstance(slot, ArrayRef):
                    raise KernelFault("cannot assign to an array row")
                pointer, offset = slot
                return _LValue("mem", pointer=pointer, index=offset)
            if isinstance(base, Pointer):
                return _LValue("mem", pointer=base, index=int(index))
            raise KernelFault(f"cannot index value {base!r}")
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            pointer = self.eval(expr.operand, env)
            if isinstance(pointer, ArrayRef):
                pointer = pointer.decayed()
            if not isinstance(pointer, Pointer):
                raise KernelFault("dereferencing a non-pointer value")
            return _LValue("mem", pointer=pointer, index=0)
        if isinstance(expr, ast.Member):
            base_lvalue = self.eval_lvalue(expr.base, env)
            vec = base_lvalue.load()
            if not isinstance(vec, VecValue):
                raise KernelFault("component access on a non-vector value")
            if base_lvalue.kind == "var":
                # Mutate the live environment object directly.
                vec = base_lvalue.env.lookup(base_lvalue.name)
                return _LValue("vec", vec=vec, indices=expr.indices)
            # Through memory: load-modify-store the whole vector.
            return _LValue("vec", vec=vec, indices=expr.indices, writeback=base_lvalue)
        raise KernelFault(f"expression is not assignable: {type(expr).__name__}")

    def _eval_IntLiteral(self, expr: ast.IntLiteral, env: _Env):
        return wrap_int(expr.value, expr.ctype)

    def _eval_FloatLiteral(self, expr: ast.FloatLiteral, env: _Env):
        return convert_scalar(expr.value, expr.ctype)

    def _eval_CharLiteral(self, expr: ast.CharLiteral, env: _Env):
        return wrap_int(expr.value, expr.ctype)

    def _eval_Identifier(self, expr: ast.Identifier, env: _Env):
        constant = getattr(expr, "constant_value", None)
        if constant is not None:
            return convert_value(constant, expr.ctype)
        try:
            return env.lookup(expr.name)
        except KeyError:
            return self.machine.globals[expr.name]

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: _Env):
        op = expr.op
        if op in ("++", "--"):
            lvalue = self.eval_lvalue(expr.operand, env)
            self.counters.ops += 1
            value = lvalue.load()
            new_value = self._step(value, 1 if op == "++" else -1, expr.operand.ctype)
            lvalue.store(new_value)
            return new_value
        if op == "*":
            self.counters.ops += 1
            return self.eval_lvalue(expr, env).load()
        if op == "&":
            inner = expr.operand
            if isinstance(inner, ast.Index):
                base = self.eval(inner.base, env)
                index = int(self.eval(inner.index, env))
                if isinstance(base, ArrayRef):
                    slot = base.index(index)
                    if isinstance(slot, ArrayRef):
                        return slot.decayed()
                    pointer, offset = slot
                    return pointer.add(offset)
                if isinstance(base, Pointer):
                    return base.add(index)
                raise KernelFault("cannot take the address of this value")
            if isinstance(inner, ast.UnaryOp) and inner.op == "*":
                value = self.eval(inner.operand, env)
                return value.decayed() if isinstance(value, ArrayRef) else value
            raise KernelFault("taking the address of a plain variable is not supported")
        operand = self.eval(expr.operand, env)
        self.counters.ops += 1
        if op == "!":
            return int(not truthy(operand))
        if op == "~":
            if isinstance(operand, VecValue):
                element = operand.element_type
                return operand.map(lambda c: wrap_int(~c, element))
            ctype = expr.ctype
            return wrap_int(~int(operand), ctype)
        if op == "-":
            if isinstance(operand, VecValue):
                element = operand.element_type
                return operand.map(lambda c: convert_scalar(-c, element))
            return convert_value(-operand, expr.ctype)
        if op == "+":
            return convert_value(operand, expr.ctype)
        raise AssertionError(op)  # pragma: no cover

    def _step(self, value, delta: int, ctype: CType):
        if isinstance(value, Pointer):
            return value.add(delta)
        return convert_value(value + delta, ctype)

    def _eval_PostfixOp(self, expr: ast.PostfixOp, env: _Env):
        lvalue = self.eval_lvalue(expr.operand, env)
        self.counters.ops += 1
        value = lvalue.load()
        lvalue.store(self._step(value, 1 if expr.op == "++" else -1, expr.operand.ctype))
        return value

    def _eval_BinaryOp(self, expr: ast.BinaryOp, env: _Env):
        op = expr.op
        if op == "&&":
            self.counters.ops += 1
            if not truthy(self.eval(expr.left, env)):
                return 0
            return int(truthy(self.eval(expr.right, env)))
        if op == "||":
            self.counters.ops += 1
            if truthy(self.eval(expr.left, env)):
                return 1
            return int(truthy(self.eval(expr.right, env)))

        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        self.counters.ops += 1
        op_type = expr.op_type

        if isinstance(left, ArrayRef):
            left = left.decayed()
        if isinstance(right, ArrayRef):
            right = right.decayed()
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            return self._pointer_binary(op, left, right)
        if op in ("<", ">", "<=", ">=", "==", "!="):
            return compare_value(op, left, right, op_type)
        return binary_value(op, left, right, op_type)

    def _pointer_binary(self, op: str, left, right):
        if op == "+":
            pointer, offset = (left, right) if isinstance(left, Pointer) else (right, left)
            return pointer.add(int(offset))
        if op == "-":
            if isinstance(right, Pointer):
                return left.diff(right)
            return left.add(-int(right))
        if op in ("==", "!="):
            same = isinstance(left, Pointer) and isinstance(right, Pointer) \
                and left.array is right.array and left.offset == right.offset
            return int(same) if op == "==" else int(not same)
        if op in ("<", ">", "<=", ">="):
            from .execmodel import scalar_compare

            return scalar_compare(op, left.offset, right.offset)
        raise KernelFault(f"invalid pointer operation '{op}'")

    def _eval_Assignment(self, expr: ast.Assignment, env: _Env):
        lvalue = self.eval_lvalue(expr.target, env)
        value = self.eval(expr.value, env)
        self.counters.ops += 1
        if isinstance(value, ArrayRef):
            value = value.decayed()
        target_type = expr.target.ctype
        if expr.op != "=":
            op = expr.op[:-1]
            current = lvalue.load()
            if isinstance(current, Pointer):
                value = current.add(int(value) if op == "+" else -int(value))
            elif op in ("<", ">"):  # pragma: no cover - not a compound op
                raise AssertionError()
            else:
                try:
                    op_type = target_type if not isinstance(target_type, PointerType) else None
                    computation = _compound_type(target_type, expr.value.ctype)
                    value = binary_value(op, current, value, computation)
                except TypeError as exc:
                    raise KernelFault(str(exc)) from exc
        converted = convert_value(value, target_type) if not isinstance(value, Pointer) else value
        lvalue.store(converted)
        return copy_value(converted)

    def _eval_Conditional(self, expr: ast.Conditional, env: _Env):
        self.counters.ops += 1
        if truthy(self.eval(expr.condition, env)):
            value = self.eval(expr.then_expr, env)
        else:
            value = self.eval(expr.else_expr, env)
        if isinstance(value, (Pointer, ArrayRef)):
            return value.decayed() if isinstance(value, ArrayRef) else value
        return convert_value(value, expr.ctype)

    def _eval_Call(self, expr: ast.Call, env: _Env):
        if expr.kind == "user":
            args = [self.eval(arg, env) for arg in expr.args]
            self.counters.ops += 2  # call overhead
            return self.call_function(expr.callee_def, args)
        resolved: ResolvedBuiltin = expr.resolved
        self.counters.ops += resolved.cost
        if resolved.kind == "workitem":
            args = [int(self.eval(arg, env)) for arg in expr.args]
            return self.ctx.query(resolved.name, *args)
        if resolved.kind == "barrier":
            raise KernelFault("barrier() must be a standalone statement")
        args = [self.eval(arg, env) for arg in expr.args]
        if resolved.name in ("mem_fence", "read_mem_fence", "write_mem_fence"):
            return None
        return apply_builtin(resolved, args)

    def _eval_Index(self, expr: ast.Index, env: _Env):
        base = self.eval(expr.base, env)
        index = self.eval(expr.index, env)
        self.counters.ops += 1
        if isinstance(base, ArrayRef):
            slot = base.index(int(index))
            if isinstance(slot, ArrayRef):
                return slot
            pointer, offset = slot
            return pointer.load(offset)
        if isinstance(base, Pointer):
            return base.load(int(index))
        raise KernelFault(f"cannot index value of type {type(base).__name__}")

    def _eval_Member(self, expr: ast.Member, env: _Env):
        base = self.eval(expr.base, env)
        if not isinstance(base, VecValue):
            raise KernelFault("component access on a non-vector value")
        components = [base.components[i] for i in expr.indices]
        if len(components) == 1:
            return components[0]
        return VecValue(base.element_type, components)

    def _eval_Cast(self, expr: ast.Cast, env: _Env):
        value = self.eval(expr.operand, env)
        self.counters.ops += 1
        if isinstance(value, ArrayRef):
            value = value.decayed()
        if isinstance(value, Pointer) and isinstance(expr.target_type, PointerType):
            return value.retyped(expr.target_type.pointee)
        return convert_value(value, expr.ctype)

    def _eval_VectorLiteral(self, expr: ast.VectorLiteral, env: _Env):
        target: VectorType = expr.target_type
        components: List = []
        for element in expr.elements:
            value = self.eval(element, env)
            if isinstance(value, VecValue):
                components.extend(value.components)
            else:
                components.append(value)
        self.counters.ops += 1
        if len(components) == 1 and target.width > 1:
            components = components * target.width
        return VecValue(target.element, components)

    def _eval_SizeofExpr(self, expr: ast.SizeofExpr, env: _Env):
        if expr.queried_type is not None:
            return expr.queried_type.sizeof()
        return expr.operand.ctype.sizeof()

    def _eval_CommaExpr(self, expr: ast.CommaExpr, env: _Env):
        result = None
        for part in expr.parts:
            result = self.eval(part, env)
        return result


def _compound_type(target_type: CType, value_type: CType) -> CType:
    """The computation type of ``a op= b``: C computes in the common type
    then converts back; we compute directly in the target type, except
    when the value is a float and the target an integer, where the
    common float type is needed for correct truncation."""
    from .ctypes_ import common_type

    if isinstance(target_type, (ScalarType, VectorType)):
        target_element = target_type.element if isinstance(target_type, VectorType) else target_type
        value_element = value_type.element if isinstance(value_type, VectorType) else value_type
        if isinstance(value_element, ScalarType) and value_element.is_float() and target_element.is_integer():
            return common_type(target_type, value_type)
    return target_type


def apply_builtin(resolved: ResolvedBuiltin, args: Sequence):
    """Apply a resolved builtin to runtime argument values."""
    converted = [convert_value(arg, param) for arg, param in zip(args, resolved.param_types)]
    if resolved.kind == "whole":
        if resolved.name == "select":
            a, b, c = converted
            if isinstance(c, VecValue):
                a_components = a.components if isinstance(a, VecValue) else [a] * c.width
                b_components = b.components if isinstance(b, VecValue) else [b] * c.width
                element = a.element_type if isinstance(a, VecValue) else resolved.result_type.element
                out = [bc if cc else ac for ac, bc, cc in zip(a_components, b_components, c.components)]
                return VecValue(element, out)
            return b if c else a
        result = resolved.impl(*converted)
    elif isinstance(resolved.result_type, VectorType) and any(isinstance(a, VecValue) for a in converted):
        width = resolved.result_type.width
        lanes = []
        for arg in converted:
            lanes.append(arg.components if isinstance(arg, VecValue) else [arg] * width)
        element = resolved.result_type.element
        return VecValue(element, [resolved.impl(*lane_args) for lane_args in zip(*lanes)])
    else:
        result = resolved.impl(*converted)
    return convert_value(result, resolved.result_type)


def _default_value(ctype: CType):
    if isinstance(ctype, VectorType):
        return VecValue(ctype.element, [0] * ctype.width)
    if isinstance(ctype, PointerType):
        return NULL_POINTER
    if isinstance(ctype, ScalarType):
        return 0.0 if ctype.is_float() else 0
    raise KernelFault(f"cannot default-initialize {ctype}")


class _NullPointer:
    def __getattr__(self, name):
        raise KernelFault("use of an uninitialized (null) pointer")

    def __repr__(self) -> str:
        return "<null pointer>"


NULL_POINTER = _NullPointer()


def collect_local_decls(function: ast.FunctionDef) -> List[ast.VarDecl]:
    """All ``__local`` variable declarations in a kernel body."""
    result: List[ast.VarDecl] = []
    for node in ast.walk(function.body):
        if isinstance(node, ast.VarDecl) and node.address_space == "local":
            result.append(node)
    return result


def allocate_local_memory(function: ast.FunctionDef, counters: Optional[ExecutionCounters] = None) -> Dict[int, ArrayRef]:
    """Allocate group-shared storage for a kernel's ``__local`` variables."""
    memory_counters = counters.memory if counters is not None else None
    storage: Dict[int, ArrayRef] = {}
    for decl in collect_local_decls(function):
        ctype = decl.declared_type
        if isinstance(ctype, ArrayType):
            pointer = allocate(ctype.base_element(), ctype.flat_length(), "local", memory_counters)
            storage[id(decl)] = ArrayRef(pointer, ctype.element)
        else:
            pointer = allocate(ctype, 1, "local", memory_counters)
            storage[id(decl)] = ArrayRef(pointer, ctype)
    return storage


def local_memory_bytes(function: ast.FunctionDef) -> int:
    """Total __local bytes a kernel declares (for occupancy modeling)."""
    return sum(decl.declared_type.sizeof() for decl in collect_local_decls(function))
