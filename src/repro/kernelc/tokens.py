"""Token definitions for the OpenCL-C subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from .source import Span


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    INT_LITERAL = "integer literal"
    FLOAT_LITERAL = "float literal"
    CHAR_LITERAL = "character literal"
    STRING_LITERAL = "string literal"
    PUNCT = "punctuator"
    EOF = "end of input"


# Keywords of the supported OpenCL-C subset.  Address-space and access
# qualifiers are keywords both with and without the leading underscores,
# as in OpenCL 1.x.
KEYWORDS = frozenset(
    [
        "void",
        "bool",
        "char",
        "uchar",
        "short",
        "ushort",
        "int",
        "uint",
        "long",
        "ulong",
        "float",
        "double",
        "half",
        "size_t",
        "ptrdiff_t",
        "signed",
        "unsigned",
        "const",
        "volatile",
        "restrict",
        "struct",
        "typedef",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "switch",
        "case",
        "default",
        "goto",
        "sizeof",
        "true",
        "false",
        "__kernel",
        "kernel",
        "__global",
        "global",
        "__local",
        "local",
        "__constant",
        "constant",
        "__private",
        "private",
        "__attribute__",
        "inline",
        "static",
    ]
)

# Vector type names: base type x width for widths 2, 3, 4, 8, 16.
VECTOR_BASE_TYPES = ("char", "uchar", "short", "ushort", "int", "uint", "long", "ulong", "float", "double")
VECTOR_WIDTHS = (2, 3, 4, 8, 16)
VECTOR_TYPE_NAMES = frozenset(f"{base}{width}" for base in VECTOR_BASE_TYPES for width in VECTOR_WIDTHS)

# All multi-character punctuators, longest first so the lexer can use
# maximal munch by checking prefixes in order.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    ".",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "&",
    "|",
    "^",
    "~",
    "!",
    "?",
    ":",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span
    # Decoded value for literals: int for INT/CHAR, float for FLOAT,
    # str for STRING.  ``suffix`` keeps literal suffixes (u, f, l, ...)
    # so the parser can type the literal.
    value: Optional[Union[int, float, str]] = None
    suffix: str = ""

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *names: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in names

    def is_ident(self, *names: str) -> bool:
        if self.kind is not TokenKind.IDENT:
            return False
        return not names or self.text in names

    def __str__(self) -> str:
        if self.kind is TokenKind.EOF:
            return "<eof>"
        return self.text
