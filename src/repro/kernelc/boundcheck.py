"""Static bounds checking for MapOverlap customizing functions.

The paper (§3.4): *"In future work, we plan to avoid boundary checks at
runtime by statically proving that all memory accesses are in bounds,
as it is the case in the shown example."*  This module implements that
plan: a conservative interval analysis over the (unchecked) AST of a
customizing function that tries to prove every ``get(m, dx[, dy])``
offset lies within ``[-d, +d]``.

The analysis is a small abstract interpretation:

* integer variables are tracked as intervals ``[lo, hi]`` (or ⊤);
* simple counting loops (``for (int i = A; i <= B; ++i)`` and the
  ``<``/``+=`` variants with constant bounds) bind the induction
  variable to its iteration interval;
* both branches of an ``if`` are joined;
* anything else (unknown assignments, general loops) conservatively
  widens the affected variables to ⊤.

The proof is sound but incomplete: a success means the generated
``get`` accessor can skip its runtime range check (the MapOverlap
codegen then inlines it as a bare tile access); a failure keeps the
checked path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import ast

_UNBOUNDED = (float("-inf"), float("inf"))


@dataclass(frozen=True)
class Interval:
    lo: float
    hi: float

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(*_UNBOUNDED)

    @property
    def is_top(self) -> bool:
        return self.lo == float("-inf") or self.hi == float("inf")

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.is_top or other.is_top:
            # inf*0 would be NaN; stay conservative.
            return Interval.top()
        corners = [self.lo * other.lo, self.lo * other.hi, self.hi * other.lo, self.hi * other.hi]
        return Interval(min(corners), max(corners))

    def within(self, lo: int, hi: int) -> bool:
        return lo <= self.lo and self.hi <= hi


class _Env:
    def __init__(self, parent: Optional[Dict[str, Interval]] = None):
        self.values: Dict[str, Interval] = dict(parent) if parent else {}

    def copy(self) -> "_Env":
        return _Env(self.values)

    def join(self, other: "_Env") -> "_Env":
        joined = _Env()
        for name in set(self.values) | set(other.values):
            a = self.values.get(name, Interval.top())
            b = other.values.get(name, Interval.top())
            joined.values[name] = a.join(b)
        return joined


@dataclass
class BoundsProof:
    """The result of the analysis."""

    proven: bool
    accesses: List[Tuple[Interval, ...]]
    reason: str = ""


class _Analyzer:
    """Walks the customizing function, collecting get() offset intervals.

    When ``pointer_name`` is set, *direct* accesses through that pointer
    parameter (``v[i]``, ``*v``, ``*(v + i)``) are collected too — a
    customizing function is free to bypass the accessor, and a proof
    that ignored those accesses could not justify shrinking the staged
    halo."""

    def __init__(self, accessor_name: str = "get",
                 pointer_name: Optional[str] = None):
        self.accessor_name = accessor_name
        self.pointer_name = pointer_name
        self.accesses: List[Tuple[Interval, ...]] = []
        # Identifier nodes (by id) consumed by a recognized access
        # pattern; any *other* occurrence of the tracked pointer —
        # copied into a local, passed to a helper, address arithmetic
        # we don't model — escapes the analysis and poisons the proof.
        self._sanctioned: set = set()
        self.pointer_escaped = False

    # -- expression intervals ----------------------------------------------

    def eval(self, expr: ast.Expr, env: _Env) -> Interval:
        if isinstance(expr, ast.IntLiteral):
            return Interval.const(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return Interval.const(expr.value)
        if isinstance(expr, ast.Identifier):
            return env.values.get(expr.name, Interval.top())
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                return -self.eval(expr.operand, env)
            if expr.op == "+":
                return self.eval(expr.operand, env)
            return Interval.top()
        if isinstance(expr, ast.BinaryOp):
            left = self.eval(expr.left, env)
            right = self.eval(expr.right, env)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            return Interval.top()
        if isinstance(expr, ast.Conditional):
            return self.eval(expr.then_expr, env).join(self.eval(expr.else_expr, env))
        if isinstance(expr, ast.Cast):
            return self.eval(expr.operand, env)
        return Interval.top()

    # -- collecting get() accesses everywhere in an expression ----------------

    def scan_expr(self, expr: Optional[ast.Expr], env: _Env) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            self.visit_expr(node, env)

    def visit_expr(self, node: ast.Expr, env: _Env) -> None:
        """Hook called once per expression node with the interval
        environment of its program point.  The base analyzer collects
        accessor-call offsets; subclasses (the lint pass's out-of-bounds
        rule) override it to inspect other node kinds with the same
        flow-sensitive intervals."""
        if isinstance(node, ast.Call) and node.callee == self.accessor_name:
            if node.args:
                self._sanction(node.args[0])
            offsets = tuple(self.eval(arg, env) for arg in node.args[1:])
            self.accesses.append(offsets)
        elif self.pointer_name is not None:
            offset = self._direct_pointer_offset(node, env)
            if offset is not None:
                self.accesses.append((offset,))
            elif (isinstance(node, ast.Identifier)
                    and node.name == self.pointer_name
                    and id(node) not in self._sanctioned):
                # The walk is pre-order, so a recognized pattern
                # sanctions its identifier before the identifier itself
                # is visited; an unsanctioned occurrence means the
                # pointer is used in a way this analysis cannot see.
                self.pointer_escaped = True

    def _sanction(self, node: ast.Expr) -> None:
        while isinstance(node, ast.Cast):
            node = node.operand
        if isinstance(node, ast.Identifier):
            self._sanctioned.add(id(node))

    def _direct_pointer_offset(self, node: ast.Expr,
                               env: _Env) -> Optional[Interval]:
        """Offset interval of a direct access through the tracked
        pointer parameter, or ``None`` when ``node`` is not one."""
        name = self.pointer_name
        if (isinstance(node, ast.Index)
                and isinstance(node.base, ast.Identifier)
                and node.base.name == name):
            self._sanctioned.add(id(node.base))
            return self.eval(node.index, env)
        if isinstance(node, ast.UnaryOp) and node.op == "*":
            target = node.operand
            while isinstance(target, ast.Cast):
                target = target.operand
            if isinstance(target, ast.Identifier) and target.name == name:
                self._sanctioned.add(id(target))
                return Interval.const(0)
            if (isinstance(target, ast.BinaryOp) and target.op in ("+", "-")
                    and isinstance(target.left, ast.Identifier)
                    and target.left.name == name):
                delta = self.eval(target.right, env)
                self._sanctioned.add(id(target.left))
                return -delta if target.op == "-" else delta
        return None

    # -- statements ------------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, env: _Env) -> _Env:
        if isinstance(stmt, ast.CompoundStmt):
            for child in stmt.statements:
                env = self.exec_stmt(child, env)
            return env
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self.scan_expr(decl.init, env)
                    env.values[decl.name] = self.eval(decl.init, env)
                else:
                    env.values[decl.name] = Interval.top()
            return env
        if isinstance(stmt, ast.ExprStmt):
            self.scan_expr(stmt.expr, env)
            return self._apply_assignments(stmt.expr, env)
        if isinstance(stmt, ast.IfStmt):
            self.scan_expr(stmt.condition, env)
            then_env = self.exec_stmt(stmt.then_branch, env.copy())
            else_env = self.exec_stmt(stmt.else_branch, env.copy()) if stmt.else_branch else env.copy()
            return then_env.join(else_env)
        if isinstance(stmt, ast.ForStmt):
            return self._exec_for(stmt, env)
        if isinstance(stmt, (ast.WhileStmt, ast.DoStmt)):
            body = stmt.body
            self._havoc_assigned(body, env)
            self.scan_expr(stmt.condition, env)
            self.exec_stmt(body, env.copy())
            return env
        if isinstance(stmt, ast.ReturnStmt):
            self.scan_expr(stmt.value, env)
            return env
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            return env
        if isinstance(stmt, ast.SwitchStmt):
            self.scan_expr(stmt.subject, env)
            joined = env.copy()
            for case in stmt.cases:
                case_env = env.copy()
                for child in case.body:
                    case_env = self.exec_stmt(child, case_env)
                joined = joined.join(case_env)
            return joined
        return env  # pragma: no cover

    def _apply_assignments(self, expr: Optional[ast.Expr], env: _Env) -> _Env:
        if expr is None:
            return env
        for node in ast.walk(expr):
            if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
                if node.op == "=":
                    env.values[node.target.name] = self.eval(node.value, env)
                else:
                    env.values[node.target.name] = Interval.top()
            elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and getattr(node, "op", "") in ("++", "--"):
                operand = node.operand
                if isinstance(operand, ast.Identifier):
                    env.values[operand.name] = Interval.top()
        return env

    def _havoc_assigned(self, stmt: ast.Stmt, env: _Env) -> None:
        """Widen every variable the statement may modify to ⊤."""
        for node in ast.walk(stmt):
            target = None
            if isinstance(node, ast.Assignment) and isinstance(node.target, ast.Identifier):
                target = node.target.name
            elif isinstance(node, (ast.UnaryOp, ast.PostfixOp)) and getattr(node, "op", "") in ("++", "--"):
                if isinstance(node.operand, ast.Identifier):
                    target = node.operand.name
            if target is not None:
                env.values[target] = Interval.top()

    def _exec_for(self, stmt: ast.ForStmt, env: _Env) -> _Env:
        induction = self._match_counting_loop(stmt, env)
        body_env = env.copy()
        if induction is not None:
            name, interval = induction
            body_env.values[name] = interval
            # Widen everything else the body modifies.
            saved = body_env.values.get(name)
            self._havoc_assigned(stmt.body, body_env)
            body_env.values[name] = saved
        else:
            if stmt.init is not None:
                body_env = self.exec_stmt(stmt.init, body_env)
            self._havoc_assigned(stmt.body, body_env)
            if stmt.increment is not None:
                self._havoc_assigned(ast.ExprStmt(stmt.increment, stmt.span), body_env)
        self.scan_expr(stmt.condition, body_env)
        self.exec_stmt(stmt.body, body_env)
        if stmt.increment is not None:
            self.scan_expr(stmt.increment, body_env)
        # After the loop, the induction variable is out of scope (it was
        # declared in the init) or unknown.
        return env

    def _match_counting_loop(self, stmt: ast.ForStmt, env: _Env) -> Optional[Tuple[str, Interval]]:
        """Match ``for (int i = A; i </<= B; ++i / i += c)`` patterns."""
        if not isinstance(stmt.init, ast.DeclStmt) or len(stmt.init.decls) != 1:
            return None
        decl = stmt.init.decls[0]
        if decl.init is None:
            return None
        start = self.eval(decl.init, env)
        if start.is_top:
            return None
        name = decl.name

        condition = stmt.condition
        if not isinstance(condition, ast.BinaryOp) or condition.op not in ("<", "<="):
            return None
        if not (isinstance(condition.left, ast.Identifier) and condition.left.name == name):
            return None
        bound = self.eval(condition.right, env)
        if bound.is_top:
            return None
        upper = bound.hi if condition.op == "<=" else bound.hi - 1

        increment = stmt.increment
        ascending = False
        if isinstance(increment, (ast.UnaryOp, ast.PostfixOp)) and increment.op == "++":
            operand = increment.operand
            ascending = isinstance(operand, ast.Identifier) and operand.name == name
        elif isinstance(increment, ast.Assignment) and increment.op == "+=":
            if isinstance(increment.target, ast.Identifier) and increment.target.name == name:
                step = self.eval(increment.value, env)
                ascending = not step.is_top and step.lo >= 1
        if not ascending:
            return None
        return name, Interval(start.lo, max(start.lo, upper))


# Public names for reuse outside MapOverlap codegen (the lint pass and
# the interval-lattice property tests build on the same engine).
IntervalAnalyzer = _Analyzer
IntervalEnv = _Env


def analyze_get_bounds(function: ast.FunctionDef, overlap: int,
                       accessor_name: str = "get") -> BoundsProof:
    """Try to prove all neighbourhood accesses of ``function`` — ``get``
    offsets plus direct indexing through the pointer parameter — lie in
    [-d, d]."""
    from .ctypes_ import PointerType

    pointer_name = None
    if function.params and isinstance(function.params[0].declared_type, PointerType):
        pointer_name = function.params[0].name
    analyzer = _Analyzer(accessor_name, pointer_name)
    env = _Env()
    if function.body is not None:
        analyzer.exec_stmt(function.body, env)
    if analyzer.pointer_escaped:
        # The pointer was copied, passed to a helper, or otherwise used
        # outside the recognized access patterns; accesses through the
        # alias are invisible, so the proof cannot justify eliding
        # checks or shrinking the staged halo.
        return BoundsProof(
            False,
            analyzer.accesses,
            f"pointer parameter {pointer_name!r} escapes the tracked "
            f"access patterns",
        )
    if not analyzer.accesses:
        return BoundsProof(True, [], "no get() accesses")
    for offsets in analyzer.accesses:
        for interval in offsets:
            if not interval.within(-overlap, overlap):
                return BoundsProof(
                    False,
                    analyzer.accesses,
                    f"offset interval [{interval.lo}, {interval.hi}] may exceed ±{overlap}",
                )
    return BoundsProof(True, analyzer.accesses, "all offsets within range")
