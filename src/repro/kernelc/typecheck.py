"""Semantic analysis for the OpenCL-C subset.

The checker walks each function, maintains lexical scopes, assigns every
expression node a ``ctype`` and ``is_lvalue`` flag, resolves calls
(builtin or user) and enforces the C/OpenCL typing rules the backends
rely on:

* usual arithmetic conversions, integer promotions,
* pointer arithmetic (``p + i``, ``p - p``, ``p[i]``, ``*p``, ``&x``),
* vector component access and swizzles,
* assignment/lvalue/const rules,
* kernel rules (void return, pointer params must name an address space),
* ``barrier()`` only in kernel function bodies (the execution model
  synchronizes at kernel top-level statements).

Annotations added to nodes (consumed by the backends):

* ``Expr.ctype``, ``Expr.is_lvalue``
* ``BinaryOp.op_type`` — the computation type of the operation
* ``Call.kind`` (``'builtin'``/``'user'``), ``Call.resolved``
  (:class:`ResolvedBuiltin`) or ``Call.callee_def`` (FunctionDef)
* ``Identifier.symbol`` or ``Identifier.constant_value``
* ``Member.indices`` — decoded vector component indices
* ``Program.uses_barrier``, ``FunctionDef.uses_barrier``
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast
from .builtins import BUILTIN_CONSTANTS, BuiltinError, resolve_builtin
from .ctypes_ import (
    ArrayType,
    CHAR,
    CType,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PointerType,
    ScalarType,
    UINT,
    VOID,
    VectorType,
    common_type,
    integer_promote,
)
from .diagnostics import DiagnosticSink
from .source import SourceFile
from .symbols import Scope, Symbol
from .values import component_indices

_INT_ONLY_OPS = frozenset(["%", "<<", ">>", "&", "|", "^"])
_COMPARISON_OPS = frozenset(["<", ">", "<=", ">=", "==", "!="])
_LOGICAL_OPS = frozenset(["&&", "||"])


class TypeChecker:
    def __init__(self, program: ast.Program, source: Optional[SourceFile] = None,
                 sink: Optional[DiagnosticSink] = None):
        self.program = program
        self.sink = sink if sink is not None else DiagnosticSink(source)
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.globals_scope = Scope()
        self.current_function: Optional[ast.FunctionDef] = None
        self.loop_depth = 0
        self.switch_depth = 0

    # -- driver ------------------------------------------------------------

    def check(self) -> ast.Program:
        self._collect_signatures()
        for global_decl in self.program.globals:
            self._check_global(global_decl)
        for function in self.program.functions:
            self._check_function(function)
        self.program.uses_barrier = any(
            getattr(fn, "uses_barrier", False) for fn in self.program.functions
        )
        self.sink.check()
        return self.program

    def _collect_signatures(self) -> None:
        for function in list(self.program.functions) + list(self.program.prototypes):
            existing = self.functions.get(function.name)
            if existing is not None and existing.body is not None and function.body is not None:
                self.sink.error(f"redefinition of function {function.name!r}", function.span)
                continue
            if existing is None or function.body is not None:
                self.functions[function.name] = function
            if resolve_is_builtin(function.name):
                self.sink.error(
                    f"function {function.name!r} shadows an OpenCL builtin", function.span
                )

    def _check_global(self, global_decl: ast.GlobalDecl) -> None:
        decl = global_decl.decl
        if decl.init is not None:
            self._check_initializer(decl)
        symbol = Symbol(decl.name, decl.declared_type, "global", "constant", True)
        if not self.globals_scope.declare(symbol):
            self.sink.error(f"redefinition of global {decl.name!r}", decl.span)

    # -- functions -----------------------------------------------------------

    def _check_function(self, function: ast.FunctionDef) -> None:
        self.current_function = function
        function.uses_barrier = False
        scope = self.globals_scope.child()

        if function.is_kernel and not function.return_type.is_void():
            self.sink.error("a __kernel function must return void", function.span)

        seen: set = set()
        for param in function.params:
            if not param.name:
                self.sink.error("unnamed function parameter", param.span)
                continue
            if param.name in seen:
                self.sink.error(f"duplicate parameter name {param.name!r}", param.span)
            seen.add(param.name)
            ctype = param.declared_type
            if function.is_kernel and isinstance(ctype, PointerType) and ctype.address_space == "private":
                self.sink.error(
                    f"kernel pointer parameter {param.name!r} must be __global, __local or __constant",
                    param.span,
                )
            space = ctype.address_space if isinstance(ctype, PointerType) else "private"
            scope.declare(Symbol(param.name, ctype, "param", space, isinstance(ctype, PointerType) and ctype.is_const))

        if function.body is not None:
            self._check_compound(function.body, scope, new_scope=False)
        self.current_function = None

    # -- statements ----------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self._check_compound(stmt, scope)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._check_decl(decl, scope)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                if isinstance(stmt.expr, ast.Call) and stmt.expr.callee == "barrier":
                    # Mark before checking: barrier() resolution verifies
                    # it appears as a standalone statement.
                    stmt.expr.at_statement_level = True
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._check_condition(stmt.condition, scope)
            self._check_stmt(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._check_stmt(stmt.else_branch, scope)
        elif isinstance(stmt, ast.ForStmt):
            inner = scope.child()
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.condition is not None:
                self._check_condition(stmt.condition, inner)
            if stmt.increment is not None:
                self._check_expr(stmt.increment, inner)
            self.loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.WhileStmt):
            self._check_condition(stmt.condition, scope)
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoStmt):
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._check_condition(stmt.condition, scope)
        elif isinstance(stmt, ast.ReturnStmt):
            self._check_return(stmt, scope)
        elif isinstance(stmt, ast.BreakStmt):
            if self.loop_depth == 0 and self.switch_depth == 0:
                self.sink.error("'break' outside of a loop or switch", stmt.span)
        elif isinstance(stmt, ast.ContinueStmt):
            if self.loop_depth == 0:
                self.sink.error("'continue' outside of a loop", stmt.span)
        elif isinstance(stmt, ast.SwitchStmt):
            self._check_switch(stmt, scope)
        else:  # pragma: no cover
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    def _check_compound(self, stmt: ast.CompoundStmt, scope: Scope, new_scope: bool = True) -> None:
        inner = scope.child() if new_scope else scope
        for child in stmt.statements:
            self._check_stmt(child, inner)

    def _check_decl(self, decl: ast.VarDecl, scope: Scope) -> None:
        ctype = decl.declared_type
        if ctype.is_void():
            self.sink.error(f"variable {decl.name!r} has void type", decl.span)
            return
        if isinstance(ctype, ArrayType) and decl.address_space not in ("private", "local", "constant"):
            self.sink.error("arrays may live in __private, __local or __constant memory", decl.span)
        if decl.address_space == "local" and (self.current_function is None or not self.current_function.is_kernel):
            self.sink.error("__local variables may only be declared in kernel functions", decl.span)
        if decl.init is not None:
            if decl.address_space == "local":
                self.sink.error("__local variables cannot have initializers", decl.span)
            self._check_initializer(decl, scope)
        if not scope.declare(Symbol(decl.name, ctype, "var", decl.address_space, decl.is_const)):
            self.sink.error(f"redeclaration of {decl.name!r}", decl.span)

    def _check_initializer(self, decl: ast.VarDecl, scope: Optional[Scope] = None) -> None:
        scope = scope if scope is not None else self.globals_scope
        init = decl.init
        ctype = decl.declared_type
        if isinstance(init, ast.VectorLiteral) and init.is_array_initializer:
            if not isinstance(ctype, ArrayType):
                self.sink.error("brace initializer requires an array type", init.span)
                return
            self._check_array_initializer(init, ctype, scope)
            init.ctype = ctype
            return
        init_type = self._check_expr(init, scope)
        if init_type is None:
            return
        if not self._convertible(init_type, ctype):
            self.sink.error(f"cannot initialize {ctype} with a value of type {init_type}", init.span)

    def _check_array_initializer(self, init: ast.VectorLiteral, ctype: ArrayType, scope: Scope) -> None:
        if len(init.elements) > ctype.length:
            self.sink.error(
                f"too many initializers for {ctype} ({len(init.elements)} > {ctype.length})", init.span
            )
        for element in init.elements:
            if isinstance(element, ast.VectorLiteral) and element.is_array_initializer:
                if isinstance(ctype.element, ArrayType):
                    self._check_array_initializer(element, ctype.element, scope)
                    element.ctype = ctype.element
                else:
                    self.sink.error("nested brace initializer for a non-array element", element.span)
                continue
            element_type = self._check_expr(element, scope)
            target = ctype.element
            while isinstance(target, ArrayType):
                target = target.element
            if element_type is not None and not self._convertible(element_type, target):
                self.sink.error(f"cannot initialize {target} with {element_type}", element.span)

    def _check_return(self, stmt: ast.ReturnStmt, scope: Scope) -> None:
        function = self.current_function
        assert function is not None
        expected = function.return_type
        if stmt.value is None:
            if not expected.is_void():
                self.sink.error(f"non-void function {function.name!r} must return a value", stmt.span)
            return
        if expected.is_void():
            self.sink.error(f"void function {function.name!r} cannot return a value", stmt.span)
            return
        actual = self._check_expr(stmt.value, scope)
        if actual is not None and not self._convertible(actual, expected):
            self.sink.error(f"cannot return {actual} from a function returning {expected}", stmt.value.span)

    def _check_switch(self, stmt: ast.SwitchStmt, scope: Scope) -> None:
        subject_type = self._check_expr(stmt.subject, scope)
        if subject_type is not None and not (isinstance(subject_type, ScalarType) and subject_type.is_integer()):
            self.sink.error(f"switch subject must have integer type, got {subject_type}", stmt.subject.span)
        seen_default = False
        self.switch_depth += 1
        for case in stmt.cases:
            if case.value is None:
                if seen_default:
                    self.sink.error("duplicate 'default' label", case.span)
                seen_default = True
            else:
                value_type = self._check_expr(case.value, scope)
                if value_type is not None and not (isinstance(value_type, ScalarType) and value_type.is_integer()):
                    self.sink.error("case label must be an integer constant", case.span)
            inner = scope.child()
            for child in case.body:
                self._check_stmt(child, inner)
        self.switch_depth -= 1

    def _check_condition(self, expr: ast.Expr, scope: Scope) -> None:
        ctype = self._check_expr(expr, scope)
        if ctype is None:
            return
        if not (isinstance(ctype, ScalarType) and ctype.is_arithmetic()) and not ctype.is_pointer():
            self.sink.error(f"condition must have scalar type, got {ctype}", expr.span)

    # -- expressions ----------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: Scope) -> Optional[CType]:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:  # pragma: no cover
            raise AssertionError(f"unhandled expression {type(expr).__name__}")
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _decay(self, expr: ast.Expr) -> Optional[CType]:
        """Array-to-pointer decay for an already-checked expression."""
        ctype = expr.ctype
        if isinstance(ctype, ArrayType):
            symbol = getattr(expr, "symbol", None)
            space = symbol.address_space if symbol is not None else "private"
            return PointerType(ctype.element, space)
        return ctype

    def _expr_IntLiteral(self, expr: ast.IntLiteral, scope: Scope) -> CType:
        expr.is_lvalue = False
        if "u" in expr.suffix and "l" in expr.suffix:
            return SCALAR("ulong")
        if "l" in expr.suffix:
            return LONG
        if "u" in expr.suffix:
            return UINT
        if expr.value > 2147483647:
            return LONG
        return INT

    def _expr_FloatLiteral(self, expr: ast.FloatLiteral, scope: Scope) -> CType:
        expr.is_lvalue = False
        return FLOAT if expr.suffix == "f" else DOUBLE

    def _expr_CharLiteral(self, expr: ast.CharLiteral, scope: Scope) -> CType:
        expr.is_lvalue = False
        return CHAR

    def _expr_StringLiteral(self, expr: ast.StringLiteral, scope: Scope) -> Optional[CType]:
        self.sink.error("string literals are not supported in expressions", expr.span)
        return None

    def _expr_Identifier(self, expr: ast.Identifier, scope: Scope) -> Optional[CType]:
        symbol = scope.lookup(expr.name)
        if symbol is not None:
            expr.symbol = symbol
            expr.is_lvalue = not isinstance(symbol.ctype, ArrayType)
            return symbol.ctype
        if expr.name in BUILTIN_CONSTANTS:
            value = BUILTIN_CONSTANTS[expr.name]
            expr.constant_value = value
            expr.is_lvalue = False
            if isinstance(value, float):
                return FLOAT if expr.name.endswith("_F") or expr.name.startswith("FLT") or expr.name == "MAXFLOAT" else DOUBLE
            return UINT if expr.name.startswith("CLK_") else (LONG if abs(value) > 2147483647 else INT)
        self.sink.error(f"use of undeclared identifier {expr.name!r}", expr.span)
        return None

    def _expr_UnaryOp(self, expr: ast.UnaryOp, scope: Scope) -> Optional[CType]:
        operand_type = self._check_expr(expr.operand, scope)
        if operand_type is None:
            return None
        op = expr.op
        if op in ("++", "--"):
            return self._check_incdec(expr.operand, operand_type)
        if op == "*":
            decayed = self._decay(expr.operand)
            if not isinstance(decayed, PointerType):
                self.sink.error(f"cannot dereference non-pointer type {operand_type}", expr.span)
                return None
            expr.is_lvalue = True
            return decayed.pointee
        if op == "&":
            if not expr.operand.is_lvalue:
                self.sink.error("cannot take the address of an rvalue", expr.span)
                return None
            symbol = getattr(expr.operand, "symbol", None)
            space = symbol.address_space if symbol is not None else "private"
            if isinstance(expr.operand, (ast.Index, ast.UnaryOp)):
                base_ptr = self._pointer_base_type(expr.operand)
                if base_ptr is not None:
                    space = base_ptr.address_space
            return PointerType(operand_type, space)
        if op == "!":
            if not self._is_scalar_condition(operand_type):
                self.sink.error(f"invalid operand type {operand_type} to '!'", expr.span)
                return None
            return INT
        if op == "~":
            if isinstance(operand_type, VectorType) and operand_type.element.is_integer():
                return operand_type
            if not (isinstance(operand_type, ScalarType) and operand_type.is_integer()):
                self.sink.error(f"invalid operand type {operand_type} to '~'", expr.span)
                return None
            return integer_promote(operand_type)
        if op in ("+", "-"):
            if isinstance(operand_type, VectorType):
                return operand_type
            if not (isinstance(operand_type, ScalarType) and operand_type.is_arithmetic()):
                self.sink.error(f"invalid operand type {operand_type} to unary '{op}'", expr.span)
                return None
            return integer_promote(operand_type) if operand_type.is_integer() else operand_type
        raise AssertionError(f"unhandled unary operator {op}")  # pragma: no cover

    def _pointer_base_type(self, expr: ast.Expr) -> Optional[PointerType]:
        """The pointer type an lvalue was formed through, if any."""
        if isinstance(expr, ast.Index):
            base = self._decay(expr.base)
            return base if isinstance(base, PointerType) else None
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            decayed = self._decay(expr.operand)
            return decayed if isinstance(decayed, PointerType) else None
        return None

    def _check_incdec(self, operand: ast.Expr, operand_type: CType) -> Optional[CType]:
        if not operand.is_lvalue:
            self.sink.error("operand of '++'/'--' must be an lvalue", operand.span)
            return None
        if isinstance(operand_type, PointerType):
            return operand_type
        if isinstance(operand_type, ScalarType) and operand_type.is_arithmetic():
            return operand_type
        self.sink.error(f"invalid operand type {operand_type} to '++'/'--'", operand.span)
        return None

    def _expr_PostfixOp(self, expr: ast.PostfixOp, scope: Scope) -> Optional[CType]:
        operand_type = self._check_expr(expr.operand, scope)
        if operand_type is None:
            return None
        return self._check_incdec(expr.operand, operand_type)

    def _is_scalar_condition(self, ctype: CType) -> bool:
        return (isinstance(ctype, ScalarType) and ctype.is_arithmetic()) or ctype.is_pointer()

    def _expr_BinaryOp(self, expr: ast.BinaryOp, scope: Scope) -> Optional[CType]:
        left_type = self._check_expr(expr.left, scope)
        right_type = self._check_expr(expr.right, scope)
        if left_type is None or right_type is None:
            return None
        left_type = self._decay(expr.left)
        right_type = self._decay(expr.right)
        op = expr.op

        if op in _LOGICAL_OPS:
            for side, ctype in ((expr.left, left_type), (expr.right, right_type)):
                if not self._is_scalar_condition(ctype):
                    self.sink.error(f"invalid operand type {ctype} to '{op}'", side.span)
                    return None
            expr.op_type = INT
            return INT

        # Pointer arithmetic.
        if isinstance(left_type, PointerType) or isinstance(right_type, PointerType):
            return self._check_pointer_binary(expr, left_type, right_type)

        if op in _COMPARISON_OPS:
            try:
                operand_common = common_type(left_type, right_type)
            except TypeError as exc:
                self.sink.error(str(exc), expr.span)
                return None
            expr.op_type = operand_common
            if isinstance(operand_common, VectorType):
                # OpenCL: vector comparisons yield a signed integer vector.
                return VectorType(INT if operand_common.element.sizeof() <= 4 else LONG, operand_common.width)
            return INT

        if op in _INT_ONLY_OPS:
            for side, ctype in ((expr.left, left_type), (expr.right, right_type)):
                element = ctype.element if isinstance(ctype, VectorType) else ctype
                if not (isinstance(element, ScalarType) and element.is_integer()):
                    self.sink.error(f"invalid operand type {ctype} to '{op}'", side.span)
                    return None
            if op in ("<<", ">>") and not isinstance(left_type, VectorType):
                result = integer_promote(left_type)
                expr.op_type = result
                return result

        try:
            result = common_type(left_type, right_type)
        except TypeError as exc:
            self.sink.error(str(exc), expr.span)
            return None
        expr.op_type = result
        return result

    def _check_pointer_binary(self, expr: ast.BinaryOp, left_type: CType, right_type: CType) -> Optional[CType]:
        op = expr.op
        left_ptr = isinstance(left_type, PointerType)
        right_ptr = isinstance(right_type, PointerType)
        if op in _COMPARISON_OPS:
            if left_ptr and right_ptr:
                expr.op_type = left_type
                return INT
            self.sink.error("comparison between pointer and non-pointer", expr.span)
            return None
        if op == "-" and left_ptr and right_ptr:
            expr.op_type = left_type
            return LONG
        if op == "+" and left_ptr != right_ptr:
            pointer = left_type if left_ptr else right_type
            other = right_type if left_ptr else left_type
            if isinstance(other, ScalarType) and other.is_integer():
                expr.op_type = pointer
                return pointer
        if op == "-" and left_ptr and isinstance(right_type, ScalarType) and right_type.is_integer():
            expr.op_type = left_type
            return left_type
        self.sink.error(f"invalid pointer operation: {left_type} {op} {right_type}", expr.span)
        return None

    def _expr_Assignment(self, expr: ast.Assignment, scope: Scope) -> Optional[CType]:
        target_type = self._check_expr(expr.target, scope)
        value_type = self._check_expr(expr.value, scope)
        if target_type is None or value_type is None:
            return None
        if not expr.target.is_lvalue:
            self.sink.error("assignment target is not an lvalue", expr.target.span)
            return None
        symbol = getattr(expr.target, "symbol", None)
        if symbol is not None and symbol.is_const and not isinstance(symbol.ctype, PointerType):
            self.sink.error(f"assignment to const variable {symbol.name!r}", expr.span)
        value_decayed = self._decay(expr.value)
        if expr.op == "=":
            if not self._convertible(value_decayed, target_type):
                self.sink.error(f"cannot assign {value_decayed} to {target_type}", expr.span)
        else:
            base_op = expr.op[:-1]
            if isinstance(target_type, PointerType):
                if base_op not in ("+", "-") or not (
                    isinstance(value_decayed, ScalarType) and value_decayed.is_integer()
                ):
                    self.sink.error(f"invalid compound assignment to pointer: '{expr.op}'", expr.span)
            else:
                element = target_type.element if isinstance(target_type, VectorType) else target_type
                if base_op in _INT_ONLY_OPS and not (isinstance(element, ScalarType) and element.is_integer()):
                    self.sink.error(f"invalid operand type {target_type} to '{expr.op}'", expr.span)
                if not self._convertible(value_decayed, target_type):
                    self.sink.error(f"cannot apply '{expr.op}' with {value_decayed} to {target_type}", expr.span)
        return target_type

    def _expr_Conditional(self, expr: ast.Conditional, scope: Scope) -> Optional[CType]:
        self._check_condition(expr.condition, scope)
        then_type = self._check_expr(expr.then_expr, scope)
        else_type = self._check_expr(expr.else_expr, scope)
        if then_type is None or else_type is None:
            return None
        then_type = self._decay(expr.then_expr)
        else_type = self._decay(expr.else_expr)
        if isinstance(then_type, PointerType) and isinstance(else_type, PointerType):
            if then_type.pointee != else_type.pointee:
                self.sink.error("pointer type mismatch in conditional expression", expr.span)
                return None
            return then_type
        try:
            return common_type(then_type, else_type)
        except TypeError as exc:
            self.sink.error(str(exc), expr.span)
            return None

    def _expr_Call(self, expr: ast.Call, scope: Scope) -> Optional[CType]:
        arg_types: List[Optional[CType]] = []
        for arg in expr.args:
            self._check_expr(arg, scope)
            arg_types.append(self._decay(arg))
        if any(t is None for t in arg_types):
            return None

        # A local symbol never shadows function names in this subset (no
        # function pointers), so calls resolve by name: user first (the
        # checker already rejects user functions shadowing builtins).
        target = self.functions.get(expr.callee)
        if target is not None:
            return self._check_user_call(expr, target, arg_types)
        try:
            resolved = resolve_builtin(expr.callee, arg_types)
        except BuiltinError as exc:
            self.sink.error(str(exc), expr.span)
            return None
        if resolved is None:
            self.sink.error(f"call to undeclared function {expr.callee!r}", expr.span)
            return None
        expr.kind = "builtin"
        expr.resolved = resolved
        if resolved.kind == "barrier":
            self._check_barrier_context(expr)
        return resolved.result_type

    def _check_barrier_context(self, expr: ast.Call) -> None:
        function = self.current_function
        if function is None or not function.is_kernel:
            self.sink.error(
                "barrier() may only be used in __kernel functions "
                "(helper functions execute per work-item without synchronization)",
                expr.span,
            )
            return
        if not getattr(expr, "at_statement_level", False):
            self.sink.error("barrier() must be used as a standalone statement", expr.span)
            return
        function.uses_barrier = True

    def _check_user_call(self, expr: ast.Call, target: ast.FunctionDef,
                         arg_types: List[CType]) -> Optional[CType]:
        expr.kind = "user"
        expr.callee_def = target
        if target.is_kernel:
            self.sink.error(f"cannot call __kernel function {target.name!r} from a kernel", expr.span)
            return None
        if len(arg_types) != len(target.params):
            self.sink.error(
                f"{target.name}() expects {len(target.params)} argument(s), got {len(arg_types)}",
                expr.span,
            )
            return None
        for arg, arg_type, param in zip(expr.args, arg_types, target.params):
            if not self._convertible(arg_type, param.declared_type):
                self.sink.error(
                    f"cannot pass {arg_type} for parameter {param.name!r} of type {param.declared_type}",
                    arg.span,
                )
        return target.return_type

    def _expr_Index(self, expr: ast.Index, scope: Scope) -> Optional[CType]:
        base_type = self._check_expr(expr.base, scope)
        index_type = self._check_expr(expr.index, scope)
        if base_type is None or index_type is None:
            return None
        if not (isinstance(index_type, ScalarType) and index_type.is_integer()):
            self.sink.error(f"array index must be an integer, got {index_type}", expr.index.span)
            return None
        if isinstance(base_type, ArrayType):
            expr.is_lvalue = True
            # Propagate the owning symbol for address-space tracking.
            symbol = getattr(expr.base, "symbol", None)
            if symbol is not None:
                expr.symbol = symbol
            return base_type.element
        decayed = self._decay(expr.base)
        if isinstance(decayed, PointerType):
            expr.is_lvalue = True
            return decayed.pointee
        self.sink.error(f"cannot index a value of type {base_type}", expr.span)
        return None

    def _expr_Member(self, expr: ast.Member, scope: Scope) -> Optional[CType]:
        base_type = self._check_expr(expr.base, scope)
        if base_type is None:
            return None
        if not isinstance(base_type, VectorType):
            self.sink.error(f"member access on non-vector type {base_type}", expr.span)
            return None
        try:
            indices = component_indices(expr.member, base_type.width)
        except ValueError as exc:
            self.sink.error(str(exc), expr.span)
            return None
        expr.indices = indices
        expr.is_lvalue = expr.base.is_lvalue and len(set(indices)) == len(indices)
        if len(indices) == 1:
            return base_type.element
        return VectorType(base_type.element, len(indices))

    def _expr_Cast(self, expr: ast.Cast, scope: Scope) -> Optional[CType]:
        operand_type = self._check_expr(expr.operand, scope)
        if operand_type is None:
            return None
        operand_type = self._decay(expr.operand)
        target = expr.target_type
        if isinstance(target, PointerType):
            if not isinstance(operand_type, PointerType):
                self.sink.error(f"cannot cast {operand_type} to pointer type {target}", expr.span)
                return None
            return target
        if isinstance(operand_type, PointerType):
            self.sink.error(f"cannot cast pointer to {target}", expr.span)
            return None
        if isinstance(target, VectorType):
            if isinstance(operand_type, VectorType):
                if operand_type.width != target.width:
                    self.sink.error(f"cannot cast {operand_type} to {target} (width mismatch)", expr.span)
                    return None
                return target
            return target  # scalar broadcast
        if isinstance(operand_type, VectorType):
            self.sink.error(f"cannot cast vector {operand_type} to scalar {target}", expr.span)
            return None
        if target.is_void():
            return VOID
        return target

    def _expr_VectorLiteral(self, expr: ast.VectorLiteral, scope: Scope) -> Optional[CType]:
        target = expr.target_type
        assert isinstance(target, VectorType)
        total = 0
        for element in expr.elements:
            element_type = self._check_expr(element, scope)
            if element_type is None:
                return None
            if isinstance(element_type, VectorType):
                total += element_type.width
            elif isinstance(element_type, ScalarType) and element_type.is_arithmetic():
                total += 1
            else:
                self.sink.error(f"invalid vector literal element of type {element_type}", element.span)
                return None
        if total != target.width and not (len(expr.elements) == 1 and total == 1):
            self.sink.error(
                f"vector literal for {target} has {total} component(s), expected {target.width}",
                expr.span,
            )
            return None
        return target

    def _expr_SizeofExpr(self, expr: ast.SizeofExpr, scope: Scope) -> Optional[CType]:
        if expr.operand is not None:
            self._check_expr(expr.operand, scope)
        return UINT

    def _expr_CommaExpr(self, expr: ast.CommaExpr, scope: Scope) -> Optional[CType]:
        result: Optional[CType] = None
        for part in expr.parts:
            result = self._check_expr(part, scope)
        return result

    # -- conversions ----------------------------------------------------------

    def _convertible(self, source: Optional[CType], target: CType) -> bool:
        if source is None:
            return True  # already reported
        if source == target:
            return True
        source_element = source.element if isinstance(source, VectorType) else source
        target_element = target.element if isinstance(target, VectorType) else target
        if isinstance(source, VectorType) != isinstance(target, VectorType):
            # scalar -> vector broadcast is allowed; vector -> scalar is not
            if isinstance(source, VectorType):
                return False
            return (
                isinstance(target, VectorType)
                and isinstance(source_element, ScalarType)
                and source_element.is_arithmetic()
            )
        if isinstance(source, VectorType) and isinstance(target, VectorType):
            return source.width == target.width
        if isinstance(source, ScalarType) and isinstance(target, ScalarType):
            return source.is_arithmetic() and target.is_arithmetic()
        if isinstance(source, PointerType) and isinstance(target, PointerType):
            if source.pointee != target.pointee and not target.pointee.is_void() and not source.pointee.is_void():
                return False
            # A __private-qualified pointer parameter acts as a generic
            # pointer (any address space converts to it), which is how
            # customizing functions like ``float func(float* m)`` accept
            # __global data — cf. OpenCL 2.0's generic address space.
            if source.address_space != target.address_space and target.address_space != "private":
                return False
            return True  # dropping const on a copy of the pointer is C-legal enough here
        return False


def SCALAR(name: str) -> ScalarType:
    from .ctypes_ import SCALAR_TYPES

    return SCALAR_TYPES[name]


def resolve_is_builtin(name: str) -> bool:
    from .builtins import is_builtin_name

    return is_builtin_name(name)


def typecheck(program: ast.Program, source: Optional[SourceFile] = None) -> ast.Program:
    """Type-check ``program`` in place; raises ``CompileError`` on errors."""
    return TypeChecker(program, source).check()
