"""OpenCL-C pretty-printer for kernelc ASTs.

Renders a parsed (not necessarily type-checked) program back to
compilable source.  Used for debugging generated kernels and for the
parse→print→parse round-trip property tests that pin down the parser.

The printer is precedence-aware: it emits the minimal parentheses that
preserve the tree shape, so ``print(parse(print(ast)))`` is structurally
idempotent.
"""

from __future__ import annotations

from typing import List

from . import ast
from .ctypes_ import ArrayType, CType, PointerType, ScalarType, VectorType

# Expression precedence levels (higher binds tighter), mirroring the
# parser's table with unary/postfix levels on top.
_BINARY_PRECEDENCE = {
    "*": 13, "/": 13, "%": 13,
    "+": 12, "-": 12,
    "<<": 11, ">>": 11,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "==": 9, "!=": 9,
    "&": 8, "^": 7, "|": 6,
    "&&": 5, "||": 4,
}
_TERNARY_PRECEDENCE = 3
_ASSIGN_PRECEDENCE = 2
_COMMA_PRECEDENCE = 1
_UNARY_PRECEDENCE = 14
_POSTFIX_PRECEDENCE = 15


def type_name(ctype: CType) -> str:
    """The declaration-specifier spelling of a type (no declarator)."""
    if isinstance(ctype, PointerType):
        space = f"__{ctype.address_space} " if ctype.address_space != "private" else ""
        const = "const " if ctype.is_const else ""
        return f"{space}{const}{type_name(ctype.pointee)}*"
    if isinstance(ctype, (ScalarType, VectorType)):
        return ctype.name
    if isinstance(ctype, ArrayType):
        return type_name(ctype.element)  # dimensions print with the declarator
    raise TypeError(f"cannot print type {ctype}")


def _array_suffix(ctype: CType) -> str:
    suffix = ""
    while isinstance(ctype, ArrayType):
        suffix += f"[{ctype.length}]"
        ctype = ctype.element
    return suffix


class Printer:
    def __init__(self, indent: str = "    "):
        self.indent_text = indent
        self.lines: List[str] = []
        self.depth = 0

    # -- emission ----------------------------------------------------------

    def _emit(self, text: str) -> None:
        self.lines.append(self.indent_text * self.depth + text)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"

    # -- program -------------------------------------------------------------

    def print_program(self, program: ast.Program) -> str:
        for global_decl in program.globals:
            decl = global_decl.decl
            init = f" = {self.initializer(decl.init)}" if decl.init is not None else ""
            self._emit(
                f"__constant {type_name(decl.declared_type)} {decl.name}"
                f"{_array_suffix(decl.declared_type)}{init};"
            )
            self._emit("")
        for function in program.functions:
            self.print_function(function)
            self._emit("")
        return self.render()

    def print_function(self, function: ast.FunctionDef) -> None:
        kernel = "__kernel " if function.is_kernel else ""
        params = ", ".join(
            f"{type_name(p.declared_type)} {p.name}".rstrip() for p in function.params
        )
        self._emit(f"{kernel}{type_name(function.return_type)} {function.name}({params})")
        if function.body is None:
            self.lines[-1] += ";"
            return
        self.block(function.body)

    # -- statements ------------------------------------------------------------

    def block(self, stmt: ast.CompoundStmt) -> None:
        self._emit("{")
        self.depth += 1
        for child in stmt.statements:
            self.stmt(child)
        self.depth -= 1
        self._emit("}")

    def _nested(self, stmt: ast.Stmt) -> None:
        """A statement in a control-flow slot (brace compounds, indent others)."""
        if isinstance(stmt, ast.CompoundStmt):
            self.block(stmt)
        else:
            self.depth += 1
            self.stmt(stmt)
            self.depth -= 1

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            self.block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            self._emit(self.declaration(stmt) + ";")
        elif isinstance(stmt, ast.ExprStmt):
            self._emit(";" if stmt.expr is None else self.expr(stmt.expr) + ";")
        elif isinstance(stmt, ast.IfStmt):
            self._emit(f"if ({self.expr(stmt.condition)})")
            self._nested(stmt.then_branch)
            if stmt.else_branch is not None:
                self._emit("else")
                self._nested(stmt.else_branch)
        elif isinstance(stmt, ast.ForStmt):
            init = ""
            if isinstance(stmt.init, ast.DeclStmt):
                init = self.declaration(stmt.init)
            elif isinstance(stmt.init, ast.ExprStmt) and stmt.init.expr is not None:
                init = self.expr(stmt.init.expr)
            condition = self.expr(stmt.condition) if stmt.condition is not None else ""
            increment = self.expr(stmt.increment) if stmt.increment is not None else ""
            self._emit(f"for ({init}; {condition}; {increment})")
            self._nested(stmt.body)
        elif isinstance(stmt, ast.WhileStmt):
            self._emit(f"while ({self.expr(stmt.condition)})")
            self._nested(stmt.body)
        elif isinstance(stmt, ast.DoStmt):
            self._emit("do")
            self._nested(stmt.body)
            self._emit(f"while ({self.expr(stmt.condition)});")
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                self._emit("return;")
            else:
                self._emit(f"return {self.expr(stmt.value)};")
        elif isinstance(stmt, ast.BreakStmt):
            self._emit("break;")
        elif isinstance(stmt, ast.ContinueStmt):
            self._emit("continue;")
        elif isinstance(stmt, ast.SwitchStmt):
            self._emit(f"switch ({self.expr(stmt.subject)})")
            self._emit("{")
            self.depth += 1
            for case in stmt.cases:
                if case.value is None:
                    self._emit("default:")
                else:
                    self._emit(f"case {self.expr(case.value)}:")
                self.depth += 1
                for child in case.body:
                    self.stmt(child)
                self.depth -= 1
            self.depth -= 1
            self._emit("}")
        else:  # pragma: no cover
            raise TypeError(f"cannot print statement {type(stmt).__name__}")

    def declaration(self, stmt: ast.DeclStmt) -> str:
        first = stmt.decls[0]
        # Single pointer declaration: print the full pointer type (which
        # carries its own address-space spelling).
        if len(stmt.decls) == 1 and isinstance(first.declared_type, PointerType):
            init = f" = {self.initializer(first.init)}" if first.init is not None else ""
            return f"{type_name(first.declared_type)} {first.name}{init}"

        parts = []
        space = {
            "local": "__local ",
            "constant": "__constant ",
            "global": "__global ",
            "private": "",
        }[first.address_space]
        const = "const " if first.is_const and not isinstance(first.declared_type, PointerType) else ""
        for decl in stmt.decls:
            name = f"{_pointer_stars(decl.declared_type)}{decl.name}{_array_suffix(decl.declared_type)}"
            if decl.init is not None:
                name += f" = {self.initializer(decl.init)}"
            parts.append(name)
        base = first.declared_type
        while isinstance(base, (PointerType, ArrayType)):
            base = base.pointee if isinstance(base, PointerType) else base.element
        return f"{space}{const}{type_name(base)} {', '.join(parts)}"

    def initializer(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.VectorLiteral) and expr.is_array_initializer:
            inner = ", ".join(self.initializer(e) for e in expr.elements)
            return "{ " + inner + " }"
        return self.expr(expr, _ASSIGN_PRECEDENCE)

    # -- expressions ----------------------------------------------------------

    def expr(self, expr: ast.Expr, parent_precedence: int = 0) -> str:
        text, precedence = self._expr(expr)
        if precedence < parent_precedence:
            return f"({text})"
        return text

    def _expr(self, expr: ast.Expr):
        if isinstance(expr, ast.IntLiteral):
            return f"{expr.value}{expr.suffix}", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.FloatLiteral):
            text = repr(expr.value)
            if "e" not in text and "." not in text and "inf" not in text and "nan" not in text:
                text += ".0"
            return f"{text}{expr.suffix}", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.CharLiteral):
            ch = chr(expr.value)
            if ch == "\\":
                ch = "\\\\"
            elif ch == "'":
                ch = "\\'"
            elif not ch.isprintable():
                return str(expr.value), _POSTFIX_PRECEDENCE
            return f"'{ch}'", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Identifier):
            return expr.name, _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.UnaryOp):
            if expr.op in ("++", "--"):
                operand = self.expr(expr.operand, _UNARY_PRECEDENCE)
                return f"{expr.op}{operand}", _UNARY_PRECEDENCE
            operand = self.expr(expr.operand, _UNARY_PRECEDENCE)
            spacer = " " if expr.op in ("+", "-") and operand.startswith(expr.op) else ""
            return f"{expr.op}{spacer}{operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.PostfixOp):
            operand = self.expr(expr.operand, _POSTFIX_PRECEDENCE)
            return f"{operand}{expr.op}", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.BinaryOp):
            precedence = _BINARY_PRECEDENCE[expr.op]
            left = self.expr(expr.left, precedence)
            # Left-associative: right child needs one level tighter.
            right = self.expr(expr.right, precedence + 1)
            return f"{left} {expr.op} {right}", precedence
        if isinstance(expr, ast.Assignment):
            target = self.expr(expr.target, _UNARY_PRECEDENCE)
            value = self.expr(expr.value, _ASSIGN_PRECEDENCE)
            return f"{target} {expr.op} {value}", _ASSIGN_PRECEDENCE
        if isinstance(expr, ast.Conditional):
            condition = self.expr(expr.condition, _TERNARY_PRECEDENCE + 1)
            then_text = self.expr(expr.then_expr, _COMMA_PRECEDENCE + 1)
            else_text = self.expr(expr.else_expr, _TERNARY_PRECEDENCE)
            return f"{condition} ? {then_text} : {else_text}", _TERNARY_PRECEDENCE
        if isinstance(expr, ast.Call):
            args = ", ".join(self.expr(a, _ASSIGN_PRECEDENCE) for a in expr.args)
            return f"{expr.callee}({args})", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Index):
            base = self.expr(expr.base, _POSTFIX_PRECEDENCE)
            return f"{base}[{self.expr(expr.index)}]", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Member):
            base = self.expr(expr.base, _POSTFIX_PRECEDENCE)
            return f"{base}.{expr.member}", _POSTFIX_PRECEDENCE
        if isinstance(expr, ast.Cast):
            operand = self.expr(expr.operand, _UNARY_PRECEDENCE)
            return f"({type_name(expr.target_type)}){operand}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.VectorLiteral):
            elements = ", ".join(self.expr(e, _ASSIGN_PRECEDENCE) for e in expr.elements)
            return f"({type_name(expr.target_type)})({elements})", _UNARY_PRECEDENCE
        if isinstance(expr, ast.SizeofExpr):
            if expr.queried_type is not None:
                return f"sizeof({type_name(expr.queried_type)})", _UNARY_PRECEDENCE
            return f"sizeof {self.expr(expr.operand, _UNARY_PRECEDENCE)}", _UNARY_PRECEDENCE
        if isinstance(expr, ast.CommaExpr):
            parts = ", ".join(self.expr(p, _ASSIGN_PRECEDENCE) for p in expr.parts)
            return parts, _COMMA_PRECEDENCE
        raise TypeError(f"cannot print expression {type(expr).__name__}")  # pragma: no cover


def _pointer_stars(ctype: CType) -> str:
    stars = ""
    while isinstance(ctype, PointerType):
        stars += "*"
        ctype = ctype.pointee
    return stars


def print_program(program: ast.Program) -> str:
    """Render a program AST back to OpenCL-C source."""
    return Printer().print_program(program)


def print_expr(expr: ast.Expr) -> str:
    return Printer().expr(expr)
