"""Source text handling: locations, spans and snippet extraction.

Every token and AST node produced by the kernelc front-end carries a
:class:`Span` pointing back into the original OpenCL-C source string so
that diagnostics can show precise carets, exactly like a real compiler.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# Origin markers emitted by the jit frontend: ``/*@py:file.py:12*/``
# maps a generated line back to the Python source it was lowered from;
# ``/*@intent:func.param=rw*/`` records a declared access intent that
# the access analysis consumes verbatim.
_ORIGIN_MARKER = re.compile(r"/\*@py:([^:*]+):(\d+)\*/")
_INTENT_MARKER = re.compile(r"/\*@intent:(\w+)\.(\w+)=(r|w|rw)\*/")


@dataclass(frozen=True)
class Location:
    """A point in a source file (1-based line and column)."""

    line: int
    column: int
    offset: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open range ``[start, end)`` of source offsets."""

    start: Location
    end: Location

    def __str__(self) -> str:
        return str(self.start)

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        start = min(self.start, other.start, key=lambda l: l.offset)
        end = max(self.end, other.end, key=lambda l: l.offset)
        return Span(start, end)


# A span used for synthesized nodes that have no source counterpart.
BUILTIN_LOCATION = Location(0, 0, 0)
BUILTIN_SPAN = Span(BUILTIN_LOCATION, BUILTIN_LOCATION)


class SourceFile:
    """A named source string with fast offset → line/column mapping."""

    def __init__(self, text: str, name: str = "<kernel>"):
        self.text = text
        self.name = name
        self._line_starts = [0]
        for i, ch in enumerate(text):
            if ch == "\n":
                self._line_starts.append(i + 1)
        # Python-origin markers (jit-lowered code): 1-based generated
        # line → (python file, python line).
        self.origins: Dict[int, Tuple[str, int]] = {}
        # Declared access intents: (function, parameter) → mode.
        self.declared_intents: Dict[Tuple[str, str], str] = {}
        if "/*@" in text:
            for line_number, line in enumerate(text.split("\n"), start=1):
                match = _ORIGIN_MARKER.search(line)
                if match:
                    self.origins[line_number] = (match.group(1), int(match.group(2)))
                for intent in _INTENT_MARKER.finditer(line):
                    key = (intent.group(1), intent.group(2))
                    self.declared_intents[key] = intent.group(3)

    def origin(self, line: int) -> Optional[Tuple[str, int]]:
        """The Python ``(file, line)`` a generated line was lowered
        from, if the line carries an origin marker."""
        return self.origins.get(line)

    def location(self, offset: int) -> Location:
        """Map a character offset to a 1-based :class:`Location`."""
        offset = max(0, min(offset, len(self.text)))
        line_index = bisect.bisect_right(self._line_starts, offset) - 1
        column = offset - self._line_starts[line_index] + 1
        return Location(line_index + 1, column, offset)

    def span(self, start_offset: int, end_offset: int) -> Span:
        return Span(self.location(start_offset), self.location(end_offset))

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line, without its newline."""
        if line < 1 or line > len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    def snippet(self, span: Span) -> str:
        """Render a caret-annotated snippet for ``span``."""
        line = span.start.line
        text = self.line_text(line)
        caret_start = max(span.start.column - 1, 0)
        if span.end.line == line:
            width = max(span.end.column - span.start.column, 1)
        else:
            width = max(len(text) - caret_start, 1)
        pointer = " " * caret_start + "^" * width
        return f"{text}\n{pointer}"
