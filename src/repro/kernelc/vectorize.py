"""Vectorized (lockstep) NDRange backend.

Evaluates a type-checked kernel AST over every selected work-item of an
NDRange at once, using numpy array operations: one statement is executed
for all active lanes simultaneously under a boolean mask.  ``if``/``?:``
become masked selects, loops become fixed-point iteration over a
shrinking live-lane mask, buffer accesses become gathers/scatters, and
``barrier()`` becomes a per-group all-or-none mask check.

The backend is a drop-in replacement for the per-item compiled path
(:mod:`.compiler` + ``ocl.executor``) and is held to a *bit-exactness
contract*: for any conforming kernel, output buffers and every
``ExecutionCounters`` field (ops, warp_ops, barriers, memory traffic)
must equal the per-item backend's.  ``tests/kernelc/
test_vectorize_differential.py`` enforces the contract with generated
kernels.

How parity is achieved
----------------------

* **Ops / CSE.**  The per-item compiler charges each statement a static
  op cost, corrected for loads elided by its basic-block CSE.  Rather
  than re-deriving those numbers, this module re-runs the compiler with
  recording hooks (:class:`_RecordingCompiler`) and replays the exact
  charge schedule (``{statement-key: ops}``) and CSE decisions
  (``{elided-load-id: source-load-id}``) per lane.
* **Value domains.**  The compiled backend computes floats in double and
  signed ints with Python's arbitrary precision, masking unsigned ints
  at every op ("relaxed fast math").  Here, per-lane values live in
  ``float64``/``int64`` arrays (unsigned 8-byte values as 64-bit
  patterns) and *uniform* values stay exact Python scalars, so any
  value a conforming kernel can produce is represented exactly.
  Divergence is only possible under C undefined behaviour (signed
  overflow past 64 bits, out-of-range float→int casts).
* **Constant folding.**  ``compile_expr`` folds every non-literal
  subtree first (which rounds float constants to their declared width);
  the evaluator calls the identical ``fold_constants`` with a
  scope-mirrored const lookup before dispatching.

Intentional differences (documented, all under undefined behaviour):

* Barrier divergence is checked per barrier *statement* (each work-group
  must have all or none of its items at that statement), which is
  stricter than the per-item round-robin check for non-conforming
  kernels that reach *different* barrier statements in divergent
  branches.
* Assigning pointer values that diverge per-lane to different objects
  raises :class:`VectorizeError` (there is no numpy representation for
  a lane-varying object reference); conforming kernels in the corpus do
  not do this.
* With intra-group data races, lockstep statement order differs from
  the sequential per-item order, so racy kernels may produce different
  (still unspecified) results.

Kernels using constructs with no lockstep lowering (vector types,
pointer casts, recursion, barriers inside helper functions, …) are
rejected statically by :func:`plan_for` and fall back transparently to
the per-item backend.  ``switch`` statements run as masked case
dispatch: every lane computes its entry case, then the cases execute in
order with the union of lanes that have reached them (C fallthrough),
``break`` peeling lanes off into the switch's break mask.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import ast
from .builtins import ResolvedBuiltin, _strip_prefix
from .compiler import (_FunctionCompiler, _ProgramCompiler, CompiledKernel,
                       _is_literal, fold_constants, node_cost)
from .ctypes_ import (
    ArrayType,
    CType,
    PointerType,
    ScalarType,
    VectorType,
    convert_scalar,
    numpy_dtype,
)
from .execmodel import c_fdiv, c_idiv, c_imod
from .interp import Machine, apply_builtin
from .memory import KernelFault

_I64 = np.int64
_U64 = np.uint64
_TWO63 = 1 << 63
_TWO64 = 1 << 64
_CMP_OPS = ("<", ">", "<=", ">=", "==", "!=")


class VectorizeError(RuntimeError):
    """A kernel hit a runtime situation the lockstep backend cannot
    represent (currently: merging divergent pointer values)."""


# ---------------------------------------------------------------------------
# Recording pass: replay the per-item compiler's charge/CSE schedule.
# ---------------------------------------------------------------------------


class _RecordingCompiler(_FunctionCompiler):
    """Re-runs code generation purely to observe charge and CSE hooks."""

    def __init__(self, program_compiler, function, record):
        super().__init__(program_compiler, function)
        self._record = record

    def on_charge(self, key: tuple, final: int) -> None:
        if final:
            self._record.charges[key] = final

    def record_cse(self, expr: ast.Expr, temp: str) -> None:
        origin = self._load_origins.get(temp)
        if origin is not None:
            self._record.cse[id(expr)] = origin

    def compile_switch(self, stmt: ast.SwitchStmt) -> None:
        # compile_switch charges its upfront cost via the direct
        # ``charge()`` emitter, which bypasses the on_charge hook —
        # record it explicitly so the evaluator can replay it.
        self._record.charges[(id(stmt), "switch")] = \
            node_cost(stmt.subject) + len(stmt.cases)
        super().compile_switch(stmt)


class _ProgramRecord:
    """Per-``ast.Program`` data shared by all of its kernels' plans."""

    def __init__(self, program: ast.Program):
        self.charges: Dict[tuple, int] = {}
        self.cse: Dict[int, int] = {}
        pc = _ProgramCompiler(program)
        for function in program.functions:
            _RecordingCompiler(pc, function, self).compile()
        self.globals: Dict[str, object] = {}
        if program.globals:
            machine = Machine(program)
            for global_decl in program.globals:
                name = global_decl.decl.name
                value = machine.globals[name]
                if hasattr(value, "pointer"):  # ArrayRef
                    ptr = value.pointer
                    vptr = VPtr(ptr.array, ptr.element_type, ptr.address_space,
                                None, ptr.length, ptr.offset, None)
                    self.globals[name] = VArray(vptr, value.element)
                else:
                    self.globals[name] = value


class _KernelPlan:
    __slots__ = ("kernel", "charges", "cse", "globals")

    def __init__(self, kernel: CompiledKernel, record: _ProgramRecord):
        self.kernel = kernel
        self.charges = record.charges
        self.cse = record.cse
        self.globals = record.globals


# ---------------------------------------------------------------------------
# Static support classifier.
# ---------------------------------------------------------------------------


def _contains_vector(ctype) -> bool:
    if isinstance(ctype, VectorType):
        return True
    if isinstance(ctype, PointerType):
        return _contains_vector(ctype.pointee)
    if isinstance(ctype, ArrayType):
        return _contains_vector(ctype.element)
    return False


def _function_reject_reason(fn: ast.FunctionDef) -> Optional[str]:
    if _contains_vector(fn.return_type):
        return "vector return type"
    for param in fn.params:
        if _contains_vector(param.declared_type):
            return "vector parameter type"
    if not fn.is_kernel and getattr(fn, "uses_barrier", False):
        return "barrier inside a helper function"
    for node in ast.walk(fn.body):
        if isinstance(node, ast.StringLiteral):
            return "string literal"
        if isinstance(node, ast.Member):
            return "vector component access"
        if isinstance(node, ast.VectorLiteral) and not getattr(node, "is_array_initializer", False):
            return "vector literal"
        if isinstance(node, ast.Cast) and isinstance(node.target_type, PointerType):
            return "pointer cast"
        if isinstance(node, ast.VarDecl):
            if _contains_vector(node.declared_type):
                return "vector variable"
            if node.address_space == "local" and not isinstance(node.declared_type, ArrayType):
                return "__local scalar variable"
            if node.address_space == "local" and not fn.is_kernel:
                return "__local declaration in a helper function"
        ctype = getattr(node, "ctype", None)
        if ctype is not None and _contains_vector(ctype):
            return "vector-typed expression"
        op_type = getattr(node, "op_type", None)
        if op_type is not None and _contains_vector(op_type):
            return "vector arithmetic"
    return None


def reject_reason(kernel: CompiledKernel) -> Optional[str]:
    """Why ``kernel`` cannot run on the vector backend (None = it can)."""
    if kernel.program is None:
        return "kernel compiled without its owning program"
    # Reachable user functions (cycle detection rejects recursion).
    order: List[ast.FunctionDef] = []
    state: Dict[int, int] = {}  # id(fn) -> 1 visiting, 2 done

    def visit(fn: ast.FunctionDef) -> Optional[str]:
        mark = state.get(id(fn))
        if mark == 1:
            return "recursion"
        if mark == 2:
            return None
        state[id(fn)] = 1
        order.append(fn)
        for node in ast.walk(fn.body):
            if isinstance(node, ast.Call) and getattr(node, "kind", "") == "user":
                target = getattr(node, "callee_def", None)
                if target is None or target.body is None:
                    return "call to an undefined function"
                reason = visit(target)
                if reason is not None:
                    return reason
        state[id(fn)] = 2
        return None

    reason = visit(kernel.definition)
    if reason is not None:
        return reason
    for fn in order:
        reason = _function_reject_reason(fn)
        if reason is not None:
            return reason
    for global_decl in kernel.program.globals:
        if _contains_vector(global_decl.decl.declared_type):
            return "vector-typed __constant global"
    return None


_MISSING = object()


def plan_for(kernel: CompiledKernel) -> Optional[_KernelPlan]:
    """An execution plan for ``kernel``, or None when the kernel must
    fall back to the per-item backend.  Cached on the kernel (and the
    recording pass on its program, shared by sibling kernels)."""
    cached = kernel.__dict__.get("_vector_plan", _MISSING)
    if cached is not _MISSING:
        return cached
    plan: Optional[_KernelPlan] = None
    if reject_reason(kernel) is None:
        program = kernel.program
        record = getattr(program, "_vectorize_record", None)
        if record is None:
            record = _ProgramRecord(program)
            program._vectorize_record = record
        plan = _KernelPlan(kernel, record)
    kernel._vector_plan = plan
    return plan


# ---------------------------------------------------------------------------
# Runtime values: lane-wise pointers and arrays.
# ---------------------------------------------------------------------------


class VNull:
    """The null-pointer sentinel (default value of pointer variables).

    Mirrors the compiled backend's ``_NULLPTR``: truthy, compares
    unequal to real pointers without faulting, faults on any use."""

    _instance: Optional["VNull"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @staticmethod
    def _fault():
        raise KernelFault("use of an uninitialized (null) pointer")


_VNULL = VNull()


class VPtr:
    """A (possibly lane-varying) pointer into one flat numpy storage.

    ``offset`` is the logical element offset (Python int when uniform,
    int64 lanes array otherwise); ``base`` adds a per-lane storage-row
    origin for group-local and private allocations (None for storage
    shared by all lanes, e.g. global buffers)."""

    __slots__ = ("array", "element_type", "space", "tally", "length", "offset", "base")

    def __init__(self, array, element_type: ScalarType, space: str, tally,
                 length: int, offset, base):
        self.array = array
        self.element_type = element_type
        self.space = space
        self.tally = tally
        self.length = length
        self.offset = offset
        self.base = base

    def add(self, delta) -> "VPtr":
        if isinstance(delta, np.ndarray) or isinstance(self.offset, np.ndarray):
            offset = _int_lanes_pair(self.offset, delta)
        else:
            offset = self.offset + int(delta)
        return VPtr(self.array, self.element_type, self.space, self.tally,
                    self.length, offset, self.base)

    def diff(self, other):
        if isinstance(other, VNull):
            VNull._fault()
        if not isinstance(other, VPtr) or self.array is not other.array:
            raise KernelFault("subtracting pointers into different objects")
        if isinstance(self.offset, np.ndarray) or isinstance(other.offset, np.ndarray):
            return _int_lanes_pair(self.offset, -_as_int_operand(other.offset))
        return self.offset - other.offset

    # -- lane-wise memory access ------------------------------------------

    def _positions(self, index, mask):
        """Logical element positions, bounds-checked for active lanes."""
        if isinstance(index, np.ndarray) or isinstance(self.offset, np.ndarray):
            where = _int_lanes_pair(self.offset, index)
        else:
            where = self.offset + int(index)
        if isinstance(where, np.ndarray):
            active = where[mask]
            bad = (active < 0) | (active >= self.length)
            if bad.any():
                first = int(active[np.argmax(bad)])
                raise KernelFault(
                    f"out-of-bounds {self.space} access: element {first} of {self.length}"
                )
        elif not 0 <= where < self.length:
            raise KernelFault(
                f"out-of-bounds {self.space} access: element {where} of {self.length}"
            )
        return where

    def _charge(self, count: int, store: bool) -> None:
        tally = self.tally
        if tally is None:
            return
        size = self.element_type.sizeof()
        if self.space in ("global", "constant"):
            if store:
                tally.global_stores += count
            else:
                tally.global_loads += count
            tally.global_bytes += count * size
        elif self.space == "local":
            if store:
                tally.local_stores += count
            else:
                tally.local_loads += count
            tally.local_bytes += count * size

    def gather(self, index, mask):
        where = self._positions(index, mask)
        count = int(np.count_nonzero(mask))
        if not isinstance(where, np.ndarray) and self.base is None:
            self._charge(count, store=False)
            value = self.array[where].item()
            if self.element_type.is_float():
                return float(value)
            return int(value)
        rows = np.where(mask, where, 0) if isinstance(where, np.ndarray) \
            else np.full(mask.shape, where, dtype=_I64)
        if self.base is not None:
            rows = rows + np.where(mask, self.base, 0)
        self._charge(count, store=False)
        values = self.array[rows]
        if self.element_type.is_float():
            out = values.astype(np.float64)
        else:
            out = values.astype(_I64)
        return np.where(mask, out, 0)

    def scatter(self, index, value, mask) -> None:
        where = self._positions(index, mask)
        count = int(np.count_nonzero(mask))
        self._charge(count, store=True)
        if not isinstance(where, np.ndarray):
            rows = np.full(mask.shape, where, dtype=_I64)
        else:
            rows = where
        if self.base is not None:
            rows = rows + np.where(mask, self.base, 0)
        active_rows = rows[mask]
        if isinstance(value, np.ndarray):
            active_values = value[mask]
            etype = self.element_type
            if etype.is_bool():
                converted = (active_values != 0).astype(self.array.dtype)
            elif etype.is_integer() and active_values.dtype.kind == "f":
                converted = _float_lanes_to_int(active_values, None).astype(self.array.dtype)
            else:
                converted = active_values.astype(self.array.dtype)
            self.array[active_rows] = converted
        else:
            self.array[active_rows] = convert_scalar(value, self.element_type)


class VArray:
    """Mirror of :class:`memory.ArrayRef` over a :class:`VPtr`."""

    __slots__ = ("pointer", "element")

    def __init__(self, pointer: VPtr, element: CType):
        self.pointer = pointer
        self.element = element

    def index(self, i) -> "VArray":
        assert isinstance(self.element, ArrayType), "scalar rows are accessed via the flat pointer"
        stride = self.element.flat_length()
        return VArray(self.pointer.add(_mul_index(i, stride)), self.element.element)

    def decayed(self) -> VPtr:
        if isinstance(self.element, ArrayType):
            raise KernelFault("cannot decay a multi-dimensional array to a flat pointer")
        return self.pointer


def _mul_index(i, stride: int):
    if stride == 1:
        return i
    if isinstance(i, np.ndarray):
        return i * stride
    return int(i) * stride


# ---------------------------------------------------------------------------
# Scalar-domain helpers (uniform Python values <-> int64/float64 lanes).
# ---------------------------------------------------------------------------


def _wrap_to_i64(value: int) -> int:
    """Two's-complement 64-bit pattern of an arbitrary Python int."""
    return ((int(value) + _TWO63) % _TWO64) - _TWO63


def _as_int_operand(v):
    """Numpy-safe form of an integer operand (arrays pass through)."""
    if isinstance(v, np.ndarray):
        return v
    return _I64(_wrap_to_i64(v))


def _int_lanes_pair(a, b):
    return _as_int_operand(a) + _as_int_operand(b)


def _int_lanes(v, n: int) -> np.ndarray:
    if isinstance(v, np.ndarray):
        return v
    return np.full(n, _wrap_to_i64(v), dtype=_I64)


def _float_lanes(v, n: int) -> np.ndarray:
    if isinstance(v, np.ndarray):
        if v.dtype.kind == "f":
            return v
        return v.astype(np.float64)
    return np.full(n, float(v), dtype=np.float64)


def _is_float_value(v) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype.kind == "f"
    return isinstance(v, float)


def _float_lanes_to_int(values: np.ndarray, mask) -> np.ndarray:
    """Per-lane ``int(v)`` (truncation) with CPython's error behaviour."""
    if mask is not None:
        active = values[mask]
    else:
        active = values
    if np.isnan(active).any():
        raise ValueError("cannot convert float NaN to integer")
    if np.isinf(active).any():
        raise OverflowError("cannot convert float infinity to integer")
    safe = values
    if mask is not None:
        safe = np.where(mask, values, 0.0)
    truncated = np.trunc(safe)
    huge = np.abs(truncated) >= float(_TWO63)
    out = np.empty(values.shape, dtype=_I64)
    np.copyto(out, truncated.astype(_I64, casting="unsafe"), where=~huge)
    if huge.any():
        for lane in np.nonzero(huge)[0]:
            out[lane] = _wrap_to_i64(int(truncated[lane]))
    return out


def _wrap_signed_lanes(v, bits: int):
    """``_sw{bits}`` of the compiled backend, valid on both domains."""
    if not isinstance(v, np.ndarray):
        half = 1 << (bits - 1)
        return ((int(v) + half) & ((1 << bits) - 1)) - half
    if bits >= 64:
        return v  # int64 lanes already are the 64-bit pattern
    half = _I64(1 << (bits - 1))
    full = _I64((1 << bits) - 1)
    return ((v + half) & full) - half


def _popcount(mask: np.ndarray) -> int:
    return int(np.count_nonzero(mask))


# ---------------------------------------------------------------------------
# Control-flow bookkeeping.
# ---------------------------------------------------------------------------


class _Slot:
    __slots__ = ("value", "const")

    def __init__(self, value, const=None):
        self.value = value
        self.const = const


class _LoopCtx:
    __slots__ = ("break_mask", "continue_mask")

    def __init__(self, n: int):
        self.break_mask = np.zeros(n, dtype=bool)
        self.continue_mask = np.zeros(n, dtype=bool)


class _SwitchCtx:
    """Break target of a ``switch``: shares ``break_mask`` duck-typing
    with :class:`_LoopCtx` (a ``break`` binds to the innermost entry of
    ``frame.loops``), but ``continue`` skips over it to the loop."""

    __slots__ = ("break_mask",)

    def __init__(self, n: int):
        self.break_mask = np.zeros(n, dtype=bool)


class _Frame:
    __slots__ = ("function", "scopes", "ret_value", "ret_mask", "loops")

    def __init__(self, function: ast.FunctionDef, n: int):
        self.function = function
        self.scopes: List[Dict[str, _Slot]] = [{}]
        self.ret_value = None
        self.ret_mask = np.zeros(n, dtype=bool)
        self.loops: List[_LoopCtx] = []


# ---------------------------------------------------------------------------
# The evaluator.
# ---------------------------------------------------------------------------


class _Evaluator:
    def __init__(self, plan: _KernelPlan, counters, lanes):
        self.plan = plan
        self.counters = counters
        self.lanes = lanes  # _LaneLayout
        self.n = lanes.n
        self.ops_lanes = np.zeros(self.n, dtype=_I64)
        self.frames: List[_Frame] = []
        self._load_values: Dict[int, object] = {}
        self._local_storage: Dict[int, VArray] = {}

    # -- environment -------------------------------------------------------

    @property
    def frame(self) -> _Frame:
        return self.frames[-1]

    def _lookup(self, name: str) -> Optional[_Slot]:
        for scope in reversed(self.frame.scopes):
            slot = scope.get(name)
            if slot is not None:
                return slot
        return None

    def _const_lookup(self, name: str):
        slot = self._lookup(name)
        if slot is None:
            return None
        return slot.const

    def _bind(self, name: str, value, const=None) -> _Slot:
        slot = _Slot(value, const)
        self.frame.scopes[-1][name] = slot
        return slot

    # -- charging ----------------------------------------------------------

    def _charge(self, node: ast.Node, mask: np.ndarray) -> None:
        cost = self.plan.charges.get((id(node),))
        if cost:
            self.ops_lanes[mask] += cost

    # -- value plumbing ----------------------------------------------------

    def _decay(self, value, ctype):
        if isinstance(ctype, ArrayType):
            if isinstance(value, VNull):
                VNull._fault()
            return value.decayed()
        return value

    def _truthy_mask(self, value, mask: np.ndarray) -> np.ndarray:
        if isinstance(value, np.ndarray):
            return mask & (value != 0)
        if isinstance(value, (VPtr, VArray, VNull)):
            return mask.copy()
        return mask.copy() if value else np.zeros_like(mask)

    def _merge(self, old, new, mask: np.ndarray):
        """Masked phi: ``new`` on active lanes, ``old`` elsewhere."""
        if bool(mask.all()):
            return new
        if old is new:
            return new
        old_ptr = isinstance(old, (VPtr, VArray, VNull))
        new_ptr = isinstance(new, (VPtr, VArray, VNull))
        if old_ptr or new_ptr:
            if isinstance(old, VPtr) and isinstance(new, VPtr) \
                    and old.array is new.array and old.base is new.base:
                offset = np.where(mask, _int_lanes(new.offset, self.n),
                                  _int_lanes(old.offset, self.n))
                return VPtr(new.array, new.element_type, new.space, new.tally,
                            new.length, offset, new.base)
            if isinstance(old, VNull) and isinstance(new, VNull):
                return new
            if old is _VNULL and isinstance(new, VArray):
                # decl-default replaced by an array binding: lanes outside
                # the mask could only observe this through UB.
                return new
            raise VectorizeError(
                "divergent pointer values cannot be merged on the vector "
                "backend (lanes would point into different objects)"
            )
        if not isinstance(old, np.ndarray) and not isinstance(new, np.ndarray):
            if isinstance(old, float) or isinstance(new, float):
                if isinstance(old, float) and isinstance(new, float):
                    if (old == new and math.copysign(1.0, old) == math.copysign(1.0, new)) \
                            or (math.isnan(old) and math.isnan(new)):
                        return new
            elif old == new:
                return new
        if _is_float_value(old) or _is_float_value(new):
            return np.where(mask, _float_lanes(new, self.n), _float_lanes(old, self.n))
        return np.where(mask, _int_lanes(new, self.n), _int_lanes(old, self.n))

    def _mask_unsigned(self, value, ctype) -> object:
        if not (isinstance(ctype, ScalarType) and ctype.is_integer()
                and not ctype.signed and not ctype.is_bool()):
            return value
        if isinstance(value, np.ndarray):
            if ctype.size == 8:
                return value  # 64-bit patterns are already "masked"
            return value & _I64((1 << ctype.bits) - 1)
        return value & ((1 << ctype.bits) - 1)

    # -- statements --------------------------------------------------------

    def exec_stmt_list(self, statements, mask: np.ndarray) -> np.ndarray:
        for stmt in statements:
            if not mask.any():
                return mask
            mask = self.exec_stmt(stmt, mask)
        return mask

    def exec_stmt(self, stmt: ast.Stmt, mask: np.ndarray) -> np.ndarray:
        kind = type(stmt).__name__
        handler = getattr(self, f"_stmt_{kind}")
        return handler(stmt, mask)

    def _stmt_CompoundStmt(self, stmt, mask):
        self.frame.scopes.append({})
        out = self.exec_stmt_list(stmt.statements, mask)
        self.frame.scopes.pop()
        return out

    def _stmt_DeclStmt(self, stmt, mask):
        for decl in stmt.decls:
            self._exec_decl(decl, mask)
        return mask

    def _exec_decl(self, decl: ast.VarDecl, mask: np.ndarray) -> None:
        ctype = decl.declared_type
        if decl.address_space == "local":
            self._bind(decl.name, self._local_storage[id(decl)])
            return
        if isinstance(ctype, ArrayType):
            self._bind(decl.name, self._make_private_array(decl, ctype))
            return
        if decl.init is not None:
            self._charge(decl.init, mask)
            value = self.eval(decl.init, mask)
            value = self._convert_relaxed(value, decl.init.ctype, ctype, mask)
        elif isinstance(ctype, PointerType):
            value = _VNULL
        elif ctype.is_float():
            value = 0.0
        else:
            value = 0
        slot = self._bind(decl.name, value)
        if decl.is_const and decl.init is not None and isinstance(ctype, ScalarType):
            folded = fold_constants(decl.init, self._const_lookup)
            if folded is not None:
                slot.const = convert_scalar(folded, ctype)

    def _make_private_array(self, decl: ast.VarDecl, ctype: ArrayType) -> VArray:
        from .interp import _flatten_initializer

        flat = ctype.flat_length()
        element = ctype.base_element()
        storage = np.zeros(self.n * flat, dtype=numpy_dtype(element))
        if decl.init is not None:
            values = [convert_scalar(v, element) for v in _flatten_initializer(decl.init)]
            init_row = np.zeros(flat, dtype=numpy_dtype(element))
            init_row[: len(values)] = values
            storage.reshape(self.n, flat)[:, :] = init_row
        base = np.arange(self.n, dtype=_I64) * flat
        vptr = VPtr(storage, element, "private", None, flat, 0, base)
        return VArray(vptr, ctype.element)

    def _stmt_ExprStmt(self, stmt, mask):
        expr = stmt.expr
        if expr is None:
            return mask
        if isinstance(expr, ast.Call) and getattr(expr, "kind", "") == "builtin" \
                and expr.resolved.kind == "barrier":
            self.eval(expr.args[0], mask)
            self.counters.barriers += _popcount(mask)
            self._check_barrier_mask(mask)
            return mask
        self._charge(expr, mask)
        self.eval(expr, mask)
        return mask

    def _check_barrier_mask(self, mask: np.ndarray) -> None:
        lanes = self.lanes
        counts = mask.reshape(lanes.num_groups, lanes.group_size).sum(axis=1)
        bad = (counts != 0) & (counts != lanes.group_size)
        if bad.any():
            raise KernelFault(
                "barrier divergence: some work-items of a group reached a "
                "barrier other items skipped"
            )

    def _stmt_IfStmt(self, stmt, mask):
        self._charge(stmt.condition, mask)
        condition = self.eval(stmt.condition, mask)
        then_mask = self._truthy_mask(condition, mask)
        else_mask = mask & ~then_mask
        then_out = then_mask
        if then_mask.any():
            self.frame.scopes.append({})
            then_out = self.exec_stmt(stmt.then_branch, then_mask)
            self.frame.scopes.pop()
        else_out = else_mask
        if stmt.else_branch is not None and else_mask.any():
            self.frame.scopes.append({})
            else_out = self.exec_stmt(stmt.else_branch, else_mask)
            self.frame.scopes.pop()
        return then_out | else_out

    def _loop_condition(self, condition, live):
        """Charge + evaluate a loop condition; live lanes that fail it
        exit the loop (they still pay for the failing check)."""
        if condition is None:
            return live
        self._charge(condition, live)
        value = self.eval(condition, live)
        return self._truthy_mask(value, live)

    def _stmt_WhileStmt(self, stmt, mask):
        done = np.zeros_like(mask)
        live = mask
        while live.any():
            passed = self._loop_condition(stmt.condition, live)
            done |= live & ~passed
            live = passed
            if not live.any():
                break
            ctx = _LoopCtx(self.n)
            self.frame.loops.append(ctx)
            self.frame.scopes.append({})
            out = self.exec_stmt(stmt.body, live)
            self.frame.scopes.pop()
            self.frame.loops.pop()
            done |= ctx.break_mask
            live = out | ctx.continue_mask
        return done

    def _stmt_ForStmt(self, stmt, mask):
        self.frame.scopes.append({})
        if stmt.init is not None:
            self.exec_stmt(stmt.init, mask)
        done = np.zeros_like(mask)
        live = mask
        while live.any():
            passed = self._loop_condition(stmt.condition, live)
            done |= live & ~passed
            live = passed
            if not live.any():
                break
            ctx = _LoopCtx(self.n)
            self.frame.loops.append(ctx)
            self.frame.scopes.append({})
            out = self.exec_stmt(stmt.body, live)
            self.frame.scopes.pop()
            self.frame.loops.pop()
            done |= ctx.break_mask
            live = out | ctx.continue_mask
            if stmt.increment is not None and live.any():
                self._charge(stmt.increment, live)
                self.eval(stmt.increment, live)
        self.frame.scopes.pop()
        return done

    def _stmt_DoStmt(self, stmt, mask):
        done = np.zeros_like(mask)
        live = mask
        while live.any():
            ctx = _LoopCtx(self.n)
            self.frame.loops.append(ctx)
            self.frame.scopes.append({})
            out = self.exec_stmt(stmt.body, live)
            self.frame.scopes.pop()
            self.frame.loops.pop()
            done |= ctx.break_mask
            check = out | ctx.continue_mask
            if not check.any():
                break
            self._charge(stmt.condition, check)
            value = self.eval(stmt.condition, check)
            passed = self._truthy_mask(value, check)
            done |= check & ~passed
            live = passed
        return done

    def _stmt_ReturnStmt(self, stmt, mask):
        frame = self.frame
        if frame.function.is_kernel or stmt.value is None:
            frame.ret_mask |= mask
            return np.zeros_like(mask)
        self._charge(stmt.value, mask)
        value = self.eval(stmt.value, mask)
        value = self._convert_relaxed(value, stmt.value.ctype,
                                      frame.function.return_type, mask)
        if frame.ret_value is None and not frame.ret_mask.any():
            frame.ret_value = value if bool(mask.all()) else self._merge(
                0.0 if _is_float_value(value) else 0, value, mask)
        else:
            frame.ret_value = self._merge(frame.ret_value, value, mask)
        frame.ret_mask |= mask
        return np.zeros_like(mask)

    def _stmt_BreakStmt(self, stmt, mask):
        self.frame.loops[-1].break_mask |= mask
        return np.zeros_like(mask)

    def _stmt_ContinueStmt(self, stmt, mask):
        # continue binds to the innermost *loop*, skipping switch contexts.
        for ctx in reversed(self.frame.loops):
            if isinstance(ctx, _LoopCtx):
                ctx.continue_mask |= mask
                break
        return np.zeros_like(mask)

    @staticmethod
    def _switch_pattern(value):
        """A case/subject value as an int64 bit pattern (matching the
        lane representation of 64-bit integers)."""
        if isinstance(value, (int, np.integer)) and not isinstance(value, np.ndarray):
            value = int(value)
            if value >= _TWO63:
                value -= _TWO64
            return _I64(value)
        return value

    def _stmt_SwitchStmt(self, stmt, mask):
        # The per-item compiler charges subject cost + one comparison per
        # case upfront (recorded under the (id, "switch") key).
        cost = self.plan.charges.get((id(stmt), "switch"))
        if cost:
            self.ops_lanes[mask] += cost
        subject = self._switch_pattern(self.eval(stmt.subject, mask))
        num_cases = len(stmt.cases)
        # Entry point per lane: the first matching case in case order,
        # else the default, else past the end (no case runs).
        start = np.full(self.n, num_cases, dtype=_I64)
        unmatched = mask.copy()
        default_index = num_cases
        for index, case in enumerate(stmt.cases):
            if case.value is None:
                default_index = index
                continue
            value = self._switch_pattern(self.eval(case.value, mask))
            eq = unmatched & np.equal(subject, value)
            start[eq] = index
            unmatched &= ~eq
        if default_index < num_cases:
            start[unmatched] = default_index
        # Masked fallthrough: each case body runs with the union of
        # lanes that entered at or before it and haven't broken out.
        ctx = _SwitchCtx(self.n)
        self.frame.loops.append(ctx)
        current = np.zeros_like(mask)
        for index, case in enumerate(stmt.cases):
            current = current | (mask & (start == index))
            if not current.any():
                continue
            self.frame.scopes.append({})
            current = self.exec_stmt_list(case.body, current)
            self.frame.scopes.pop()
        self.frame.loops.pop()
        # Lanes that matched nothing (no default) pass straight through.
        return current | ctx.break_mask | (mask & (start == num_cases))

    # -- expressions -------------------------------------------------------

    def eval(self, expr: ast.Expr, mask: np.ndarray):
        if not isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.CharLiteral)):
            folded = fold_constants(expr, self._const_lookup)
            if folded is not None:
                return folded
        handler = getattr(self, f"_eval_{type(expr).__name__}")
        return handler(expr, mask)

    def _eval_IntLiteral(self, expr, mask):
        return convert_scalar(expr.value, expr.ctype)

    def _eval_FloatLiteral(self, expr, mask):
        return float(expr.value)

    def _eval_CharLiteral(self, expr, mask):
        return convert_scalar(expr.value, expr.ctype)

    def _eval_Identifier(self, expr, mask):
        constant = getattr(expr, "constant_value", None)
        if constant is not None:
            return constant
        slot = self._lookup(expr.name)
        if slot is not None:
            return slot.value
        return self.plan.globals[expr.name]

    def _eval_SizeofExpr(self, expr, mask):
        queried = expr.queried_type if expr.queried_type is not None else expr.operand.ctype
        return queried.sizeof()

    def _eval_CommaExpr(self, expr, mask):
        for part in expr.parts[:-1]:
            self.eval(part, mask)
        return self.eval(expr.parts[-1], mask)

    def _eval_UnaryOp(self, expr, mask):
        op = expr.op
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, mask, prefix=True)
        if op == "*":
            pointer = self.eval(expr.operand, mask)
            if isinstance(pointer, VNull):
                VNull._fault()
            return pointer.gather(0, mask)
        if op == "&":
            return self._address_of(expr, mask)
        value = self.eval(expr.operand, mask)
        if op == "!":
            if isinstance(value, np.ndarray):
                return (value == 0).astype(_I64)
            if isinstance(value, (VPtr, VArray, VNull)):
                return 0
            return 0 if value else 1
        if op == "~":
            result = ~value if not isinstance(value, np.ndarray) else ~value
        elif op == "-":
            result = -value
        else:  # unary +
            result = +value
        return self._mask_unsigned(result, expr.ctype)

    def _eval_PostfixOp(self, expr, mask):
        return self._incdec(expr.operand, expr.op, mask, prefix=False)

    def _address_of(self, expr, mask):
        inner = expr.operand
        if isinstance(inner, ast.Index):
            if isinstance(inner.base.ctype, ArrayType):
                flattened = self._flatten_access(inner, mask)
                if flattened is not None:
                    root, flat = flattened
                    return root.pointer.add(flat)
                base = self.eval(inner.base, mask)
                index = self.eval(inner.index, mask)
                return base.index(index).decayed()
            base = self.eval(inner.base, mask)
            index = self.eval(inner.index, mask)
            if isinstance(base, VNull):
                VNull._fault()
            return base.add(index)
        if isinstance(inner, ast.UnaryOp) and inner.op == "*":
            return self.eval(inner.operand, mask)
        if isinstance(inner, ast.Identifier) and isinstance(inner.ctype, ArrayType):
            return self.eval(inner, mask).decayed()
        raise KernelFault("taking the address of a plain variable is not supported")

    def _incdec(self, target, op, mask, prefix: bool):
        delta = 1 if op == "++" else -1
        ctype = target.ctype
        if isinstance(target, ast.Identifier):
            slot = self._lookup(target.name)
            old = slot.value
            if isinstance(ctype, PointerType):
                if isinstance(old, VNull):
                    VNull._fault()
                new = old.add(delta)
            else:
                new = self._mask_unsigned(_add_scalar(old, delta), ctype)
            slot.value = self._merge(old, new, mask)
            return new if prefix else old
        pointer, index = self._lvalue(target, mask)
        current = pointer.gather(index, mask)
        if isinstance(ctype, PointerType):
            new = current.add(delta)
        else:
            new = self._mask_unsigned(_add_scalar(current, delta), ctype)
        pointer.scatter(index, new, mask)
        return new if prefix else current

    def _lvalue(self, expr, mask) -> Tuple[VPtr, object]:
        """Pointer + element index for a memory lvalue (mirrors
        ``_compile_lvalue``; variable targets are handled by callers)."""
        if isinstance(expr, ast.Index):
            if isinstance(expr.base.ctype, ArrayType):
                flattened = self._flatten_access(expr, mask)
                assert flattened is not None, "array rows are not assignable"
                root, flat = flattened
                return root.pointer, flat
            base = self.eval(expr.base, mask)
            index = self.eval(expr.index, mask)
            if isinstance(base, VNull):
                VNull._fault()
            return base, index
        if isinstance(expr, ast.UnaryOp) and expr.op == "*":
            pointer = self.eval(expr.operand, mask)
            if isinstance(pointer, VNull):
                VNull._fault()
            return pointer, 0
        raise KernelFault(f"expression is not assignable: {type(expr).__name__}")

    def _flatten_access(self, expr: ast.Index, mask):
        """Mirror of ``_flatten_array_access``: full multi-dim accesses
        collapse to (root VArray, flat index value)."""
        if isinstance(expr.ctype, ArrayType):
            return None
        indices: List[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index) and isinstance(node.base.ctype, ArrayType):
            indices.append(node.index)
            node = node.base
        if not isinstance(node.ctype, ArrayType) or not indices:
            return None
        indices.reverse()
        strides: List[int] = []
        ctype: CType = node.ctype
        for _ in indices:
            element = ctype.element
            strides.append(element.flat_length() if isinstance(element, ArrayType) else 1)
            ctype = element
        root = self.eval(node, mask)
        flat = None
        for index_expr, stride in zip(indices, strides):
            term = _mul_index(self.eval(index_expr, mask), stride)
            flat = term if flat is None else _add_scalar(flat, term)
        return root, flat

    def _eval_Index(self, expr, mask):
        source = self.plan.cse.get(id(expr))
        if source is not None:
            value = self._load_values.get(source, _MISSING)
            if value is not _MISSING:
                return value
            # Unreachable once lvalues compile before values; kept as a
            # hard error rather than silently double-loading.
            raise KernelFault("internal error: CSE source was not materialized")
        base_type = expr.base.ctype
        if isinstance(base_type, ArrayType):
            flattened = self._flatten_access(expr, mask)
            if flattened is None:
                base = self.eval(expr.base, mask)
                index = self.eval(expr.index, mask)
                return base.index(index)
            root, flat = flattened
            value = root.pointer.gather(flat, mask)
        else:
            base = self.eval(expr.base, mask)
            index = self.eval(expr.index, mask)
            if isinstance(base, VNull):
                VNull._fault()
            value = base.gather(index, mask)
        self._load_values[id(expr)] = value
        return value

    def _eval_Cast(self, expr, mask):
        target = expr.target_type
        if target.is_void():
            self.eval(expr.operand, mask)
            return 0
        value = self.eval(expr.operand, mask)
        if isinstance(value, (VPtr, VArray, VNull)):
            raise KernelFault("cannot convert a pointer value to a scalar")
        return self._convert_exact(value, expr.operand.ctype, target, mask)

    def _eval_Conditional(self, expr, mask):
        condition = self.eval(expr.condition, mask)
        then_mask = self._truthy_mask(condition, mask)
        else_mask = mask & ~then_mask

        def arm(branch, sub):
            value = self._decay(self.eval(branch, sub), branch.ctype)
            return self._convert_relaxed(value, branch.ctype, expr.ctype, sub)

        if not else_mask.any():
            return arm(expr.then_expr, mask)
        if not then_mask.any():
            return arm(expr.else_expr, mask)
        then_value = arm(expr.then_expr, then_mask)
        else_value = arm(expr.else_expr, else_mask)
        return self._merge(else_value, then_value, then_mask)

    def _eval_Assignment(self, expr, mask):
        target_type = expr.target.ctype
        if isinstance(expr.target, ast.Identifier):
            value = self._decay(self.eval(expr.value, mask), expr.value.ctype)
            slot = self._lookup(expr.target.name)
            if expr.op == "=":
                new = self._convert_relaxed(value, expr.value.ctype, target_type, mask)
            else:
                new = self._compound(slot.value, value, expr, mask)
            slot.value = self._merge(slot.value, new, mask)
            return new
        pointer, index = self._lvalue(expr.target, mask)
        value = self._decay(self.eval(expr.value, mask), expr.value.ctype)
        if expr.op == "=":
            stored = self._convert_relaxed(value, expr.value.ctype, target_type, mask)
        else:
            current = pointer.gather(index, mask)
            stored = self._compound(current, value, expr, mask)
        pointer.scatter(index, stored, mask)
        return stored

    def _compound(self, current, value, expr: ast.Assignment, mask):
        op = expr.op[:-1]
        target_type = expr.target.ctype
        if isinstance(target_type, PointerType):
            if isinstance(current, VNull):
                VNull._fault()
            delta = value if op == "+" else _neg_scalar(value)
            return current.add(delta)
        value_type = expr.value.ctype
        if isinstance(value_type, ScalarType) and value_type.is_float() and target_type.is_integer():
            if op == "/":
                combined = self._fdiv(current, value, mask)
            else:
                combined = self._arith(op, current, value, float_domain=True)
            return self._convert_relaxed(combined, value_type, target_type, mask)
        if op == "/":
            if target_type.is_float():
                combined = self._fdiv(current, value, mask)
            else:
                combined = self._idiv(current, value, target_type, mask)
        elif op == "%":
            combined = self._imod(current, value, target_type, mask)
        elif op in ("<<", ">>"):
            combined = self._shift(op, current, value, target_type)
        else:
            combined = self._arith(op, current, value,
                                   float_domain=target_type.is_float())
        return self._mask_unsigned(combined, target_type)

    def _eval_BinaryOp(self, expr, mask):
        op = expr.op
        if op in ("&&", "||"):
            return self._logical(expr, mask)
        left_ctype = expr.left.ctype
        right_ctype = expr.right.ctype
        left = self.eval(expr.left, mask)
        right = self.eval(expr.right, mask)
        if isinstance(left_ctype, (PointerType, ArrayType)) \
                or isinstance(right_ctype, (PointerType, ArrayType)):
            return self._pointer_binop(expr, left, right, mask)
        op_type: ScalarType = expr.op_type
        is_unsigned = op_type.is_integer() and not op_type.signed and not op_type.is_bool()
        if op in _CMP_OPS:
            if is_unsigned:
                left = self._mask_unsigned(left, op_type)
                right = self._mask_unsigned(right, op_type)
            return self._compare(op, left, right, op_type)
        if op == "/":
            if op_type.is_float():
                return self._fdiv(left, right, mask)
            if is_unsigned:
                left = self._mask_unsigned(left, op_type)
                right = self._mask_unsigned(right, op_type)
            return self._idiv(left, right, op_type, mask)
        if op == "%":
            if is_unsigned:
                left = self._mask_unsigned(left, op_type)
                right = self._mask_unsigned(right, op_type)
            return self._imod(left, right, op_type, mask)
        if op in ("<<", ">>"):
            if op == ">>" and is_unsigned:
                left = self._mask_unsigned(left, op_type)
            return self._mask_unsigned(self._shift(op, left, right, op_type), op_type)
        # Strength reduction, mirrored from the compiled backend (it
        # changes float signed-zero results: -0.0 + 0 stays -0.0).
        if op == "*":
            if _is_literal(expr.right, 1, 1.0):
                return left
            if _is_literal(expr.left, 1, 1.0):
                return right
            if _is_literal(expr.right, -1, -1.0):
                return self._mask_unsigned(_neg_scalar(left), op_type)
            if _is_literal(expr.left, -1, -1.0):
                return self._mask_unsigned(_neg_scalar(right), op_type)
        elif op in ("+", "-") and _is_literal(expr.right, 0, 0.0):
            return left
        elif op == "+" and _is_literal(expr.left, 0, 0.0):
            return right
        combined = self._arith(op, left, right, float_domain=op_type.is_float())
        return self._mask_unsigned(combined, op_type)

    # -- arithmetic kernels ------------------------------------------------

    def _arith(self, op: str, left, right, float_domain: bool):
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return _PY_OPS[op](left, right)
        if float_domain:
            left = _float_lanes(left, self.n)
            right = _float_lanes(right, self.n)
        else:
            left = _int_lanes(left, self.n)
            right = _int_lanes(right, self.n)
        return _PY_OPS[op](left, right)

    def _compare(self, op: str, left, right, op_type: ScalarType):
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return _PY_OPS[op](left, right)
        if op_type.is_float():
            left = _float_lanes(left, self.n)
            right = _float_lanes(right, self.n)
        elif op_type.is_integer() and not op_type.signed and op_type.size == 8 \
                and not op_type.is_bool():
            left = _int_lanes(left, self.n).astype(_U64)
            right = _int_lanes(right, self.n).astype(_U64)
        else:
            left = _int_lanes(left, self.n)
            right = _int_lanes(right, self.n)
        return _PY_OPS[op](left, right).astype(_I64)

    def _fdiv(self, left, right, mask):
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return c_fdiv(left, right)
        la = _float_lanes(left, self.n)
        ra = _float_lanes(right, self.n)
        result = np.divide(la, ra)
        # c_fdiv returns the canonical positive quiet NaN for 0/0 and
        # nan/0, where numpy emits the hardware default (sign bit set on
        # x86) — canonicalize those lanes so buffers stay bit-exact.
        fresh_nan = (ra == 0.0) & ((la == 0.0) | np.isnan(la))
        if fresh_nan.any():
            result = np.where(fresh_nan, math.nan, result)
        return result

    def _idiv(self, left, right, op_type: ScalarType, mask):
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return c_idiv(left, right)
        la = _int_lanes(left, self.n)
        ra = _int_lanes(right, self.n)
        if (mask & (ra == 0)).any():
            raise KernelFault("integer division by zero")
        safe = np.where(ra == 0, _I64(1), ra)
        if not op_type.signed and op_type.size == 8 and not op_type.is_bool():
            return (la.astype(_U64) // safe.astype(_U64)).astype(_I64)
        quotient = np.abs(la) // np.abs(safe)
        return np.where((la < 0) ^ (safe < 0), -quotient, quotient)

    def _imod(self, left, right, op_type: ScalarType, mask):
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return c_imod(left, right)
        la = _int_lanes(left, self.n)
        ra = _int_lanes(right, self.n)
        if (mask & (ra == 0)).any():
            raise KernelFault("integer remainder by zero")
        safe = np.where(ra == 0, _I64(1), ra)
        if not op_type.signed and op_type.size == 8 and not op_type.is_bool():
            lu = la.astype(_U64)
            su = safe.astype(_U64)
            return (lu - (lu // su) * su).astype(_I64)
        quotient = np.abs(la) // np.abs(safe)
        quotient = np.where((la < 0) ^ (safe < 0), -quotient, quotient)
        return la - quotient * safe

    def _shift(self, op: str, left, right, op_type: ScalarType):
        bits = op_type.bits
        if not isinstance(left, np.ndarray) and not isinstance(right, np.ndarray):
            return _PY_OPS[op](left, right % bits)
        la = _int_lanes(left, self.n)
        amount = _int_lanes(right, self.n) % _I64(bits)
        if op == "<<":
            return la << amount
        if not op_type.signed and op_type.size == 8 and not op_type.is_bool():
            return (la.astype(_U64) >> amount.astype(_U64)).astype(_I64)
        return la >> amount

    def _logical(self, expr, mask):
        left = self.eval(expr.left, mask)
        if not isinstance(left, np.ndarray):
            left_true = bool(left) if not isinstance(left, (VPtr, VArray, VNull)) else True
            if expr.op == "&&" and not left_true:
                return 0
            if expr.op == "||" and left_true:
                return 1
            right = self.eval(expr.right, mask)
            if isinstance(right, np.ndarray):
                return (right != 0).astype(_I64)
            if isinstance(right, (VPtr, VArray, VNull)):
                return 1
            return 1 if right else 0
        left_true = mask & (left != 0)
        sub = left_true if expr.op == "&&" else mask & ~left_true
        if sub.any():
            right = self.eval(expr.right, sub)
            right01 = self._truthy_mask(right, sub).astype(_I64)
        else:
            right01 = np.zeros(self.n, dtype=_I64)
        if expr.op == "&&":
            return np.where(left_true, right01, _I64(0))
        return np.where(left_true, _I64(1), right01)

    def _pointer_binop(self, expr, left, right, mask):
        op = expr.op
        left = self._decay(left, expr.left.ctype)
        right = self._decay(right, expr.right.ctype)
        left_ptr = isinstance(left, (VPtr, VNull))
        right_ptr = isinstance(right, (VPtr, VNull))
        if op == "+":
            pointer, delta = (left, right) if left_ptr else (right, left)
            if isinstance(pointer, VNull):
                VNull._fault()
            return pointer.add(delta)
        if op == "-":
            if isinstance(left, VNull):
                VNull._fault()
            if left_ptr and right_ptr:
                return left.diff(right)
            return left.add(_neg_scalar(right))
        if op in ("==", "!="):
            equal = self._ptr_eq(left, right)
            if op == "!=":
                if isinstance(equal, np.ndarray):
                    return (equal == 0).astype(_I64)
                return 0 if equal else 1
            if isinstance(equal, np.ndarray):
                return equal
            return 1 if equal else 0
        for value in (left, right):
            if isinstance(value, VNull):
                VNull._fault()
        return self._compare(op, left.offset, right.offset,
                             ScalarType("long", 8, signed=True))

    def _ptr_eq(self, left, right):
        if not isinstance(left, VPtr) or not isinstance(right, VPtr):
            return 0
        if left.array is not right.array:
            return 0
        lo, ro = left.offset, right.offset
        if isinstance(lo, np.ndarray) or isinstance(ro, np.ndarray):
            return (_int_lanes(lo, self.n) == _int_lanes(ro, self.n)).astype(_I64)
        return lo == ro

    # -- calls -------------------------------------------------------------

    def _eval_Call(self, expr, mask):
        if getattr(expr, "kind", "") == "user":
            return self._call_user(expr, mask)
        resolved: ResolvedBuiltin = expr.resolved
        if resolved.kind == "workitem":
            return self._call_workitem(expr, resolved, mask)
        if resolved.kind == "barrier":
            raise KernelFault("barrier() must be a standalone statement")
        if resolved.name in ("mem_fence", "read_mem_fence", "write_mem_fence"):
            self.eval(expr.args[0], mask)
            return 0
        args = []
        for arg, param_type in zip(expr.args, resolved.param_types):
            value = self.eval(arg, mask)
            args.append(self._convert_relaxed(value, arg.ctype, param_type, mask))
        if resolved.kind == "plain":
            fast = self._builtin_fast_path(resolved, args, mask)
            if fast is not _MISSING:
                return fast
        return self._builtin_per_lane(resolved, args, mask)

    def _call_user(self, expr, mask):
        target: ast.FunctionDef = expr.callee_def
        args = []
        for arg, param in zip(expr.args, target.params):
            value = self._decay(self.eval(arg, mask), arg.ctype)
            args.append(self._convert_relaxed(value, arg.ctype, param.declared_type, mask))
        frame = _Frame(target, self.n)
        for param, value in zip(target.params, args):
            frame.scopes[0][param.name] = _Slot(value)
        self.frames.append(frame)
        out = self.exec_stmt_list(target.body.statements, mask)
        self.frames.pop()
        if target.return_type.is_void():
            return 0
        if out.any():
            raise KernelFault(
                f"function {target.name} finished without returning a value")
        return frame.ret_value

    def _call_workitem(self, expr, resolved: ResolvedBuiltin, mask):
        lanes = self.lanes
        if resolved.name == "get_work_dim":
            return lanes.work_dim
        if expr.args and isinstance(expr.args[0], ast.IntLiteral) \
                and 0 <= expr.args[0].value <= 2:
            return lanes.query(resolved.name, expr.args[0].value)
        dim = self.eval(expr.args[0], mask)
        if not isinstance(dim, np.ndarray):
            return lanes.query(resolved.name, int(dim))
        result = np.full(self.n, lanes.query_default(resolved.name), dtype=_I64)
        for d in (0, 1, 2):
            value = lanes.query(resolved.name, d)
            result = np.where(dim == d, _int_lanes(value, self.n), result)
        return result

    # -- builtins ----------------------------------------------------------

    def _builtin_fast_path(self, resolved: ResolvedBuiltin, args, mask):
        name = _strip_prefix(resolved.name)
        handler = _FAST_BUILTINS.get(name)
        if handler is None:
            return _MISSING
        if name in ("min", "max", "clamp", "abs"):
            # Safe in the int64 domain except for 64-bit unsigned values
            # (stored as bit patterns): those take the per-lane path.
            param = resolved.param_types[0]
            if isinstance(param, ScalarType) and param.is_integer() \
                    and not param.signed and param.size == 8:
                return _MISSING
        if not any(isinstance(a, np.ndarray) for a in args):
            return _MISSING  # uniform: per-lane path computes once
        domain = _float_lanes if resolved.param_types and \
            isinstance(resolved.param_types[0], ScalarType) and \
            resolved.param_types[0].is_float() else _int_lanes
        lanes = [domain(a, self.n) if isinstance(resolved.param_types[i], ScalarType)
                 and resolved.param_types[i].is_float()
                 else (_float_lanes(a, self.n) if _is_float_value(a) else _int_lanes(a, self.n))
                 for i, a in enumerate(args)]
        result = handler(*lanes)
        if isinstance(resolved.result_type, ScalarType) and resolved.result_type.is_integer() \
                and not resolved.result_type.signed and resolved.name not in ("abs",):
            result = self._mask_unsigned(result, resolved.result_type)
        return result

    def _builtin_per_lane(self, resolved: ResolvedBuiltin, args, mask):
        result_type = resolved.result_type
        result_float = isinstance(result_type, ScalarType) and result_type.is_float()
        mask_result = isinstance(result_type, ScalarType) and result_type.is_integer() \
            and not result_type.signed and resolved.name not in ("abs",)
        if not any(isinstance(a, np.ndarray) for a in args):
            value = self._apply_one(resolved, args)
            if mask_result:
                value = value & ((1 << result_type.bits) - 1)
            return value
        out = np.zeros(self.n, dtype=np.float64 if result_float else _I64)
        for lane in np.nonzero(mask)[0]:
            lane_args = []
            for a, param_type in zip(args, resolved.param_types):
                if isinstance(a, np.ndarray):
                    v = a[int(lane)].item()
                    if isinstance(param_type, ScalarType) and param_type.is_integer() \
                            and not param_type.signed and v < 0:
                        v += _TWO64  # 64-bit pattern -> exact unsigned value
                else:
                    v = a
                lane_args.append(v)
            value = self._apply_one(resolved, lane_args)
            if mask_result:
                value = value & ((1 << result_type.bits) - 1)
            if result_float:
                out[lane] = float(value)
            else:
                out[lane] = _wrap_to_i64(value)
        return out

    def _apply_one(self, resolved: ResolvedBuiltin, lane_args):
        if resolved.kind == "plain":
            return resolved.impl(*lane_args)
        return apply_builtin(resolved, tuple(lane_args))

    # -- conversions -------------------------------------------------------

    def _convert_relaxed(self, value, source, target, mask):
        """Mirror of ``convert_code`` (relaxed fast-math conversions)."""
        if source is None or source == target:
            return value
        if isinstance(source, ArrayType):
            return value
        if isinstance(target, PointerType) or isinstance(source, PointerType):
            return value
        if target.is_bool():
            if isinstance(value, np.ndarray):
                return (value != 0).astype(_I64)
            if isinstance(value, (VPtr, VArray, VNull)):
                return 1
            return 1 if value else 0
        if target.is_float():
            if source.is_integer():
                return self._int_value_to_float(value, source)
            return value
        if source.is_float():
            if isinstance(value, np.ndarray):
                value = _float_lanes_to_int(value, mask)
            else:
                value = int(value)
            if not target.signed:
                return self._mask_unsigned(value, target)
            return value
        if not target.signed:
            return self._mask_unsigned(value, target)
        if source.signed and source.size <= target.size:
            return value
        return _wrap_signed_lanes(value, target.bits)

    def _int_value_to_float(self, value, source):
        if not isinstance(value, np.ndarray):
            return float(value)
        if isinstance(source, ScalarType) and source.is_integer() \
                and not source.signed and source.size == 8:
            return value.astype(_U64).astype(np.float64)
        return value.astype(np.float64)

    def _convert_exact(self, value, source, target: ScalarType, mask):
        """Mirror of ``convert_scalar`` (explicit casts, exact)."""
        if not isinstance(value, np.ndarray):
            return convert_scalar(value, target)
        if target.is_bool():
            return (value != 0).astype(_I64)
        if target.is_integer():
            if value.dtype.kind == "f":
                value = _float_lanes_to_int(value, mask)
            if target.signed:
                return _wrap_signed_lanes(value, target.bits)
            return self._mask_unsigned(value, target)
        # Float target: round through the declared width.
        if value.dtype.kind != "f":
            value = self._int_value_to_float(value, source)
        if target.size == 8:
            return value
        if target.size == 4:
            return value.astype(np.float32).astype(np.float64)
        return value.astype(np.float16).astype(np.float64)


def _add_scalar(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if _is_float_value(a) or _is_float_value(b):
            return a + b
        return _int_lanes_pair(a, b)
    return a + b


def _neg_scalar(v):
    return -v


_PY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "%": lambda a, b: a % b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _np_fmin(x, y):
    return np.where(((x != x) | (y < x)) & (y == y), y, np.where(x == x, x, y))


def _np_fmax(x, y):
    return np.where(((x != x) | (y > x)) & (y == y), y, np.where(x == x, x, y))


def _np_clamp(x, lo, hi):
    t = np.where(lo > x, lo, x)
    return np.where(hi < t, hi, t)


def _np_rsqrt(x):
    positive = x > 0
    return np.where(positive, 1.0 / np.sqrt(np.where(positive, x, 1.0)), np.inf)


_FAST_BUILTINS = {
    "sqrt": np.sqrt,
    "fabs": np.abs,
    "fmin": _np_fmin,
    "fmax": _np_fmax,
    "min": lambda x, y: np.where(y < x, y, x),
    "max": lambda x, y: np.where(y > x, y, x),
    "clamp": _np_clamp,
    "fma": lambda a, b, c: a * b + c,
    "mad": lambda a, b, c: a * b + c,
    "step": lambda edge, x: np.where(x < edge, 0.0, 1.0),
    "copysign": np.copysign,
    "isnan": lambda x: np.isnan(x).astype(_I64),
    "isinf": lambda x: np.isinf(x).astype(_I64),
    "isfinite": lambda x: np.isfinite(x).astype(_I64),
    "sign": lambda x: np.where((x != x) | (x == 0.0), 0.0 * x, np.copysign(1.0, x)),
    "abs": np.abs,
    "rsqrt": _np_rsqrt,
    "mix": lambda x, y, a: x + (y - x) * a,
    "fdim": lambda x, y: np.where(0.0 > x - y, 0.0, x - y),
}


# ---------------------------------------------------------------------------
# Lane layout: the work-item context of every lane, vectorized.
# ---------------------------------------------------------------------------


class _LaneLayout:
    """Per-lane work-item identities for ``selected_groups x local_ids``,
    lanes ordered group-major (matching the per-item executor's loops)."""

    def __init__(self, ndrange, selected_groups, local_ids):
        dims = len(ndrange.global_size)
        self.work_dim = dims
        self.group_size = len(local_ids)
        self.num_groups = len(selected_groups)
        self.n = self.group_size * self.num_groups
        self.global_size = tuple(ndrange.global_size) + (1,) * (3 - dims)
        self.local_size = tuple(ndrange.local_size) + (1,) * (3 - dims)
        self.global_offset = (0, 0, 0)
        lid = np.asarray(local_ids, dtype=_I64)  # (L, dims)
        grp = np.asarray(selected_groups, dtype=_I64)  # (G, dims)
        self.local_id: List[object] = []
        self.group_id: List[object] = []
        self.global_id: List[object] = []
        for d in range(3):
            if d < dims:
                local_d = np.tile(lid[:, d], self.num_groups)
                group_d = np.repeat(grp[:, d], self.group_size)
                self.local_id.append(local_d)
                self.group_id.append(group_d)
                self.global_id.append(group_d * self.local_size[d] + local_d)
            else:
                self.local_id.append(0)
                self.group_id.append(0)
                self.global_id.append(0)

    def query(self, name: str, dim: int):
        """Mirror of the ``WorkItemContext`` accessors (ids default to 0
        outside 0..2, sizes to 1)."""
        in_range = 0 <= dim < 3
        if name == "get_global_id":
            return self.global_id[dim] if in_range else 0
        if name == "get_local_id":
            return self.local_id[dim] if in_range else 0
        if name == "get_group_id":
            return self.group_id[dim] if in_range else 0
        if name == "get_global_size":
            return self.global_size[dim] if in_range else 1
        if name == "get_local_size":
            return self.local_size[dim] if in_range else 1
        if name == "get_global_offset":
            return self.global_offset[dim] if in_range else 0
        if name == "get_num_groups":
            if not in_range:
                return 1
            return self.global_size[dim] // self.local_size[dim]
        raise AssertionError(f"unhandled work-item query {name}")  # pragma: no cover

    def query_default(self, name: str) -> int:
        return 1 if name in ("get_global_size", "get_local_size", "get_num_groups") else 0


# ---------------------------------------------------------------------------
# Entry point.
# ---------------------------------------------------------------------------

WARP_SIZE = 32


def execute(kernel: CompiledKernel, plan: _KernelPlan, ndrange, selected_groups,
            local_ids, args, counters) -> None:
    """Run ``kernel`` over ``selected_groups`` of ``ndrange`` in lockstep,
    mutating argument buffers and ``counters`` exactly as the per-item
    executor would."""
    from .memory import Pointer

    lanes = _LaneLayout(ndrange, selected_groups, local_ids)
    evaluator = _Evaluator(plan, counters, lanes)

    # Group-local allocations: one row of storage per selected group.
    for decl in kernel.local_decls:
        ctype = decl.declared_type
        flat = ctype.flat_length()
        element = ctype.base_element()
        storage = np.zeros(lanes.num_groups * flat, dtype=numpy_dtype(element))
        base = np.repeat(np.arange(lanes.num_groups, dtype=_I64) * flat, lanes.group_size)
        vptr = VPtr(storage, element, "local", counters.memory, flat, 0, base)
        evaluator._local_storage[id(decl)] = VArray(vptr, ctype.element)

    frame = _Frame(kernel.definition, lanes.n)
    for param, arg in zip(kernel.definition.params, args):
        if isinstance(arg, Pointer):
            value = VPtr(arg.array, arg.element_type, arg.address_space,
                         arg.counters, arg.length, arg.offset, None)
        else:
            value = arg
        frame.scopes[0][param.name] = _Slot(value)
    evaluator.frames.append(frame)

    mask = np.ones(lanes.n, dtype=bool)
    with np.errstate(all="ignore"):
        evaluator.exec_stmt_list(kernel.definition.body.statements, mask)

    counters.ops += int(evaluator.ops_lanes.sum())
    if not kernel.uses_barrier:
        # Warp-divergence accounting, mirroring the per-item executor: a
        # 32-lane warp runs as long as its slowest lane; partial trailing
        # chunks still pay for a full warp.
        per_group = evaluator.ops_lanes.reshape(lanes.num_groups, lanes.group_size)
        chunks = -(-lanes.group_size // WARP_SIZE)
        padded = np.zeros((lanes.num_groups, chunks * WARP_SIZE), dtype=_I64)
        padded[:, : lanes.group_size] = per_group
        warp_max = padded.reshape(lanes.num_groups, chunks, WARP_SIZE).max(axis=2)
        counters.warp_ops += int(warp_max.sum()) * WARP_SIZE
