"""Execution-model pieces shared by the interpreter and compiled kernels:

* :class:`WorkItemContext` — work-item ids/sizes for the builtin queries,
* :class:`ExecutionCounters` — operation and memory traffic counters,
* C operator semantics (truncating division, masked shifts, wrapping),
* value conversion between arbitrary runtime values and C types.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from .ctypes_ import CType, ScalarType, VectorType, convert_scalar
from .memory import KernelFault, MemoryCounters, Pointer
from .values import VecValue


@dataclass
class ExecutionCounters:
    """Everything the timing model charges for: ops + memory traffic.

    ``ops`` counts operations as executed per work-item; ``warp_ops``
    is the SIMD-divergence-adjusted count the executor fills in for
    barrier-free kernels (each 32-lane warp is charged 32× its slowest
    lane, as on real hardware).  The timing model prefers ``warp_ops``
    when present.
    """

    ops: int = 0
    memory: MemoryCounters = field(default_factory=MemoryCounters)
    barriers: int = 0
    warp_ops: int = 0

    def reset(self) -> None:
        self.ops = 0
        self.barriers = 0
        self.warp_ops = 0
        self.memory.reset()

    def merge(self, other: "ExecutionCounters") -> None:
        self.ops += other.ops
        self.barriers += other.barriers
        self.warp_ops += other.warp_ops
        self.memory.merge(other.memory)

    def scaled(self, factor: float) -> "ExecutionCounters":
        return ExecutionCounters(
            int(self.ops * factor),
            self.memory.scaled(factor),
            int(self.barriers * factor),
            int(self.warp_ops * factor),
        )


@dataclass(frozen=True)
class WorkItemContext:
    """Identity of one work-item within an NDRange execution.

    All tuples are padded to three entries at construction (ids with 0,
    sizes with 1) so compiled kernels can index them directly; the real
    dimensionality is preserved in ``work_dim``.
    """

    global_id: Tuple[int, ...]
    local_id: Tuple[int, ...]
    group_id: Tuple[int, ...]
    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    global_offset: Tuple[int, ...] = (0, 0, 0)
    work_dim: int = 0

    def __post_init__(self):
        dims = len(self.global_size)
        object.__setattr__(self, "work_dim", self.work_dim or dims)
        for name, fill in (
            ("global_id", 0),
            ("local_id", 0),
            ("group_id", 0),
            ("global_size", 1),
            ("local_size", 1),
            ("global_offset", 0),
        ):
            values = tuple(getattr(self, name))
            if len(values) < 3:
                object.__setattr__(self, name, values + (fill,) * (3 - len(values)))

    def get_global_id(self, dim: int) -> int:
        dim = int(dim)
        return self.global_id[dim] if 0 <= dim < 3 else 0

    def get_local_id(self, dim: int) -> int:
        dim = int(dim)
        return self.local_id[dim] if 0 <= dim < 3 else 0

    def get_group_id(self, dim: int) -> int:
        dim = int(dim)
        return self.group_id[dim] if 0 <= dim < 3 else 0

    def get_global_size(self, dim: int) -> int:
        dim = int(dim)
        return self.global_size[dim] if 0 <= dim < 3 else 1

    def get_local_size(self, dim: int) -> int:
        dim = int(dim)
        return self.local_size[dim] if 0 <= dim < 3 else 1

    def get_num_groups(self, dim: int) -> int:
        return self.get_global_size(dim) // self.get_local_size(dim)

    def get_global_offset(self, dim: int) -> int:
        dim = int(dim)
        return self.global_offset[dim] if 0 <= dim < 3 else 0

    def get_work_dim(self) -> int:
        return self.work_dim

    def query(self, name: str, *args) -> int:
        return getattr(self, name)(*args)


# -- C operator semantics ----------------------------------------------------


def c_idiv(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    if b == 0:
        raise KernelFault("integer division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def c_imod(a: int, b: int) -> int:
    """C integer remainder: sign follows the dividend."""
    if b == 0:
        raise KernelFault("integer remainder by zero")
    return a - c_idiv(a, b) * b


def c_fdiv(a: float, b: float) -> float:
    """IEEE float division: inf/NaN instead of exceptions."""
    if b == 0.0:
        if a == 0.0 or a != a:
            return math.nan
        return math.inf if (a > 0) == (not math.copysign(1.0, b) < 0) else -math.inf
    return a / b


def c_fmod(a: float, b: float) -> float:
    if b == 0.0:
        return math.nan
    return math.fmod(a, b)


def scalar_binary(op: str, a, b, ctype: ScalarType):
    """Apply a C binary operator on scalars already converted to ``ctype``."""
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op == "/":
        result = c_idiv(a, b) if ctype.is_integer() else c_fdiv(a, b)
    elif op == "%":
        result = c_imod(a, b)
    elif op == "<<":
        result = a << (b % ctype.bits)
    elif op == ">>":
        # OpenCL masks the shift count by the operand width.
        result = a >> (b % ctype.bits)
    elif op == "&":
        result = a & b
    elif op == "|":
        result = a | b
    elif op == "^":
        result = a ^ b
    else:  # pragma: no cover
        raise AssertionError(f"unhandled operator {op}")
    return convert_scalar(result, ctype)


def scalar_compare(op: str, a, b) -> int:
    if op == "<":
        return int(a < b)
    if op == ">":
        return int(a > b)
    if op == "<=":
        return int(a <= b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    return int(a != b)


def binary_value(op: str, left, right, op_type: CType):
    """Apply a C binary arithmetic/bitwise operator with broadcasting."""
    if isinstance(op_type, VectorType):
        element = op_type.element
        left_components = left.components if isinstance(left, VecValue) else [left] * op_type.width
        right_components = right.components if isinstance(right, VecValue) else [right] * op_type.width
        out = [
            scalar_binary(op, convert_scalar(a, element), convert_scalar(b, element), element)
            for a, b in zip(left_components, right_components)
        ]
        return VecValue(element, out)
    assert isinstance(op_type, ScalarType)
    return scalar_binary(op, convert_scalar(left, op_type), convert_scalar(right, op_type), op_type)


def compare_value(op: str, left, right, op_type: CType):
    """Apply a comparison; vectors yield -1/0 lanes, scalars 1/0."""
    if isinstance(op_type, VectorType):
        from .ctypes_ import INT, LONG

        element = op_type.element
        result_element = INT if element.sizeof() <= 4 else LONG
        left_components = left.components if isinstance(left, VecValue) else [left] * op_type.width
        right_components = right.components if isinstance(right, VecValue) else [right] * op_type.width
        out = [
            -scalar_compare(op, convert_scalar(a, element), convert_scalar(b, element))
            for a, b in zip(left_components, right_components)
        ]
        return VecValue(result_element, out)
    assert isinstance(op_type, ScalarType)
    return scalar_compare(op, convert_scalar(left, op_type), convert_scalar(right, op_type))


def convert_value(value, ctype: CType):
    """Convert a runtime value to C type ``ctype`` (scalars, vectors, pointers)."""
    if isinstance(ctype, VectorType):
        if isinstance(value, VecValue):
            if value.width != ctype.width:
                raise KernelFault(f"vector width mismatch: {value.width} vs {ctype.width}")
            return VecValue(ctype.element, value.components)
        return VecValue(ctype.element, [value] * ctype.width)
    if isinstance(value, Pointer):
        if not ctype.is_pointer():
            raise KernelFault(f"cannot convert pointer to {ctype}")
        if isinstance(ctype.pointee, (ScalarType, VectorType)) and ctype.pointee != value.element_type and not ctype.pointee.is_void():
            return value.retyped(ctype.pointee)
        return value
    if ctype.is_pointer():
        raise KernelFault(f"cannot convert {value!r} to pointer type {ctype}")
    if isinstance(value, VecValue):
        raise KernelFault(f"cannot convert vector to scalar {ctype}")
    assert isinstance(ctype, ScalarType)
    if ctype.is_void():
        return None
    return convert_scalar(value, ctype)


def truthy(value) -> bool:
    """C truth value of a scalar or pointer."""
    if isinstance(value, Pointer):
        return True
    return bool(value)


def copy_value(value):
    """Value-semantics copy (vectors are mutable containers)."""
    if isinstance(value, VecValue):
        return VecValue(value.element_type, list(value.components))
    return value
