"""The OpenCL-C type system used by the kernelc front-end.

Models scalar types (with C integer widths and signedness), OpenCL vector
types (``float4`` etc.), pointers with address spaces, fixed-size arrays
and function types.  Also implements the value-level conversion semantics
(integer wrap-around, float truncation) shared by the interpreter and the
compiled backend.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

ADDRESS_SPACES = ("private", "global", "local", "constant")


class CType:
    """Base class for all kernelc types."""

    def is_void(self) -> bool:
        return False

    def is_scalar(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_bool(self) -> bool:
        return False

    def is_arithmetic(self) -> bool:
        return self.is_integer() or self.is_float()

    def is_pointer(self) -> bool:
        return False

    def is_vector(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False

    def is_function(self) -> bool:
        return False

    def sizeof(self) -> int:
        raise TypeError(f"type {self} has no size")


@dataclass(frozen=True)
class ScalarType(CType):
    name: str
    size: int  # in bytes; 0 for void
    signed: bool = False
    float_kind: bool = False

    def is_void(self) -> bool:
        return self.size == 0

    def is_scalar(self) -> bool:
        return self.size > 0

    def is_integer(self) -> bool:
        return self.size > 0 and not self.float_kind

    def is_float(self) -> bool:
        return self.float_kind

    def is_bool(self) -> bool:
        return self.name == "bool"

    def sizeof(self) -> int:
        if self.size == 0:
            raise TypeError("void has no size")
        return self.size

    @property
    def bits(self) -> int:
        return self.size * 8

    def min_value(self) -> int:
        if self.float_kind:
            raise TypeError("min_value on float type")
        return -(1 << (self.bits - 1)) if self.signed else 0

    def max_value(self) -> int:
        if self.float_kind:
            raise TypeError("max_value on float type")
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def __str__(self) -> str:
        return self.name


VOID = ScalarType("void", 0)
BOOL = ScalarType("bool", 1)
CHAR = ScalarType("char", 1, signed=True)
UCHAR = ScalarType("uchar", 1)
SHORT = ScalarType("short", 2, signed=True)
USHORT = ScalarType("ushort", 2)
INT = ScalarType("int", 4, signed=True)
UINT = ScalarType("uint", 4)
LONG = ScalarType("long", 8, signed=True)
ULONG = ScalarType("ulong", 8)
FLOAT = ScalarType("float", 4, float_kind=True)
DOUBLE = ScalarType("double", 8, float_kind=True)
HALF = ScalarType("half", 2, float_kind=True)
SIZE_T = ScalarType("size_t", 8)

SCALAR_TYPES = {
    t.name: t
    for t in (VOID, BOOL, CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG, FLOAT, DOUBLE, HALF, SIZE_T)
}

# Integer conversion rank, as in C11 6.3.1.1 (bool lowest).
_RANK = {"bool": 0, "char": 1, "uchar": 1, "short": 2, "ushort": 2, "int": 3, "uint": 3, "long": 4, "ulong": 4, "size_t": 4}


@dataclass(frozen=True)
class VectorType(CType):
    element: ScalarType
    width: int

    def is_vector(self) -> bool:
        return True

    def sizeof(self) -> int:
        # OpenCL vec3 occupies the storage of vec4.
        width = 4 if self.width == 3 else self.width
        return self.element.sizeof() * width

    @property
    def name(self) -> str:
        return f"{self.element.name}{self.width}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType
    address_space: str = "private"
    is_const: bool = False

    def __post_init__(self):
        if self.address_space not in ADDRESS_SPACES:
            raise ValueError(f"unknown address space {self.address_space!r}")

    def is_pointer(self) -> bool:
        return True

    def sizeof(self) -> int:
        return 8

    def __str__(self) -> str:
        const = "const " if self.is_const else ""
        space = f"__{self.address_space} " if self.address_space != "private" else ""
        return f"{space}{const}{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    def is_array(self) -> bool:
        return True

    def sizeof(self) -> int:
        return self.element.sizeof() * self.length

    def flat_length(self) -> int:
        """Total number of scalar elements, through nested arrays."""
        if isinstance(self.element, ArrayType):
            return self.length * self.element.flat_length()
        return self.length

    def base_element(self) -> CType:
        """The innermost non-array element type."""
        element = self.element
        while isinstance(element, ArrayType):
            element = element.element
        return element

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    param_types: Tuple[CType, ...]
    is_kernel: bool = False

    def is_function(self) -> bool:
        return True

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type}({params})"


def make_vector_type(name: str) -> Optional[VectorType]:
    """Parse a vector type name like ``float4``; None if not one."""
    for base in ("uchar", "ushort", "uint", "ulong", "char", "short", "int", "long", "float", "double"):
        if name.startswith(base):
            rest = name[len(base):]
            if rest in ("2", "3", "4", "8", "16"):
                return VectorType(SCALAR_TYPES[base], int(rest))
    return None


# -- conversion semantics --------------------------------------------------


def integer_promote(ctype: ScalarType) -> ScalarType:
    """C integer promotion: small integer types promote to int."""
    if ctype.is_integer() and _RANK[ctype.name] < _RANK["int"]:
        return INT
    return ctype


def usual_arithmetic_conversions(left: ScalarType, right: ScalarType) -> ScalarType:
    """The common type of a binary arithmetic expression (C11 6.3.1.8)."""
    if left.is_float() or right.is_float():
        for candidate in (DOUBLE, FLOAT, HALF):
            if left == candidate or right == candidate:
                return candidate
        raise AssertionError("unreachable")
    left = integer_promote(left)
    right = integer_promote(right)
    if left == right:
        return left
    if left.signed == right.signed:
        return left if _RANK[left.name] >= _RANK[right.name] else right
    unsigned, signed = (left, right) if not left.signed else (right, left)
    if _RANK[unsigned.name] >= _RANK[signed.name]:
        return unsigned
    # signed type can represent all unsigned values only with greater rank
    if signed.size > unsigned.size:
        return signed
    return ScalarType(  # unsigned version of the signed type
        {"int": "uint", "long": "ulong"}.get(signed.name, signed.name), signed.size, signed=False
    )


def common_type(left: CType, right: CType) -> CType:
    """Common type for binary ops over scalars and vectors.

    Vector op scalar broadcasts the scalar; vector op vector requires the
    same width.
    """
    if isinstance(left, VectorType) and isinstance(right, VectorType):
        if left.width != right.width:
            raise TypeError(f"vector width mismatch: {left} vs {right}")
        return VectorType(usual_arithmetic_conversions(left.element, right.element), left.width)
    if isinstance(left, VectorType):
        return left
    if isinstance(right, VectorType):
        return right
    if isinstance(left, ScalarType) and isinstance(right, ScalarType):
        return usual_arithmetic_conversions(left, right)
    raise TypeError(f"no common type for {left} and {right}")


def wrap_int(value: int, ctype: ScalarType) -> int:
    """Wrap a Python int to the two's-complement range of ``ctype``."""
    bits = ctype.bits
    value &= (1 << bits) - 1
    if ctype.signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def round_float(value: float, ctype: ScalarType) -> float:
    """Round a Python float to the precision of ``ctype``."""
    if ctype == DOUBLE:
        return float(value)
    if ctype == FLOAT:
        return float(np.float32(value))
    if ctype == HALF:
        return float(np.float16(value))
    raise TypeError(f"not a float type: {ctype}")


def convert_scalar(value, ctype: ScalarType):
    """Convert a Python number to ``ctype``'s value semantics."""
    if ctype.is_bool():
        return 1 if value else 0
    if ctype.is_integer():
        if isinstance(value, float):
            # C float→int conversion truncates toward zero.
            value = int(value)
        return wrap_int(int(value), ctype)
    if ctype.is_float():
        return round_float(float(value), ctype)
    raise TypeError(f"cannot convert value to {ctype}")


_NUMPY_DTYPES = {
    "bool": np.uint8,
    "char": np.int8,
    "uchar": np.uint8,
    "short": np.int16,
    "ushort": np.uint16,
    "int": np.int32,
    "uint": np.uint32,
    "long": np.int64,
    "ulong": np.uint64,
    "size_t": np.uint64,
    "float": np.float32,
    "double": np.float64,
    "half": np.float16,
}


def numpy_dtype(ctype: CType) -> np.dtype:
    """The numpy dtype used to store values of ``ctype`` in buffers."""
    if isinstance(ctype, ScalarType) and ctype.name in _NUMPY_DTYPES:
        return np.dtype(_NUMPY_DTYPES[ctype.name])
    if isinstance(ctype, VectorType):
        return np.dtype(_NUMPY_DTYPES[ctype.element.name])
    raise TypeError(f"no numpy dtype for {ctype}")


def ctype_from_numpy(dtype: np.dtype) -> ScalarType:
    """Inverse of :func:`numpy_dtype` for scalar dtypes."""
    table = {
        np.dtype(np.int8): CHAR,
        np.dtype(np.uint8): UCHAR,
        np.dtype(np.int16): SHORT,
        np.dtype(np.uint16): USHORT,
        np.dtype(np.int32): INT,
        np.dtype(np.uint32): UINT,
        np.dtype(np.int64): LONG,
        np.dtype(np.uint64): ULONG,
        np.dtype(np.float32): FLOAT,
        np.dtype(np.float64): DOUBLE,
        np.dtype(np.float16): HALF,
    }
    dtype = np.dtype(dtype)
    if dtype not in table:
        raise TypeError(f"unsupported dtype {dtype}")
    return table[dtype]


def float_bits(value: float, ctype: ScalarType) -> int:
    """Bit pattern of ``value`` at ``ctype``'s precision (for as_type)."""
    if ctype == FLOAT:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    if ctype == DOUBLE:
        return struct.unpack("<Q", struct.pack("<d", value))[0]
    raise TypeError(f"no bit pattern for {ctype}")
