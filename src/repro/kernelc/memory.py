"""The device memory model used when executing kernels.

A :class:`Pointer` is a typed view into a flat numpy array plus an
element offset.  Pointer arithmetic produces new pointers; loads and
stores convert between numpy storage and Python value semantics and
report traffic to a :class:`MemoryCounters` object so the simulated
device can charge time for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .ctypes_ import CType, ScalarType, VectorType, convert_scalar, numpy_dtype
from .values import VecValue


class KernelFault(Exception):
    """An out-of-bounds access or similar runtime fault inside a kernel."""


@dataclass
class MemoryCounters:
    """Counts of memory traffic during a kernel execution.

    When ``trace`` is a list, every successful load/store additionally
    appends ``(array_id, address_space, byte_start, nbytes, 'r'|'w')``
    — the concrete memory trace the SkelAccess differential harness
    compares against the affine footprints (``None`` costs nothing)."""

    global_loads: int = 0
    global_stores: int = 0
    global_bytes: int = 0
    local_loads: int = 0
    local_stores: int = 0
    local_bytes: int = 0
    trace: Optional[list] = None

    def reset(self) -> None:
        self.global_loads = 0
        self.global_stores = 0
        self.global_bytes = 0
        self.local_loads = 0
        self.local_stores = 0
        self.local_bytes = 0

    def merge(self, other: "MemoryCounters") -> None:
        self.global_loads += other.global_loads
        self.global_stores += other.global_stores
        self.global_bytes += other.global_bytes
        self.local_loads += other.local_loads
        self.local_stores += other.local_stores
        self.local_bytes += other.local_bytes

    def scaled(self, factor: float) -> "MemoryCounters":
        return MemoryCounters(
            int(self.global_loads * factor),
            int(self.global_stores * factor),
            int(self.global_bytes * factor),
            int(self.local_loads * factor),
            int(self.local_stores * factor),
            int(self.local_bytes * factor),
        )


_NULL_COUNTERS = MemoryCounters()


class Pointer:
    """A typed pointer into device (or local/private) memory."""

    __slots__ = ("array", "offset", "element_type", "address_space", "counters", "length")

    def __init__(
        self,
        array: np.ndarray,
        element_type: CType,
        address_space: str = "global",
        offset: int = 0,
        counters: Optional[MemoryCounters] = None,
        length: Optional[int] = None,
    ):
        self.array = array
        self.element_type = element_type
        self.address_space = address_space
        self.offset = offset
        self.counters = counters if counters is not None else _NULL_COUNTERS
        # Number of addressable elements from index 0 of the array.
        self.length = length if length is not None else self._default_length()

    def _default_length(self) -> int:
        if isinstance(self.element_type, VectorType):
            stride = self.element_type.width
            return len(self.array) // stride
        return len(self.array)

    # -- pointer arithmetic ----------------------------------------------

    def add(self, delta: int) -> "Pointer":
        return Pointer(self.array, self.element_type, self.address_space, self.offset + int(delta), self.counters, self.length)

    def diff(self, other: "Pointer") -> int:
        if self.array is not other.array:
            raise KernelFault("subtracting pointers into different objects")
        return self.offset - other.offset

    def retyped(self, element_type: CType) -> "Pointer":
        """Reinterpret this pointer at a different element type (C cast).

        Supports scalar↔scalar and scalar↔vector reinterpretation; the
        backing storage is re-viewed at the new base dtype.  Vector
        elements are stored as ``width`` consecutive scalars, so a
        ``float*`` and a ``float4*`` see the same bytes.
        """
        if element_type == self.element_type:
            return self

        def stride_and_base(ctype: CType):
            if isinstance(ctype, VectorType):
                return ctype.width, ctype.element
            return 1, ctype

        old_stride, old_base = stride_and_base(self.element_type)
        new_stride, new_base = stride_and_base(element_type)
        byte_offset = self.offset * old_stride * old_base.sizeof()
        new_unit = new_stride * new_base.sizeof()
        if byte_offset % new_unit != 0:
            raise KernelFault("misaligned pointer cast")
        new_array = self.array.view(numpy_dtype(new_base))
        return Pointer(
            new_array,
            element_type,
            self.address_space,
            byte_offset // new_unit,
            self.counters,
            len(new_array) // new_stride,
        )

    # -- access ------------------------------------------------------------

    def _element_index(self, index: int) -> int:
        where = self.offset + int(index)
        if where < 0 or where >= self.length:
            raise KernelFault(
                f"out-of-bounds {self.address_space} access: element {where} of {self.length}"
            )
        return where

    def _charge(self, is_store: bool) -> None:
        counters = self.counters
        nbytes = self.element_type.sizeof()
        if self.address_space in ("global", "constant"):
            if is_store:
                counters.global_stores += 1
            else:
                counters.global_loads += 1
            counters.global_bytes += nbytes
        elif self.address_space == "local":
            if is_store:
                counters.local_stores += 1
            else:
                counters.local_loads += 1
            counters.local_bytes += nbytes

    def _trace(self, where: int, is_store: bool) -> None:
        trace = self.counters.trace
        if trace is not None:
            nbytes = self.element_type.sizeof()
            trace.append((id(self.array), self.address_space,
                          where * nbytes, nbytes, "w" if is_store else "r"))

    def load(self, index: int = 0):
        where = self._element_index(index)
        self._charge(is_store=False)
        self._trace(where, is_store=False)
        if isinstance(self.element_type, VectorType):
            width = self.element_type.width
            chunk = self.array[where * width : where * width + width]
            return VecValue(self.element_type.element, [c.item() for c in chunk])
        return self.array[where].item()

    def store(self, index: int, value) -> None:
        where = self._element_index(index)
        self._charge(is_store=True)
        self._trace(where, is_store=True)
        if isinstance(self.element_type, VectorType):
            width = self.element_type.width
            if not isinstance(value, VecValue):
                raise KernelFault("storing a scalar through a vector pointer")
            self.array[where * width : where * width + width] = [
                convert_scalar(c, self.element_type.element) for c in value.components
            ]
            return
        assert isinstance(self.element_type, ScalarType)
        self.array[where] = convert_scalar(value, self.element_type)

    def __repr__(self) -> str:
        return f"<{self.address_space} {self.element_type}* +{self.offset} len={self.length}>"


class ArrayRef:
    """The runtime value of a C array variable (possibly multi-dimensional).

    Wraps a flat :class:`Pointer` to the base scalar elements together
    with this level's element type, so ``a[i]`` on a ``float[3][4]``
    yields an ``ArrayRef`` for the row and ``a[i][j]`` a scalar access.
    """

    __slots__ = ("pointer", "element")

    def __init__(self, pointer: Pointer, element: CType):
        self.pointer = pointer
        self.element = element

    def row_stride(self) -> int:
        from .ctypes_ import ArrayType

        if isinstance(self.element, ArrayType):
            return self.element.flat_length()
        return 1

    def index(self, i: int):
        """Index one level: sub-array ``ArrayRef`` or scalar pointer slot."""
        from .ctypes_ import ArrayType

        if isinstance(self.element, ArrayType):
            return ArrayRef(self.pointer.add(int(i) * self.element.flat_length()), self.element.element)
        return self.pointer, int(i)

    def decayed(self) -> Pointer:
        """Array-to-pointer decay (points at this level's first element)."""
        from .ctypes_ import ArrayType

        if isinstance(self.element, ArrayType):
            raise KernelFault("cannot decay a multi-dimensional array to a flat pointer")
        return self.pointer

    def __repr__(self) -> str:
        return f"ArrayRef({self.pointer!r}, element={self.element})"


def allocate(element_type: CType, count: int, address_space: str, counters: Optional[MemoryCounters] = None) -> Pointer:
    """Allocate zero-initialized memory for ``count`` elements."""
    if isinstance(element_type, VectorType):
        array = np.zeros(count * element_type.width, dtype=numpy_dtype(element_type.element))
    else:
        array = np.zeros(count, dtype=numpy_dtype(element_type))
    return Pointer(array, element_type, address_space, 0, counters, count)
