"""Front-end driver: preprocess → lex → parse → type-check.

:func:`compile_source` is the single entry point used by the simulated
OpenCL runtime's ``Program.build()``.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import ast
from .diagnostics import DiagnosticSink
from .lexer import Lexer
from .parser import Parser
from .preprocessor import Preprocessor
from .source import SourceFile
from .typecheck import TypeChecker


def preprocess_source(
    text: str,
    name: str = "<kernel>",
    defines: Optional[Dict[str, str]] = None,
) -> str:
    """Run only the preprocessor — the canonical form the persistent
    program cache (:mod:`repro.kernelc.progcache`) keys on."""
    return Preprocessor(defines).process(text, name)


def compile_preprocessed(preprocessed: str, name: str = "<kernel>") -> ast.Program:
    """Lex/parse/type-check already-preprocessed text."""
    source = SourceFile(preprocessed, name)
    sink = DiagnosticSink(source)
    tokens = Lexer(source, sink).tokenize()
    sink.check()
    program = Parser(tokens, source, sink).parse_program()
    checker = TypeChecker(program, source, sink)
    checker.check()
    program.source = source
    return program


def compile_source(
    text: str,
    name: str = "<kernel>",
    defines: Optional[Dict[str, str]] = None,
) -> ast.Program:
    """Run the full front-end over ``text``.

    Returns a type-checked :class:`~repro.kernelc.ast.Program`.  Raises
    :class:`~repro.kernelc.preprocessor.PreprocessorError` or
    :class:`~repro.kernelc.diagnostics.CompileError` on invalid input.
    """
    return compile_preprocessed(preprocess_source(text, name, defines), name)
