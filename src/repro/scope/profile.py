"""SkelScope profiling hooks: ``with skelcl.profile() as prof:``.

A :class:`Profile` scopes a region of a program: commands enqueued
inside the ``with`` block are collected at exit (the command graph is
resolved, no commands are added) and attributed:

* ``prof.by_skeleton()`` — critical-path nanoseconds per trace label
  (skeleton name + call site, or ``<write_buffer>``-style command
  buckets for unlabelled transfers); the values sum exactly to the
  critical-path elapsed time;
* ``prof.critical_path()`` — the chain of commands whose durations
  telescope to the elapsed time, walking the event graph backwards
  from the last completion through whichever gate (wait-list edge or
  engine occupancy) actually delayed each command;
* ``prof.metrics`` — the owning context's metrics registry, with the
  timeline gauges derived;
* ``prof.report()`` / ``prof.timeline()`` — the terminal report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import derive_timeline_metrics
from .timeline import render_timeline


def _bucket(event) -> str:
    return event.label or f"<{event.command_type}>"


@dataclass
class CriticalPath:
    """The command chain that determines the elapsed time.

    ``total_ns`` equals the latest completion timestamp of the profiled
    region (``Context.finish_all()`` when the profile spans the whole
    run); the step durations telescope to it exactly — every step
    starts the instant its predecessor ends."""

    steps: List[object] = field(default_factory=list)  # Events, in time order
    total_ns: int = 0

    def __len__(self) -> int:
        return len(self.steps)

    def by_label(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.steps:
            key = _bucket(event)
            out[key] = out.get(key, 0) + event.duration_ns
        return out

    def describe(self) -> str:
        lines = [f"critical path: {self.total_ns:,} ns over {len(self.steps)} commands"]
        for event in self.steps:
            lines.append(
                f"  {event.start_ns:>12,} ns  +{event.duration_ns:>10,}  "
                f"GPU{event.device_index}.{event.engine:<8}  {_bucket(event)}"
            )
        return "\n".join(lines)


class Profile:
    """Profiling data for one scoped region (see :func:`profile`)."""

    def __init__(self, context):
        self.context = context
        self.elapsed_ns = 0
        self.events: List[object] = []
        self._start_counts: List[int] = []

    # -- lifecycle -------------------------------------------------------

    def _begin(self) -> None:
        self._start_counts = [len(queue.events) for queue in self.context.queues]

    def _end(self) -> None:
        self.elapsed_ns = self.context.finish_all()
        self.events = []
        for queue, start in zip(self.context.queues, self._start_counts):
            self.events.extend(queue.events[start:])
        derive_timeline_metrics(self.context)

    # -- accessors -------------------------------------------------------

    @property
    def metrics(self):
        return self.context.metrics

    def critical_path(self) -> CriticalPath:
        """Walk the event graph backwards from the latest completion.

        Each command started at ``max(engine-ready, wait-list end)``,
        so its critical predecessor is whichever of the two ended at
        exactly its start time: the wait-list event that gated it, or
        the previous occupant of its engine.  The walk bottoms out at
        time zero; the traversed durations sum to ``total_ns``."""
        if not self.events:
            return CriticalPath([], 0)
        # Engine occupancy index: who ended at time t on each engine.
        # Only commands recorded by the queues participate — the graph
        # is append-only, so this covers every possible predecessor.
        by_engine_end: Dict[tuple, object] = {}
        for queue in self.context.queues:
            for event in queue.events:
                if event.engine == "sync":
                    continue
                key = (event.device_index, event.engine, event.end_ns)
                prior = by_engine_end.get(key)
                if prior is None or event.start_ns > prior.start_ns:
                    by_engine_end[key] = event
        last = max(self.events, key=lambda e: (e.end_ns, e.seq))
        steps: List[object] = []
        seen = set()
        event: Optional[object] = last
        while event is not None and event.seq not in seen:
            seen.add(event.seq)
            steps.append(event)
            if event.start_ns == 0:
                break
            pred = None
            if event.wait_for:
                gate = max(event.wait_for, key=lambda d: d.end_ns)
                if gate.end_ns == event.start_ns:
                    pred = gate
            if pred is None and event.queued_ns == event.start_ns:
                pred = by_engine_end.get(
                    (event.device_index, event.engine, event.queued_ns)
                )
            if pred is None and event.wait_for:
                pred = max(event.wait_for, key=lambda d: d.end_ns)
            event = pred
        steps.reverse()
        return CriticalPath(steps, last.end_ns)

    def by_skeleton(self) -> Dict[str, int]:
        """Critical-path nanoseconds per trace label.  The attribution
        covers the whole elapsed time: every nanosecond of the critical
        path belongs to exactly one command, so the values sum to
        ``critical_path().total_ns``."""
        return self.critical_path().by_label()

    def kernel_ns_by_skeleton(self) -> Dict[str, int]:
        """Total kernel nanoseconds per label (overlap counted per
        kernel, unlike the critical-path attribution)."""
        out: Dict[str, int] = {}
        for event in self.events:
            if event.command_type != "ndrange_kernel":
                continue
            key = _bucket(event)
            out[key] = out.get(key, 0) + event.duration_ns
        return out

    # -- reports ---------------------------------------------------------

    def timeline(self, width: int = 64) -> str:
        return render_timeline(self.context, width=width)

    def report(self) -> str:
        path = self.critical_path()
        lines = [
            f"SkelScope profile: {path.total_ns:,} ns critical path, "
            f"{len(self.events)} commands on {len(self.context.queues)} device(s)",
            "",
            "critical-path time by skeleton:",
        ]
        breakdown = path.by_label()
        width = max((len(k) for k in breakdown), default=0)
        for label, ns in sorted(breakdown.items(), key=lambda kv: -kv[1]):
            share = ns / path.total_ns if path.total_ns else 0.0
            lines.append(f"  {label.ljust(width)}  {ns:>14,} ns  {share:6.1%}")
        lines += ["", self.timeline(), "", self.metrics.render_table()]
        return "\n".join(lines)


class profile:
    """Context manager scoping a profiled region::

        with skelcl.profile() as prof:
            result = skeleton(data)
        print(prof.report())

    ``target`` may be a :class:`~repro.skelcl.runtime.SkelCLRuntime` /
    ``Session``, an :class:`~repro.ocl.Context`, or ``None`` to use the
    process-wide SkelCL runtime (which must be initialized by the time
    the block is *entered*)."""

    def __init__(self, target=None):
        self._target = target
        self._profile: Optional[Profile] = None

    def __enter__(self) -> Profile:
        target = self._target
        if target is None:
            from ..skelcl.runtime import get_runtime

            target = get_runtime()
        context = getattr(target, "context", target)
        self._profile = Profile(context)
        self._profile._begin()
        return self._profile

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._profile._end()
        return False
