"""ASCII timeline renderer: the trace for terminals.

Draws one lane per device engine over a shared time axis, so the
overlap structure (kernels hiding transfers, devices running
concurrently) is visible without leaving the shell::

    0 ns                                                    1,406,000 ns
    GPU0.compute   |      ######################                      |
    GPU0.transfer  |======                      ====                  |
    GPU1.compute   |      ######################                      |
    GPU1.transfer  |======                      ====                  |

``#`` marks kernel time, ``=`` transfer time, ``.`` marker/barrier
resolution points; overlapping commands in one lane merge.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_ENGINE_CHAR = {"compute": "#", "transfer": "=", "sync": "."}
_ENGINE_ORDER = {"compute": 0, "transfer": 1, "sync": 2}


def render_timeline(context, width: int = 64, include_sync: bool = False) -> str:
    """Render the resolved timelines of ``context`` as ASCII lanes.

    ``width`` is the number of columns the time axis spans; lanes are
    one per (device, engine) that executed at least one command."""
    context.finish_all()
    lanes: Dict[Tuple[int, str], List[Tuple[int, int]]] = {}
    for queue in context.queues:
        for event in queue.events:
            if event.engine == "sync" and not include_sync:
                continue
            lanes.setdefault((queue.device.index, event.engine), []).append(
                (event.start_ns, event.end_ns)
            )
    if not lanes:
        return "(no commands recorded)"
    total = max(end for spans in lanes.values() for _s, end in spans)
    total = max(total, 1)
    labels = {
        key: f"GPU{key[0]}.{key[1]}"
        for key in lanes
    }
    label_width = max(len(label) for label in labels.values())
    header = f"{'0 ns'.ljust(label_width + 2)}|{' ' * max(0, width - len(f'{total:,} ns'))}{total:,} ns"
    lines = [header]
    for key in sorted(lanes, key=lambda k: (k[0], _ENGINE_ORDER.get(k[1], 9))):
        cells = [" "] * width
        char = _ENGINE_CHAR.get(key[1], "?")
        for start, end in lanes[key]:
            first = min(width - 1, int(start * width / total))
            last = min(width - 1, int(max(end - 1, start) * width / total))
            for cell in range(first, last + 1):
                cells[cell] = char
        lines.append(f"{labels[key].ljust(label_width)}  |{''.join(cells)}|")
    return "\n".join(lines)
