"""``python -m repro.scope`` — run a built-in workload under SkelScope.

Runs one of the bundled benchmarks on the simulated multi-GPU runtime
and emits the observability artefacts::

    python -m repro.scope sobel --devices 2 --trace sobel.trace.json
    python -m repro.scope dotproduct --metrics metrics.json --report
    python -m repro.scope matmul --devices 4 --timeline

``--devices`` takes either a device count (identical simulated GPUs)
or a comma-separated spec mix of preset names for a heterogeneous
pool, optionally with ``--partition`` selecting the split policy::

    python -m repro.scope sobel --devices tesla,tesla,cpu-8core \\
        --partition adaptive --report

The Chrome trace loads in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  A previously written trace can be checked
against the SkelScope schema without re-running anything::

    python -m repro.scope --validate sobel.trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _workload_sobel(size: int) -> None:
    from ..apps.sobel import SobelEdgeDetection

    rng = np.random.default_rng(7)
    image = rng.integers(0, 256, size=(size, size), dtype=np.uint8)
    SobelEdgeDetection().detect(image)


def _workload_dotproduct(size: int) -> None:
    import repro.skelcl as skelcl

    rng = np.random.default_rng(7)
    mult = skelcl.Zip("float func(float x, float y) { return x * y; }")
    sum_ = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    a = skelcl.Vector(data=rng.random(size * size, dtype=np.float32))
    b = skelcl.Vector(data=rng.random(size * size, dtype=np.float32))
    sum_(mult(a, b, label="dot.multiply"), label="dot.sum").get_value()


def _workload_matmul(size: int) -> None:
    import repro.skelcl as skelcl

    rng = np.random.default_rng(7)
    mult = skelcl.Zip("float func(float x, float y) { return x * y; }")
    plus = skelcl.Reduce("float func(float x, float y) { return x + y; }")
    matmul = skelcl.AllPairs(plus, mult)
    a = skelcl.Matrix(data=rng.random((size, size), dtype=np.float32))
    b = skelcl.Matrix(data=rng.random((size, size), dtype=np.float32))
    matmul(a, b, label="matmul").to_numpy()


WORKLOADS = {
    "sobel": (_workload_sobel, 256),
    "dotproduct": (_workload_dotproduct, 512),
    "matmul": (_workload_matmul, 128),
}


def _validate_file(path: str) -> int:
    from .trace import validate_trace

    with open(path) as handle:
        trace = json.load(handle)
    problems = validate_trace(trace)
    if problems:
        print(f"{path}: INVALID ({len(problems)} problem(s))")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    events = trace.get("traceEvents", trace if isinstance(trace, list) else [])
    print(f"{path}: OK ({len(events)} trace events)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scope",
        description="Run a workload under SkelScope tracing, or validate a trace.",
    )
    parser.add_argument("workload", nargs="?", choices=sorted(WORKLOADS),
                        help="built-in workload to run")
    parser.add_argument("--devices", default="2",
                        help="number of simulated GPUs, or a comma-separated "
                             "spec mix of preset names, e.g. tesla,cpu-8core "
                             "(default 2)")
    parser.add_argument("--partition", default=None,
                        choices=["even", "throughput", "adaptive"],
                        help="how Block/Overlap splits are sized over the pool "
                             "(default: even split)")
    parser.add_argument("--size", type=int, default=None,
                        help="problem size (workload-specific default)")
    parser.add_argument("--trace", metavar="PATH",
                        help="write the Chrome trace-event JSON here")
    parser.add_argument("--metrics", metavar="PATH",
                        help="write the metrics snapshot JSON here")
    parser.add_argument("--timeline", action="store_true",
                        help="print the ASCII device timeline")
    parser.add_argument("--report", action="store_true",
                        help="print the profiling report (per-skeleton + critical path)")
    parser.add_argument("--validate", metavar="TRACE",
                        help="validate an existing trace file and exit")
    args = parser.parse_args(argv)

    if args.validate:
        return _validate_file(args.validate)
    if args.workload is None:
        parser.error("a workload (or --validate) is required")

    import repro.skelcl as skelcl
    from . import validate_trace, write_trace
    from .profile import profile

    run, default_size = WORKLOADS[args.workload]
    size = args.size or default_size

    devices = args.devices.strip()
    if devices.isdigit():
        session = skelcl.init(num_devices=int(devices), partition=args.partition)
    else:
        session = skelcl.init(devices=[name for name in devices.split(",") if name],
                              partition=args.partition)
    with session:
        with profile(session) as prof:
            run(size)
        if args.trace:
            write_trace(session.context, args.trace)
            with open(args.trace) as handle:
                problems = validate_trace(json.load(handle))
            status = "valid" if not problems else f"INVALID: {problems}"
            print(f"trace written to {args.trace} ({status})")
        if args.metrics:
            with open(args.metrics, "w") as handle:
                json.dump(session.metrics_snapshot(), handle, indent=2, sort_keys=True)
            print(f"metrics written to {args.metrics}")
        if args.timeline:
            print(prof.timeline())
        if args.report or not (args.trace or args.metrics or args.timeline):
            print(prof.report())
    return 0


if __name__ == "__main__":
    sys.exit(main())
