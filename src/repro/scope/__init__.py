"""SkelScope: observability for the simulated SkelCL/OpenCL stack.

Three layers over the asynchronous command graph:

* **tracing** (:mod:`repro.scope.trace`) — every scheduled command
  (kind, device, engine, buffers, byte counts, wait-list edges, the
  four lifecycle timestamps) exported as Chrome trace-event JSON
  (loadable in Perfetto) with flow arrows for dependency edges, plus an
  ASCII timeline (:mod:`repro.scope.timeline`) for terminals;
* **metrics** (:mod:`repro.scope.metrics`) — a counter/gauge/histogram
  registry per context, populated by the runtime and snapshotable as
  JSON or an end-of-run table;
* **profiling** (:mod:`repro.scope.profile`) — ``with skelcl.profile()
  as prof:`` scoping with per-skeleton and critical-path breakdowns.

Environment switches (honoured by ``skelcl.terminate()`` / ``Session``
exit): ``SKELCL_TRACE=<path>`` writes the trace, ``SKELCL_METRICS=
<path>`` writes the metrics snapshot.  ``python -m repro.scope`` runs a
workload under the tracer and emits both plus the terminal report.

Tracing is passive: it reads the per-queue event records the runtime
already keeps and never enqueues commands, so an instrumented run's
command graph is identical to an uninstrumented one.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    derive_serve_metrics,
    derive_timeline_metrics,
    record_build,
)
from .profile import CriticalPath, Profile, profile
from .timeline import render_timeline
from .trace import (
    ENGINE_TIDS,
    assert_valid_trace,
    chrome_trace,
    event_tid,
    trace_events,
    validate_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "ENGINE_TIDS",
    "CriticalPath",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profile",
    "assert_valid_trace",
    "chrome_trace",
    "derive_serve_metrics",
    "derive_timeline_metrics",
    "event_tid",
    "profile",
    "record_build",
    "render_timeline",
    "trace_events",
    "validate_trace",
    "write_trace",
]
