"""SkelScope structured tracer: Chrome trace-event export + validation.

Converts a resolved command graph into the Chrome trace-event JSON
format (the ``traceEvents`` array consumed by Perfetto and
``chrome://tracing``):

* one *process* per simulated device, one *thread* (track) per device
  engine (compute / transfer / sync), named via ``M`` metadata events —
  commands tagged by the serve runtime additionally get one track per
  tenant and engine (``compute [tenant-a]``, …);
* one complete (``X``) slice per command, carrying the four OpenCL
  lifecycle timestamps (QUEUED/SUBMITTED/RUNNING/COMPLETE), byte
  counts, buffer access sets (``buffer#uid[start:stop]``) and execution
  counters in ``args``;
* zero-duration sync commands (markers/barriers) as instant (``i``)
  events;
* one flow (``s``/``f``) pair per wait-list edge, so Perfetto draws the
  dependency arrows between slices across devices and engines.

Timestamps are emitted in microseconds (the trace format's unit) but
the exact simulated nanoseconds are preserved in ``args`` — the schema
checker (:func:`validate_trace`) verifies against the exact values.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

# Engine → thread id (track) inside a device's process.
ENGINE_TIDS = {"compute": 0, "transfer": 1, "sync": 2}
_TID_ENGINES = {tid: engine for engine, tid in ENGINE_TIDS.items()}

# Serve-mode tenant tracks: commands dispatched for tenant k (1-based
# ``tenant_track`` in ``event.info``, set by the serve dispatcher) render
# on tid = engine + 3*k, so each tenant gets its own compute/transfer
# row per device.  ``tid % 3`` always recovers the engine.
_ENGINE_TRACKS = len(ENGINE_TIDS)


def event_tid(event) -> int:
    """The trace track of ``event``: its engine's base tid, offset by
    the tenant track when the serve runtime tagged the command."""
    base = ENGINE_TIDS[event.engine]
    track = event.info.get("tenant_track", 0)
    return base + _ENGINE_TRACKS * int(track)


def _track_name(tid: int, tenant: Optional[str]) -> str:
    engine = _TID_ENGINES[tid % _ENGINE_TRACKS]
    return f"{engine} [{tenant}]" if tenant else engine


def _collect_events(context) -> List[object]:
    events: List[object] = []
    for queue in context.queues:
        events.extend(queue.events)
    return events


def _event_args(event) -> Dict[str, object]:
    args: Dict[str, object] = {
        "seq": event.seq,
        "queued_ns": event.queued_ns,
        "submitted_ns": event.submit_ns,
        "start_ns": event.start_ns,
        "end_ns": event.end_ns,
        "device": event.device_index,
        "engine": event.engine,
        "command": event.command_type,
    }
    if event.label:
        args["label"] = event.label
    if event.enqueue_site:
        args["enqueue_site"] = event.enqueue_site
    if event.wait_for:
        args["wait_for"] = [dep.seq for dep in event.wait_for]
    accesses = [access.describe() for access in event.accesses
                if hasattr(access, "describe")]
    if accesses:
        args["buffers"] = accesses
    for key, value in event.info.items():
        args[key] = value
    return args


def trace_events(context) -> List[Dict[str, object]]:
    """The ``traceEvents`` list for ``context``'s resolved command
    graph.  Resolves all pending commands first; adds no commands to
    the graph (the tracer only *reads* the per-queue event records)."""
    context.finish_all()
    out: List[Dict[str, object]] = []
    events = _collect_events(context)
    used_tracks: Dict[int, Dict[int, Optional[str]]] = {}
    for event in events:
        tenant = event.info.get("tenant")
        used_tracks.setdefault(event.device_index, {})[event_tid(event)] = tenant
    for queue in context.queues:
        device = queue.device
        out.append({
            "ph": "M", "name": "process_name", "pid": device.index, "tid": 0,
            "args": {"name": f"GPU{device.index} ({device.name})"},
        })
        for tid, tenant in sorted(used_tracks.get(device.index, {}).items()):
            out.append({
                "ph": "M", "name": "thread_name", "pid": device.index, "tid": tid,
                "args": {"name": _track_name(tid, tenant)},
            })
    for event in events:
        tid = event_tid(event)
        name = event.label or event.name
        common = {
            "name": name,
            "cat": event.command_type,
            "pid": event.device_index,
            "tid": tid,
            "args": _event_args(event),
        }
        if event.engine == "sync" or event.duration_ns == 0:
            out.append({"ph": "i", "ts": event.start_ns / 1e3, "s": "t", **common})
        else:
            out.append({
                "ph": "X",
                "ts": event.start_ns / 1e3,
                "dur": event.duration_ns / 1e3,
                **common,
            })
        for dep in event.wait_for:
            flow_id = f"{dep.seq}->{event.seq}"
            out.append({
                "ph": "s", "id": flow_id, "name": "dep", "cat": "dep",
                "pid": dep.device_index, "tid": event_tid(dep),
                "ts": dep.end_ns / 1e3,
                "args": {"from_ns": dep.end_ns},
            })
            out.append({
                "ph": "f", "bp": "e", "id": flow_id, "name": "dep", "cat": "dep",
                "pid": event.device_index, "tid": tid,
                "ts": event.start_ns / 1e3,
                "args": {"to_ns": event.start_ns},
            })
    return out


def chrome_trace(context) -> Dict[str, object]:
    """The full Chrome trace JSON object (load in Perfetto or
    ``chrome://tracing``)."""
    return {
        "traceEvents": trace_events(context),
        "displayTimeUnit": "ns",
        "otherData": {
            "producer": "SkelScope",
            "devices": [device.name for device in context.devices],
            "critical_path_ns": context.finish_all(),
        },
    }


def write_trace(context, path: str) -> str:
    """Export the context's trace to ``path``; returns the path."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(context), handle, indent=1)
    return path


# -- schema checking ---------------------------------------------------------


def validate_trace(trace) -> List[str]:
    """Schema-check a Chrome trace produced by :func:`chrome_trace` (or
    its parsed-from-disk form).  Returns a list of problems — empty
    means valid:

    * every event carries the keys its phase requires;
    * slice timestamps are exact, non-negative and *monotonic per
      track* (engines serialize, so slices on one track never overlap);
    * each device uses at most one track per engine, and every used
      track is named by a ``thread_name`` metadata event;
    * every flow event has both endpoints (``s`` and ``f`` with the
      same id) and each endpoint binds to a slice or instant that
      exists on its track at that timestamp.
    """
    problems: List[str] = []
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if events is None:
            return ["trace object has no 'traceEvents' key"]
    else:
        events = trace
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]

    slices: Dict[Tuple[int, int], List[Tuple[int, int, str]]] = {}
    instants: Dict[Tuple[int, int], List[Tuple[int, str]]] = {}
    thread_names: Dict[Tuple[int, int], str] = {}
    flows: Dict[str, Dict[str, Tuple[int, int, float]]] = {}

    for index, event in enumerate(events):
        ph = event.get("ph")
        if ph is None:
            problems.append(f"event #{index} has no phase ('ph')")
            continue
        if ph == "M":
            if event.get("name") == "thread_name":
                thread_names[(event["pid"], event["tid"])] = event["args"]["name"]
            continue
        for key in ("name", "pid", "tid", "ts"):
            if key not in event:
                problems.append(f"event #{index} ({ph!r}) is missing {key!r}")
        if {"name", "pid", "tid", "ts"} - set(event):
            continue
        track = (event["pid"], event["tid"])
        if ph == "X":
            args = event.get("args", {})
            start = args.get("start_ns", round(event["ts"] * 1e3))
            end = args.get("end_ns", round((event["ts"] + event.get("dur", 0)) * 1e3))
            if "dur" not in event:
                problems.append(f"slice #{index} {event['name']!r} has no 'dur'")
                continue
            if start < 0 or end < start:
                problems.append(
                    f"slice #{index} {event['name']!r} has bad timestamps "
                    f"[{start}, {end}]"
                )
            seq = ("queued_ns", "submitted_ns", "start_ns", "end_ns")
            if all(key in args for key in seq):
                stamps = [args[key] for key in seq]
                if stamps != sorted(stamps):
                    problems.append(
                        f"slice #{index} {event['name']!r} lifecycle timestamps "
                        f"not monotonic: {stamps}"
                    )
            slices.setdefault(track, []).append((start, end, event["name"]))
        elif ph == "i":
            args = event.get("args", {})
            ts_ns = args.get("start_ns", round(event["ts"] * 1e3))
            instants.setdefault(track, []).append((ts_ns, event["name"]))
        elif ph in ("s", "f"):
            flow_id = event.get("id")
            if flow_id is None:
                problems.append(f"flow event #{index} has no id")
                continue
            side = "begin" if ph == "s" else "end"
            flows.setdefault(str(flow_id), {})[side] = (
                event["pid"], event["tid"], event["ts"])

    # One track per engine (plus per-tenant overlays at tid + 3k): the
    # engine is recoverable from tid % 3, and every used track must be
    # named by a thread_name metadata event.
    for (pid, tid) in set(slices) | set(instants):
        if tid % _ENGINE_TRACKS not in _TID_ENGINES or tid < 0:
            problems.append(f"device {pid} uses unknown track tid={tid}")
        if (pid, tid) not in thread_names:
            problems.append(f"track (pid={pid}, tid={tid}) has no thread_name metadata")

    # Monotonic, non-overlapping slices per track.
    for track, entries in slices.items():
        entries.sort()
        for (s1, e1, n1), (s2, e2, n2) in zip(entries, entries[1:]):
            if s2 < e1:
                problems.append(
                    f"track {track}: slices {n1!r} [{s1},{e1}] and "
                    f"{n2!r} [{s2},{e2}] overlap"
                )

    # Flow endpoints must exist and must land on a real event.
    def _binds(pid: int, tid: int, ts_us: float) -> bool:
        ts_ns = ts_us * 1e3
        eps = 1.0  # float microsecond round-trip slack, in ns
        for start, end, _name in slices.get((pid, tid), ()):
            if start - eps <= ts_ns <= end + eps:
                return True
        for ts, _name in instants.get((pid, tid), ()):
            if abs(ts - ts_ns) <= eps:
                return True
        return False

    for flow_id, sides in flows.items():
        for side in ("begin", "end"):
            if side not in sides:
                problems.append(f"flow {flow_id!r} is missing its {side} event")
                continue
            pid, tid, ts = sides[side]
            if not _binds(pid, tid, ts):
                problems.append(
                    f"flow {flow_id!r} {side} at (pid={pid}, tid={tid}, "
                    f"ts={ts}us) binds to no slice"
                )
    return problems


def assert_valid_trace(trace) -> None:
    """Raise ``ValueError`` listing every schema problem, if any."""
    problems = validate_trace(trace)
    if problems:
        raise ValueError(
            "invalid Chrome trace:\n" + "\n".join(f"  - {p}" for p in problems)
        )
