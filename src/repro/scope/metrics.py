"""SkelScope metrics: counter/gauge/histogram primitives and a registry.

The runtime populates a :class:`MetricsRegistry` per OpenCL context as
commands are enqueued (byte counters, command counts, kernel time by
device) and at snapshot time derives timeline metrics that only exist
once the command graph is resolved (queue occupancy, idle gaps, the
critical path).  Registries are deliberately dependency-free: they know
nothing about the runtime, so this module can be imported from anywhere
in the stack without cycles.

Naming follows the Prometheus convention (``*_total`` for counters,
unit suffix in the name); labels distinguish children of one metric::

    reg.counter("skelcl_transfer_bytes_total", link="pcie").inc(nbytes)
    reg.gauge("skelcl_engine_busy_ns", device=0, engine="compute").set(t)
    reg.histogram("skelcl_kernel_ns", skeleton="Map").observe(dur)

``snapshot()`` returns a plain JSON-serializable dict; ``render_table``
prints the end-of-run report.
"""

from __future__ import annotations

import json
import weakref
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing integer/float counter."""

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc({amount}))")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (set at snapshot time)."""

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Streaming distribution summary: count / sum / min / max / mean.

    Bucket boundaries would add little for simulated-ns distributions,
    so the histogram keeps moments only — enough for the end-of-run
    table and the JSON snapshot.
    """

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


# Registries currently attached to live contexts; process-wide producers
# with no context at hand (the program build cache) broadcast to all of
# them.  Weak references: a released context must not leak its registry.
_LIVE_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def live_registries() -> List["MetricsRegistry"]:
    return list(_LIVE_REGISTRIES)


def record_build(result: str) -> None:
    """Program-build hook: count builds on every live registry — builds
    are keyed by source text globally, not per context, so each context
    observes the process-wide behaviour.

    ``result`` is one of ``"memory"`` (in-process build-cache hit),
    ``"disk"`` (served from the persistent program cache), or
    ``"compiled"`` (cold front-end + backend run)."""
    if result not in ("memory", "disk", "compiled"):
        raise ValueError(f"unknown build result {result!r}")
    for registry in _LIVE_REGISTRIES:
        registry.counter("skelcl_program_builds_total", result=result).inc()


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self, register_live: bool = True):
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}
        if register_live:
            _LIVE_REGISTRIES.add(self)

    # -- access ----------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, key[1])
        return metric

    def counters(self) -> Iterable[Counter]:
        return self._counters.values()

    def value(self, name: str, **labels):
        """The current value of a counter/gauge (0 if never touched)."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Zero every metric (keeps the metric objects, so cached
        references held by queues stay valid)."""
        for metric in self._counters.values():
            metric.reset()
        for metric in self._gauges.values():
            metric.reset()
        for metric in self._histograms.values():
            metric.reset()

    # -- export ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        def series(metrics, value_of):
            out: Dict[str, Dict[str, object]] = {}
            for (name, labels), metric in sorted(metrics.items()):
                out.setdefault(name, {})[_label_str(labels) or "_"] = value_of(metric)
            return out

        return {
            "counters": series(self._counters, lambda m: m.value),
            "gauges": series(self._gauges, lambda m: m.value),
            "histograms": series(self._histograms, lambda m: m.summary()),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_table(self, title: str = "SkelScope metrics") -> str:
        """The end-of-run report: one line per metric child."""
        rows: List[Tuple[str, str]] = []
        for (name, labels), metric in sorted(self._counters.items()):
            rows.append((name + _label_str(labels), f"{metric.value}"))
        for (name, labels), metric in sorted(self._gauges.items()):
            value = metric.value
            text = f"{value:.3f}" if isinstance(value, float) else f"{value}"
            rows.append((name + _label_str(labels), text))
        for (name, labels), metric in sorted(self._histograms.items()):
            rows.append((
                name + _label_str(labels),
                f"n={metric.count} mean={metric.mean:.1f} "
                f"min={metric.min} max={metric.max}",
            ))
        if not rows:
            return f"{title}\n  (no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        lines = [title] + [f"  {name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)


def derive_serve_metrics(server, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Fairness gauges over a serve :class:`~repro.serve.Server`'s
    tenants (duck-typed: needs ``tenants`` mapping names to objects with
    ``weight`` and ``device_ns_total``):

    * ``skelcl_serve_tenant_share{tenant=}`` — each tenant's fraction of
      all charged device-ns;
    * ``skelcl_serve_weighted_fairness`` — Jain's fairness index over
      the weight-normalized shares (``device_ns / weight``): 1.0 means
      every tenant received device time exactly proportional to its
      weight, 1/n means one tenant got everything.
    """
    registry = registry if registry is not None else server.session.metrics
    tenants = server.tenants
    total = sum(t.device_ns_total for t in tenants.values())
    normalized: List[float] = []
    for name, tenant in sorted(tenants.items()):
        share = tenant.device_ns_total / total if total else 0.0
        registry.gauge("skelcl_serve_tenant_share", tenant=name).set(round(share, 6))
        if tenant.device_ns_total:
            normalized.append(tenant.device_ns_total / tenant.weight)
    if normalized:
        jain = (sum(normalized) ** 2) / (
            len(normalized) * sum(x * x for x in normalized))
        registry.gauge("skelcl_serve_weighted_fairness").set(round(jain, 6))
    return registry


def derive_timeline_metrics(context, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Populate the gauges that only exist on a *resolved* timeline:
    per-engine busy/idle time, occupancy, the critical-path elapsed
    time, and per-skeleton kernel time.  Resolves the command graph
    (``context.finish_all()``) first.

    ``context`` is duck-typed (needs ``finish_all()``, ``queues`` with
    ``events``/``device``); ``registry`` defaults to ``context.metrics``.
    """
    registry = registry if registry is not None else context.metrics
    elapsed = context.finish_all()
    registry.gauge("skelcl_critical_path_ns").set(elapsed)
    by_skeleton: Dict[str, int] = {}
    compute_busy: List[int] = []
    for queue in context.queues:
        device = queue.device.index
        busy: Dict[str, int] = {}
        spans: Dict[str, List[Tuple[int, int]]] = {}
        for event in queue.events:
            busy[event.engine] = busy.get(event.engine, 0) + event.duration_ns
            spans.setdefault(event.engine, []).append((event.start_ns, event.end_ns))
            if event.command_type == "ndrange_kernel":
                label = event.label or "<unlabelled>"
                by_skeleton[label] = by_skeleton.get(label, 0) + event.duration_ns
        compute_busy.append(busy.get("compute", 0))
        for engine, busy_ns in busy.items():
            if engine == "sync":
                continue
            registry.gauge("skelcl_engine_busy_ns", device=device, engine=engine).set(busy_ns)
            window = max(end for _s, end in spans[engine]) - min(s for s, _e in spans[engine])
            idle = max(0, window - busy_ns)
            registry.gauge("skelcl_engine_idle_ns", device=device, engine=engine).set(idle)
            occupancy = busy_ns / elapsed if elapsed else 0.0
            registry.gauge(
                "skelcl_engine_occupancy", device=device, engine=engine
            ).set(round(occupancy, 6))
    for label, kernel_ns in sorted(by_skeleton.items()):
        registry.gauge("skelcl_kernel_ns_by_skeleton", skeleton=label).set(kernel_ns)
    # Load imbalance over devices that did compute: max/mean busy time.
    # 1.0 means a perfectly balanced split; the adaptive partitioner's
    # re-size threshold is expressed against this same quantity.
    active = [b for b in compute_busy if b > 0]
    if len(compute_busy) > 1 and active:
        mean_busy = sum(active) / len(active)
        registry.gauge("skelcl_compute_imbalance").set(
            round(max(active) / mean_busy, 6) if mean_busy else 1.0
        )
    detector = getattr(context, "race_detector", None)
    if detector is not None:
        registry.gauge("skelcl_races_detected").set(len(detector.races))
    return registry
