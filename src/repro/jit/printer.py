"""Printing lowered kernelc ASTs with Python-origin markers.

Each emitted line that originates from a Python statement carries a
trailing ``/*@py:file:line*/`` marker comment.  The markers survive the
whole downstream pipeline untouched — the preprocessor passes comments
through verbatim, skeleton templates embed the user source textually,
and fusion's whole-word renames leave them intact — so
:class:`~repro.kernelc.source.SourceFile` can recover the Python
file/line for any generated line and diagnostics can point at the code
the user actually wrote.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..kernelc import ast as kast
from ..kernelc.printer import Printer

_MARKER = re.compile(r" ?/\*@(?:py|intent):[^*]*\*/")


def strip_markers(source: str) -> str:
    """Remove ``/*@py:...*/`` and ``/*@intent:...*/`` markers, leaving
    the plain OpenCL-C a human would have written.  Lines that were
    nothing but a marker disappear entirely."""
    out = []
    for line in source.split("\n"):
        stripped = _MARKER.sub("", line).rstrip()
        if not stripped and _MARKER.search(line):
            continue
        out.append(stripped)
    return "\n".join(out)


class JitPrinter(Printer):
    """A printer that appends ``/*@py:...*/`` origin markers.

    Lowered statements carry a ``_py_line`` attribute; nested emissions
    inherit the innermost enclosing statement's line.
    """

    def __init__(self, origin_file: str, indent: str = "    "):
        super().__init__(indent)
        # A marker must not terminate the comment early.
        self.origin_file = origin_file.replace("*/", "_")
        self._origin_stack: List[Optional[int]] = [None]

    def _emit(self, text: str) -> None:
        line = self._origin_stack[-1]
        if line is not None and text.strip() not in ("", "{", "}"):
            text = f"{text} /*@py:{self.origin_file}:{line}*/"
        super()._emit(text)

    def _push(self, node) -> None:
        line = getattr(node, "_py_line", None)
        self._origin_stack.append(line if line is not None else self._origin_stack[-1])

    def print_function(self, function: kast.FunctionDef) -> None:
        self._push(function)
        try:
            super().print_function(function)
        finally:
            self._origin_stack.pop()

    def stmt(self, stmt: kast.Stmt) -> None:
        self._push(stmt)
        try:
            super().stmt(stmt)
        finally:
            self._origin_stack.pop()
